//! Implementation of the `trisolv` command-line tool (argument parsing and
//! subcommands), kept as a library module so it is unit-testable.
//!
//! Subcommands:
//!
//! * `info <matrix>` — structural and symbolic statistics;
//! * `solve <matrix> [--procs P] [--nrhs M] [--block B] [--ordering O]` —
//!   factor and solve on the simulated machine, reporting timings;
//! * `convert <in> <out>` — convert between Matrix-Market (`.mtx`) and
//!   Harwell-Boeing (anything else) files;
//! * `gen <spec> <out>` — generate a test matrix (`grid2d:64`, `fem3d:...`,
//!   `random:...`) so nothing needs external matrix files;
//! * `serve` / `client` — the factor-caching, RHS-batching solve service
//!   and its load-generating client (see `crates/server` and DESIGN.md §10);
//! * `route` — the sharded, replicated distributed solve tier: a
//!   consistent-hash router in front of N `serve` backends, speaking the
//!   same protocol (see `crates/router` and DESIGN.md §15).
//!
//! Matrices are detected by extension: `.mtx` → Matrix Market, otherwise
//! Harwell-Boeing.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Duration;

use trisolv_core::mapping::SubcubeMapping;
use trisolv_core::tree::{solve_fb, SolveConfig};
use trisolv_factor::seqchol;
use trisolv_graph::{mindeg, multilevel, nd, rcm, Graph, Permutation};
use trisolv_machine::MachineParams;
use trisolv_matrix::{gen, hb, io as mmio, CscMatrix};
use trisolv_server as srv;

/// Errors surfaced to the CLI user.
pub type CliError = String;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print structural statistics.
    Info {
        /// Input matrix path.
        path: String,
    },
    /// Factor and solve with timing report.
    Solve {
        /// Input matrix path.
        path: String,
        /// Virtual processors.
        procs: usize,
        /// Right-hand sides.
        nrhs: usize,
        /// Block-cyclic block size.
        block: usize,
        /// Ordering name.
        ordering: String,
        /// Shared-memory solver threads for the real (non-simulated) solve
        /// (`0` = `std::thread::available_parallelism`).
        threads: usize,
        /// Run the certified-solve pipeline (iterative refinement with a
        /// componentwise backward-error certificate) and report it.
        certify: bool,
        /// Dynamic regularization: boost non-positive pivots instead of
        /// failing (implies the certified pipeline so the perturbations are
        /// refined against the original matrix).
        regularize: bool,
        /// Symmetric diagonal equilibration before factoring (implies the
        /// certified pipeline).
        scale: bool,
        /// Precision lane for the certified pipeline: `f64` (classic),
        /// or `f32`/`auto` — the mixed-precision driver (implies the
        /// certified pipeline; `f32` and `auto` behave identically here,
        /// the distinction only matters for the server's cache policy).
        precision: String,
    },
    /// Convert between matrix file formats.
    Convert {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
    },
    /// Generate a test matrix from a spec string and write it to a file.
    Gen {
        /// Generator spec (see [`trisolv_matrix::gen::from_spec`]).
        spec: String,
        /// Output path (`.mtx` → Matrix Market, else Harwell-Boeing).
        output: String,
    },
    /// Run the factor-caching solve server until a SHUTDOWN request.
    Serve {
        /// Bind address (port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads (should be ≥ max_batch for full batches).
        workers: usize,
        /// Micro-batcher: seal a batch at this many RHS columns.
        max_batch: usize,
        /// Micro-batcher: seal a non-full batch after this many µs.
        window_us: u64,
        /// Factor-cache byte budget in MiB.
        budget_mb: usize,
        /// Executor: `seq` or `threaded`.
        exec: String,
        /// Fault-injection spec (empty = no faults).
        fault_spec: String,
        /// Admission-control high-water mark (0 = unbounded).
        max_pending: usize,
        /// Slow-peer socket timeout in milliseconds (0 = disabled).
        io_timeout_ms: u64,
        /// Cap on client SOLVE deadlines in milliseconds (0 = uncapped).
        deadline_cap_ms: u64,
        /// Threads per blocked solve in the threaded executor, distinct
        /// from `workers` (`0` = `std::thread::available_parallelism`).
        solver_threads: usize,
        /// Factor-integrity cadence: verify a cached factor's checksum
        /// every N solves against it, self-healing on mismatch (0 = off).
        verify_every: u64,
        /// Maximum concurrent connections (0 = unlimited); extras get a
        /// structured `Busy` and a close.
        max_conns: usize,
        /// Per-connection pipelining cap (frames in flight before the event
        /// loop stops reading that socket).
        pipeline: usize,
        /// Durable factor-store directory (empty = no persistence).
        persist_dir: String,
        /// Durable factor-store byte budget in MiB (0 = unbounded).
        persist_budget_mb: usize,
        /// Cache residency lane for new factors: `f64`, `f32`, or `auto`
        /// (demote like `f32`, but promote fingerprints whose certified
        /// solves ever needed the `f64` fallback).
        precision: String,
    },
    /// Run the distributed-tier router in front of a backend fleet.
    Route {
        /// Client-facing bind address (port 0 picks an ephemeral port).
        addr: String,
        /// Backend addresses (`host:port`, comma-separated on the CLI).
        /// Mutually exclusive with `spawn`.
        backends: Vec<String>,
        /// Spawn this many local backend processes on ephemeral ports
        /// instead of routing to `backends`.
        spawn: usize,
        /// Replication factor (factors resident on this many backends).
        replication: usize,
        /// Virtual nodes per backend on the hash ring.
        vnodes: usize,
        /// Cap on client SOLVE deadlines in milliseconds (0 = uncapped).
        deadline_cap_ms: u64,
        /// Slow-peer socket timeout in milliseconds (0 = disabled).
        io_timeout_ms: u64,
        /// Base reconnect-probe interval for unhealthy backends, in
        /// milliseconds.
        probe_ms: u64,
        /// Maximum concurrent client connections (0 = unlimited).
        max_conns: usize,
        /// Per-connection pipelining cap.
        pipeline: usize,
        /// Byte budget (MiB) for retained LOAD payloads replayed to
        /// rejoining backends (0 = retain nothing).
        retained_mb: usize,
        /// Hedged-SOLVE latency floor in milliseconds: duplicate a solve to
        /// the next replica once it outlives max(backend p99, this floor)
        /// (0 = hedging off).
        hedge_after_ms: u64,
        /// Hedge budget as a fraction of dispatched solve sub-requests
        /// (0 = hedging off).
        hedge_budget: f64,
    },
    /// Drive a running server with the load generator.
    Client {
        /// Server address.
        addr: String,
        /// Generator spec for the matrix to load and solve against.
        spec: Option<String>,
        /// Matrix file to load instead of a generated one.
        matrix: Option<String>,
        /// Concurrent client connections.
        clients: usize,
        /// Run duration in seconds.
        secs: f64,
        /// Send SHUTDOWN to the server when done.
        shutdown: bool,
        /// Per-request deadline/timeout in milliseconds (0 = server default).
        timeout_ms: u64,
        /// Retry attempts after a transient failure.
        retries: u32,
        /// Base backoff between retries in milliseconds.
        backoff_ms: u64,
        /// Extra connections opened before the run and held idle through it
        /// (connection-scaling smoke; see the event-driven front end).
        idle_conns: usize,
        /// Issue one certified SOLVE (protocol v3 certify flag) after the
        /// load and print the server's refinement certificate.
        certify: bool,
        /// Print the server's STATS counters after the run.
        stats: bool,
    },
}

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = "usage: trisolv <info|solve|convert|gen|serve|route|client> ...\n\
                 \x20 trisolv info <matrix>\n\
                 \x20 trisolv solve <matrix> [--procs P] [--nrhs M] [--block B] [--ordering nd|multilevel|mindeg|rcm|natural]\n\
                 \x20               [--threads T]      (real shared-memory solve width; 0 = available parallelism)\n\
                 \x20               [--certify] [--regularize] [--scale]   (certified solve: refinement / pivot boosting / equilibration)\n\
                 \x20               [--precision f64|f32|auto]  (f32/auto: mixed-precision certified pipeline)\n\
                 \x20 trisolv convert <in> <out>\n\
                 \x20 trisolv gen <spec> <out>      (spec e.g. grid2d:64, grid3d:16x16x16, fem2d:24x24:3, random:500:6:1)\n\
                 \x20 trisolv serve [--addr A] [--workers N] [--max-batch K] [--window-us U] [--budget-mb M] [--exec seq|threaded]\n\
                 \x20               [--fault-spec S] [--max-pending P] [--io-timeout-ms T] [--deadline-cap-ms D] [--solver-threads T]\n\
                 \x20               [--verify-every N]  (factor-integrity checksum cadence; 0 = off)\n\
                 \x20               [--max-conns C]     (concurrent-connection cap; 0 = unlimited)\n\
                 \x20               [--pipeline P]      (per-connection in-flight frame cap)\n\
                 \x20               [--persist-dir D]   (durable factor store; warm restart recovers it)\n\
                 \x20               [--persist-budget-mb M]  (on-disk snapshot budget; 0 = unbounded)\n\
                 \x20               [--precision f64|f32|auto]  (cache lane; auto promotes factors that needed fallback)\n\
                 \x20 trisolv route [--addr A] (--backends h:p,h:p,... | --spawn N) [--replication R] [--vnodes V]\n\
                 \x20               [--deadline-cap-ms D] [--io-timeout-ms T] [--probe-ms P] [--max-conns C] [--pipeline P]\n\
                 \x20               [--retained-mb M]   (retained-LOAD replay budget for rejoining backends)\n\
                 \x20               [--hedge-after-ms H] [--hedge-budget F]  (tail-latency hedging; 0 for either = off)\n\
                 \x20 trisolv client <addr> [--gen spec | --matrix path] [--clients N] [--secs S] [--shutdown]\n\
                 \x20               [--timeout-ms T] [--retries R] [--backoff-ms B] [--idle-conns I]\n\
                 \x20               [--certify]  (one certified SOLVE; prints the refinement certificate)\n\
                 \x20               [--stats]    (print the server's STATS counters after the run)";
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("info") => {
            let path = it.next().ok_or_else(|| usage.to_string())?.clone();
            Ok(Command::Info { path })
        }
        Some("solve") => {
            let path = it.next().ok_or_else(|| usage.to_string())?.clone();
            let mut procs = 16usize;
            let mut nrhs = 1usize;
            let mut block = 8usize;
            let mut ordering = "nd".to_string();
            let mut threads = 0usize;
            let mut certify = false;
            let mut regularize = false;
            let mut scale = false;
            let mut precision = "f64".to_string();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--certify" => {
                        certify = true;
                        continue;
                    }
                    "--regularize" => {
                        regularize = true;
                        continue;
                    }
                    "--scale" => {
                        scale = true;
                        continue;
                    }
                    _ => {}
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                match flag.as_str() {
                    "--procs" => procs = value.parse().map_err(|e| format!("bad --procs: {e}"))?,
                    "--nrhs" => nrhs = value.parse().map_err(|e| format!("bad --nrhs: {e}"))?,
                    "--block" => block = value.parse().map_err(|e| format!("bad --block: {e}"))?,
                    "--ordering" => ordering = value.clone(),
                    "--threads" => {
                        threads = value.parse().map_err(|e| format!("bad --threads: {e}"))?
                    }
                    "--precision" => precision = value.clone(),
                    other => return Err(format!("unknown flag {other}\n{usage}")),
                }
            }
            if procs == 0 || nrhs == 0 || block == 0 {
                return Err("--procs, --nrhs, --block must be positive".to_string());
            }
            trisolv_server::PrecisionMode::parse(&precision)?;
            Ok(Command::Solve {
                path,
                procs,
                nrhs,
                block,
                ordering,
                threads,
                certify,
                regularize,
                scale,
                precision,
            })
        }
        Some("convert") => {
            let input = it.next().ok_or_else(|| usage.to_string())?.clone();
            let output = it.next().ok_or_else(|| usage.to_string())?.clone();
            Ok(Command::Convert { input, output })
        }
        Some("gen") => {
            let spec = it.next().ok_or_else(|| usage.to_string())?.clone();
            let output = it.next().ok_or_else(|| usage.to_string())?.clone();
            Ok(Command::Gen { spec, output })
        }
        Some("serve") => {
            let mut addr = "127.0.0.1:7411".to_string();
            let mut workers = 32usize;
            let mut max_batch = 8usize;
            let mut window_us = 1000u64;
            let mut budget_mb = 512usize;
            let mut exec = "threaded".to_string();
            let mut fault_spec = String::new();
            let mut max_pending = 1024usize;
            let mut io_timeout_ms = 10_000u64;
            let mut deadline_cap_ms = 30_000u64;
            let mut solver_threads = 0usize;
            let mut verify_every = 0u64;
            let mut max_conns = 0usize;
            let mut pipeline = 64usize;
            let mut persist_dir = String::new();
            let mut persist_budget_mb = 0usize;
            let mut precision = "f64".to_string();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--workers" => {
                        workers = value.parse().map_err(|e| format!("bad --workers: {e}"))?
                    }
                    "--max-batch" => {
                        max_batch = value.parse().map_err(|e| format!("bad --max-batch: {e}"))?
                    }
                    "--window-us" => {
                        window_us = value.parse().map_err(|e| format!("bad --window-us: {e}"))?
                    }
                    "--budget-mb" => {
                        budget_mb = value.parse().map_err(|e| format!("bad --budget-mb: {e}"))?
                    }
                    "--exec" => exec = value.clone(),
                    "--fault-spec" => fault_spec = value.clone(),
                    "--max-pending" => {
                        max_pending = value
                            .parse()
                            .map_err(|e| format!("bad --max-pending: {e}"))?
                    }
                    "--io-timeout-ms" => {
                        io_timeout_ms = value
                            .parse()
                            .map_err(|e| format!("bad --io-timeout-ms: {e}"))?
                    }
                    "--deadline-cap-ms" => {
                        deadline_cap_ms = value
                            .parse()
                            .map_err(|e| format!("bad --deadline-cap-ms: {e}"))?
                    }
                    "--solver-threads" => {
                        solver_threads = value
                            .parse()
                            .map_err(|e| format!("bad --solver-threads: {e}"))?
                    }
                    "--verify-every" => {
                        verify_every = value
                            .parse()
                            .map_err(|e| format!("bad --verify-every: {e}"))?
                    }
                    "--max-conns" => {
                        max_conns = value.parse().map_err(|e| format!("bad --max-conns: {e}"))?
                    }
                    "--pipeline" => {
                        pipeline = value.parse().map_err(|e| format!("bad --pipeline: {e}"))?
                    }
                    "--persist-dir" => persist_dir = value.clone(),
                    "--persist-budget-mb" => {
                        persist_budget_mb = value
                            .parse()
                            .map_err(|e| format!("bad --persist-budget-mb: {e}"))?
                    }
                    "--precision" => precision = value.clone(),
                    other => return Err(format!("unknown flag {other}\n{usage}")),
                }
            }
            if workers == 0 || max_batch == 0 || budget_mb == 0 {
                return Err("--workers, --max-batch, --budget-mb must be positive".to_string());
            }
            if pipeline == 0 {
                return Err("--pipeline must be positive".to_string());
            }
            if persist_dir.is_empty() && persist_budget_mb != 0 {
                return Err("--persist-budget-mb needs --persist-dir".to_string());
            }
            trisolv_server::ExecMode::parse(&exec)?;
            trisolv_server::FaultPlan::parse(&fault_spec)?;
            trisolv_server::PrecisionMode::parse(&precision)?;
            Ok(Command::Serve {
                addr,
                workers,
                max_batch,
                window_us,
                budget_mb,
                exec,
                fault_spec,
                max_pending,
                io_timeout_ms,
                deadline_cap_ms,
                solver_threads,
                verify_every,
                max_conns,
                pipeline,
                persist_dir,
                persist_budget_mb,
                precision,
            })
        }
        Some("route") => {
            let mut addr = "127.0.0.1:7412".to_string();
            let mut backends: Vec<String> = Vec::new();
            let mut spawn = 0usize;
            let mut replication = 2usize;
            let mut vnodes = trisolv_router::Ring::DEFAULT_VNODES;
            let mut deadline_cap_ms = 30_000u64;
            let mut io_timeout_ms = 10_000u64;
            let mut probe_ms = 100u64;
            let mut max_conns = 0usize;
            let mut pipeline = 64usize;
            let mut retained_mb = 256usize;
            let mut hedge_after_ms = 50u64;
            let mut hedge_budget = 0.10f64;
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--backends" => {
                        backends = value
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                    }
                    "--spawn" => spawn = value.parse().map_err(|e| format!("bad --spawn: {e}"))?,
                    "--replication" => {
                        replication = value
                            .parse()
                            .map_err(|e| format!("bad --replication: {e}"))?
                    }
                    "--vnodes" => {
                        vnodes = value.parse().map_err(|e| format!("bad --vnodes: {e}"))?
                    }
                    "--deadline-cap-ms" => {
                        deadline_cap_ms = value
                            .parse()
                            .map_err(|e| format!("bad --deadline-cap-ms: {e}"))?
                    }
                    "--io-timeout-ms" => {
                        io_timeout_ms = value
                            .parse()
                            .map_err(|e| format!("bad --io-timeout-ms: {e}"))?
                    }
                    "--probe-ms" => {
                        probe_ms = value.parse().map_err(|e| format!("bad --probe-ms: {e}"))?
                    }
                    "--max-conns" => {
                        max_conns = value.parse().map_err(|e| format!("bad --max-conns: {e}"))?
                    }
                    "--pipeline" => {
                        pipeline = value.parse().map_err(|e| format!("bad --pipeline: {e}"))?
                    }
                    "--retained-mb" => {
                        retained_mb = value
                            .parse()
                            .map_err(|e| format!("bad --retained-mb: {e}"))?
                    }
                    "--hedge-after-ms" => {
                        hedge_after_ms = value
                            .parse()
                            .map_err(|e| format!("bad --hedge-after-ms: {e}"))?
                    }
                    "--hedge-budget" => {
                        hedge_budget = value
                            .parse()
                            .map_err(|e| format!("bad --hedge-budget: {e}"))?;
                        if !(0.0..=1.0).contains(&hedge_budget) {
                            return Err("--hedge-budget must be in [0, 1]".to_string());
                        }
                    }
                    other => return Err(format!("unknown flag {other}\n{usage}")),
                }
            }
            match (backends.is_empty(), spawn) {
                (true, 0) => return Err("route needs --backends or --spawn\n".to_string() + usage),
                (false, s) if s > 0 => {
                    return Err("--backends and --spawn are mutually exclusive".to_string())
                }
                _ => {}
            }
            if replication == 0 || vnodes == 0 || pipeline == 0 || probe_ms == 0 {
                return Err(
                    "--replication, --vnodes, --pipeline, --probe-ms must be positive".to_string(),
                );
            }
            Ok(Command::Route {
                addr,
                backends,
                spawn,
                replication,
                vnodes,
                deadline_cap_ms,
                io_timeout_ms,
                probe_ms,
                max_conns,
                pipeline,
                retained_mb,
                hedge_after_ms,
                hedge_budget,
            })
        }
        Some("client") => {
            let addr = it.next().ok_or_else(|| usage.to_string())?.clone();
            if addr.starts_with("--") {
                return Err(usage.to_string());
            }
            let mut spec = None;
            let mut matrix = None;
            let mut clients = 4usize;
            let mut secs = 2.0f64;
            let mut shutdown = false;
            let mut timeout_ms = 0u64;
            let mut retries = 3u32;
            let mut backoff_ms = 50u64;
            let mut idle_conns = 0usize;
            let mut certify = false;
            let mut stats = false;
            while let Some(flag) = it.next() {
                if flag == "--shutdown" {
                    shutdown = true;
                    continue;
                }
                if flag == "--certify" {
                    certify = true;
                    continue;
                }
                if flag == "--stats" {
                    stats = true;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                match flag.as_str() {
                    "--gen" => spec = Some(value.clone()),
                    "--matrix" => matrix = Some(value.clone()),
                    "--clients" => {
                        clients = value.parse().map_err(|e| format!("bad --clients: {e}"))?
                    }
                    "--secs" => secs = value.parse().map_err(|e| format!("bad --secs: {e}"))?,
                    "--timeout-ms" => {
                        timeout_ms = value
                            .parse()
                            .map_err(|e| format!("bad --timeout-ms: {e}"))?
                    }
                    "--retries" => {
                        retries = value.parse().map_err(|e| format!("bad --retries: {e}"))?
                    }
                    "--backoff-ms" => {
                        backoff_ms = value
                            .parse()
                            .map_err(|e| format!("bad --backoff-ms: {e}"))?
                    }
                    "--idle-conns" => {
                        idle_conns = value
                            .parse()
                            .map_err(|e| format!("bad --idle-conns: {e}"))?
                    }
                    other => return Err(format!("unknown flag {other}\n{usage}")),
                }
            }
            if spec.is_some() && matrix.is_some() {
                return Err("--gen and --matrix are mutually exclusive".to_string());
            }
            if clients == 0 || secs.is_nan() || secs <= 0.0 {
                return Err("--clients and --secs must be positive".to_string());
            }
            if backoff_ms == 0 {
                return Err("--backoff-ms must be positive".to_string());
            }
            Ok(Command::Client {
                addr,
                spec,
                matrix,
                clients,
                secs,
                shutdown,
                timeout_ms,
                retries,
                backoff_ms,
                idle_conns,
                certify,
                stats,
            })
        }
        _ => Err(usage.to_string()),
    }
}

/// Load a matrix by extension (`.mtx` → Matrix Market, else Harwell-Boeing).
pub fn load_matrix(path: &str) -> Result<(CscMatrix, String), CliError> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    if Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("mtx"))
    {
        let (m, _) = mmio::read_matrix_market(reader).map_err(|e| e.to_string())?;
        Ok((
            m,
            Path::new(path)
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned(),
        ))
    } else {
        let (m, title) = hb::read_harwell_boeing(reader).map_err(|e| e.to_string())?;
        Ok((m, title))
    }
}

fn ordering_perm(name: &str, a: &CscMatrix) -> Result<Permutation, CliError> {
    let g = Graph::from_sym_lower(a);
    Ok(match name {
        "nd" => nd::nested_dissection(&g, nd::NdOptions::default()),
        "multilevel" => {
            multilevel::nested_dissection_multilevel(&g, multilevel::MlOptions::default())
        }
        "mindeg" => mindeg::minimum_degree(&g),
        "rcm" => rcm::reverse_cuthill_mckee(&g),
        "natural" => Permutation::identity(a.ncols()),
        other => return Err(format!("unknown ordering {other:?}")),
    })
}

/// Execute a parsed command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Info { path } => {
            let (a, title) = load_matrix(path)?;
            let _ = writeln!(out, "matrix:  {title}");
            let _ = writeln!(out, "order:   {} x {}", a.nrows(), a.ncols());
            let _ = writeln!(out, "stored:  {} nonzeros (lower triangle)", a.nnz());
            let perm = ordering_perm("nd", &a)?;
            let an = seqchol::analyze_with_perm(&a, &perm);
            let _ = writeln!(out, "--- after nested dissection ---");
            let _ = writeln!(out, "factor:  {} nonzeros", an.part.nnz());
            let _ = writeln!(
                out,
                "opcount: {:.2} Mflop factorization, {:.3} Mflop per fw+bw solve",
                an.part.factor_flops() as f64 / 1e6,
                an.part.solve_flops(1) as f64 / 1e6
            );
            let _ = writeln!(out, "supernodes: {}", an.part.nsup());
            let _ = writeln!(out, "etree height: {}", an.sym.tree().height());
        }
        Command::Solve {
            path,
            procs,
            nrhs,
            block,
            ordering,
            threads,
            certify,
            regularize,
            scale,
            precision,
        } => {
            let (a, title) = load_matrix(path)?;
            let perm = ordering_perm(ordering, &a)?;
            let an = seqchol::analyze_with_perm(&a, &perm);
            let factor = seqchol::factor_supernodal(&an.pa, &an.part)
                .map_err(|e| format!("factorization failed: {e}"))?;
            let mapping = SubcubeMapping::new(&an.part, *procs);
            let config = SolveConfig {
                nprocs: *procs,
                block: *block,
                params: MachineParams::t3d(),
            };
            let b = gen::random_rhs(a.ncols(), *nrhs, 42);
            let (x, report) = solve_fb(&factor, &mapping, &b, &config);
            // residual check in the permuted space
            let ax = an.pa.spmv_sym_lower(&x).map_err(|e| e.to_string())?;
            let resid = ax.max_abs_diff(&b).unwrap_or(f64::NAN) / b.norm_max().max(1.0);
            let _ = writeln!(out, "matrix:   {title} (N = {})", a.ncols());
            let _ = writeln!(
                out,
                "ordering: {ordering}; factor nnz {}; {} supernodes",
                an.part.nnz(),
                an.part.nsup()
            );
            let _ = writeln!(
                out,
                "solve:    p = {procs}, NRHS = {nrhs}, b = {block} -> {:.4} s virtual ({:.1} MFLOPS)",
                report.total_time,
                report.mflops()
            );
            let _ = writeln!(
                out,
                "          forward {:.4} s, backward {:.4} s, {} msgs, {} words",
                report.forward_time, report.backward_time, report.msgs, report.words
            );
            let _ = writeln!(out, "residual: {resid:.3e} (relative, random RHS)");
            // Real shared-memory solve on this machine, same factor and RHS.
            let nthreads = if *threads == 0 {
                trisolv_core::default_threads()
            } else {
                *threads
            };
            let tsolver = trisolv_core::ThreadedSolver::new(&factor)
                .map_err(|e| format!("solve plan failed: {e}"))?
                .with_threads(nthreads);
            let mut ws = tsolver.workspace(*nrhs);
            let start = std::time::Instant::now();
            let tx = tsolver.forward_backward_with(&b, &mut ws);
            let wall = start.elapsed().as_secs_f64();
            let tax = an.pa.spmv_sym_lower(&tx).map_err(|e| e.to_string())?;
            let tresid = tax.max_abs_diff(&b).unwrap_or(f64::NAN) / b.norm_max().max(1.0);
            let _ = writeln!(
                out,
                "threaded: {nthreads} threads -> {:.6} s wall ({:.1} MFLOPS), residual {tresid:.3e}",
                wall,
                an.part.solve_flops(*nrhs) as f64 / wall.max(1e-12) / 1e6
            );
            // Certified pipeline on the original (unpermuted) system: any
            // of the three flags turns it on, since equilibration and
            // regularization only make sense refined against the original
            // matrix (DESIGN.md §13).
            let mixed = precision != "f64";
            if *certify || *regularize || *scale || mixed {
                let copts = trisolv_core::CertifyOptions {
                    scale: *scale,
                    regularize: *regularize,
                    condition: true,
                    ..trisolv_core::CertifyOptions::default()
                };
                let cb = gen::random_rhs(a.ncols(), 1, 7);
                let (report, lane_note) = if mixed {
                    let ms = trisolv_core::certified_solve_mixed(&a, &cb, &copts)
                        .map_err(|e| format!("certified solve failed: {e}"))?;
                    let note = if ms.fell_back {
                        " [f32 lane, fell back to f64]"
                    } else {
                        " [f32 lane]"
                    };
                    (ms.report, note)
                } else {
                    let cs = trisolv_core::certified_solve(&a, &cb, &copts)
                        .map_err(|e| format!("certified solve failed: {e}"))?;
                    (cs.report, "")
                };
                let r = &report;
                let _ = writeln!(
                    out,
                    "certify:  omega {:.3e} after {} refinement step(s) -> {}{lane_note}",
                    r.backward_error,
                    r.iterations,
                    if r.certified {
                        "certified"
                    } else {
                        "NOT certified"
                    }
                );
                let mut extras = format!("          boosted pivots {}", r.perturbations);
                if let Some(ratio) = r.scaling_ratio {
                    let _ = write!(extras, ", scaling ratio {ratio:.3e}");
                }
                if let Some(cond) = r.condition_estimate {
                    let _ = write!(extras, ", cond1 estimate {cond:.3e}");
                }
                let _ = writeln!(out, "{extras}");
            }
        }
        Command::Convert { input, output } => {
            let (a, title) = load_matrix(input)?;
            write_matrix(output, &a, &title)?;
            let _ = writeln!(out, "wrote {output} ({} nonzeros)", a.nnz());
        }
        Command::Gen { spec, output } => {
            let a = gen::from_spec(spec)?;
            write_matrix(output, &a, spec)?;
            let _ = writeln!(
                out,
                "wrote {output}: {} ({} x {}, {} nonzeros stored)",
                spec,
                a.nrows(),
                a.ncols(),
                a.nnz()
            );
        }
        Command::Serve {
            addr,
            workers,
            max_batch,
            window_us,
            budget_mb,
            exec,
            fault_spec,
            max_pending,
            io_timeout_ms,
            deadline_cap_ms,
            solver_threads,
            verify_every,
            max_conns,
            pipeline,
            persist_dir,
            persist_budget_mb,
            precision,
        } => {
            let fault = srv::FaultPlan::parse(fault_spec)?;
            let persist = if persist_dir.is_empty() {
                None
            } else {
                let mut p = srv::StoreOptions::new(persist_dir);
                if *persist_budget_mb > 0 {
                    p.budget_bytes = (*persist_budget_mb as u64) << 20;
                }
                Some(p)
            };
            let opts = srv::ServerOptions {
                addr: addr.clone(),
                workers: *workers,
                engine: srv::EngineOptions {
                    budget_bytes: budget_mb << 20,
                    batch: srv::BatchOptions {
                        max_batch: *max_batch,
                        window: Duration::from_micros(*window_us),
                        wait_timeout: Duration::from_secs(30),
                    },
                    exec: srv::ExecMode::parse(exec)?,
                    max_pending: *max_pending,
                    solver_threads: *solver_threads,
                    verify_every: *verify_every,
                    precision: srv::PrecisionMode::parse(precision)?,
                },
                fault,
                io_timeout: Duration::from_millis(*io_timeout_ms),
                deadline_cap: Duration::from_millis(*deadline_cap_ms),
                max_conns: *max_conns,
                max_pipeline: *pipeline,
                persist,
            };
            let server = srv::Server::spawn(opts).map_err(|e| format!("cannot serve: {e}"))?;
            // SIGTERM/SIGINT drain through the event loop's waker and exit
            // cleanly; only the CLI installs the process-wide handler.
            server.install_signal_handlers();
            // Announce the bound address immediately (scripts and the CI
            // smoke job parse this line), then park until a SHUTDOWN frame.
            println!(
                "trisolv-server listening on {} ({} workers, max batch {}, window {} us, {} exec{})",
                server.local_addr(),
                workers,
                max_batch,
                window_us,
                exec,
                if fault_spec.is_empty() {
                    String::new()
                } else {
                    format!(", faults: {fault_spec}")
                }
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait();
            let _ = writeln!(out, "server shut down cleanly");
        }
        Command::Route {
            addr,
            backends,
            spawn,
            replication,
            vnodes,
            deadline_cap_ms,
            io_timeout_ms,
            probe_ms,
            max_conns,
            pipeline,
            retained_mb,
            hedge_after_ms,
            hedge_budget,
        } => {
            // --spawn: supervise a local fleet of `trisolv serve` children
            // on ephemeral ports; kept alive until the router exits.
            let (fleet, backend_addrs) = if *spawn > 0 {
                let exe = std::env::current_exe()
                    .map_err(|e| format!("cannot find own executable: {e}"))?;
                let args: Vec<String> = ["serve", "--addr", "127.0.0.1:0"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let fleet = trisolv_router::Fleet::spawn(&exe.to_string_lossy(), &args, *spawn)
                    .map_err(|e| format!("cannot spawn backend fleet: {e}"))?;
                let addrs = fleet.addrs().to_vec();
                (Some(fleet), addrs)
            } else {
                (None, backends.clone())
            };
            let nbackends = backend_addrs.len();
            let router = trisolv_router::Router::spawn(trisolv_router::RouterOptions {
                addr: addr.clone(),
                backends: backend_addrs,
                replication: *replication,
                vnodes: *vnodes,
                io_timeout: Duration::from_millis(*io_timeout_ms),
                deadline_cap: Duration::from_millis(*deadline_cap_ms),
                max_conns: *max_conns,
                max_pipeline: *pipeline,
                probe_interval: Duration::from_millis(*probe_ms),
                retained_budget: retained_mb * 1024 * 1024,
                hedge_after: Duration::from_millis(*hedge_after_ms),
                hedge_budget: *hedge_budget,
            })
            .map_err(|e| format!("cannot route: {e}"))?;
            // Announce the bound address immediately (scripts and the CI
            // router-smoke job parse this line), then park until SHUTDOWN.
            println!(
                "trisolv-router listening on {} ({nbackends} backends, replication {replication})",
                router.local_addr()
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            router.wait();
            drop(fleet);
            let _ = writeln!(out, "router shut down cleanly");
        }
        Command::Client {
            addr,
            spec,
            matrix,
            clients,
            secs,
            shutdown,
            timeout_ms,
            retries,
            backoff_ms,
            idle_conns,
            certify,
            stats,
        } => {
            let a = match (spec, matrix) {
                (Some(s), None) => gen::from_spec(s)?,
                (None, Some(path)) => load_matrix(path)?.0,
                (None, None) => gen::from_spec("grid2d:32")?,
                (Some(_), Some(_)) => unreachable!("rejected at parse time"),
            };
            let mut client = srv::Client::connect_retry(addr.as_str(), Duration::from_secs(5))
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let loaded = client.load(&a).map_err(|e| format!("LOAD failed: {e}"))?;
            let _ = writeln!(
                out,
                "loaded {} (n = {}, factor nnz {}, fingerprint {}{})",
                spec.as_deref()
                    .unwrap_or(matrix.as_deref().unwrap_or("grid2d:32")),
                loaded.n,
                loaded.factor_nnz,
                loaded.fingerprint,
                if loaded.already_cached {
                    ", already cached"
                } else {
                    ""
                }
            );
            let report = srv::run_load(&srv::LoadGenOptions {
                addr: addr.clone(),
                fingerprint: loaded.fingerprint,
                n: loaded.n,
                clients: *clients,
                duration: Duration::from_secs_f64(*secs),
                seed: 42,
                deadline_ms: *timeout_ms,
                client: srv::ClientOptions {
                    retries: *retries,
                    backoff: Duration::from_millis(*backoff_ms),
                    ..srv::ClientOptions::default()
                },
                idle_conns: *idle_conns,
            })
            .map_err(|e| format!("load generation failed: {e}"))?;
            let _ = writeln!(
                out,
                "requests: {} ok, {} errors in {:.2} s ({:.0} req/s)",
                report.requests,
                report.errors,
                report.elapsed.as_secs_f64(),
                report.throughput_rps
            );
            let _ = writeln!(
                out,
                "latency:  p50 {:.0} us, p99 {:.0} us, mean {:.0} us",
                report.p50_us, report.p99_us, report.mean_us
            );
            if *idle_conns > 0 {
                let _ = writeln!(
                    out,
                    "idle:     {} extra connections held open (asked for {})",
                    report.idle_conns, idle_conns
                );
            }
            if report.retry != srv::RetryStats::default() {
                let _ = writeln!(
                    out,
                    "retries:  {} retried, {} shed, {} deadline-missed, {} reconnects",
                    report.retry.retried,
                    report.retry.shed,
                    report.retry.deadline_missed,
                    report.retry.reconnects
                );
            }
            if *certify {
                let rhs = gen::random_rhs(loaded.n, 1, 7);
                let reply = client
                    .solve_certified(loaded.fingerprint, rhs.col(0), 0)
                    .map_err(|e| format!("certified SOLVE failed: {e}"))?;
                let _ = writeln!(
                    out,
                    "certify:  omega {:.3e} after {} refinement step(s) -> {}",
                    reply.backward_error,
                    reply.iterations,
                    if reply.certified {
                        "certified"
                    } else {
                        "NOT certified"
                    }
                );
            }
            if *stats {
                for (key, value) in client.stats().map_err(|e| format!("STATS failed: {e}"))? {
                    let _ = writeln!(out, "stat {key} = {value}");
                }
            }
            if *shutdown {
                client
                    .shutdown_server()
                    .map_err(|e| format!("SHUTDOWN failed: {e}"))?;
                let _ = writeln!(out, "server shutdown acknowledged");
            }
            if report.requests == 0 {
                return Err("no requests completed".to_string());
            }
        }
    }
    Ok(out)
}

/// Write a matrix by extension (`.mtx` → Matrix Market, else Harwell-Boeing).
fn write_matrix(output: &str, a: &CscMatrix, title: &str) -> Result<(), CliError> {
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut w = BufWriter::new(file);
    if Path::new(output)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("mtx"))
    {
        mmio::write_matrix_market(&mut w, a, mmio::Symmetry::Symmetric).map_err(|e| e.to_string())
    } else {
        hb::write_harwell_boeing(&mut w, a, title, "TRISOLV", true).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommands() {
        assert_eq!(
            parse_args(&strv(&["info", "m.mtx"])).unwrap(),
            Command::Info {
                path: "m.mtx".into()
            }
        );
        let cmd = parse_args(&strv(&[
            "solve",
            "m.rsa",
            "--procs",
            "64",
            "--nrhs",
            "10",
            "--block",
            "4",
            "--ordering",
            "multilevel",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                path: "m.rsa".into(),
                procs: 64,
                nrhs: 10,
                block: 4,
                ordering: "multilevel".into(),
                threads: 3,
                certify: false,
                regularize: false,
                scale: false,
                precision: "f64".into(),
            }
        );
        // the certify flags are boolean (no value) and order-insensitive
        let cmd = parse_args(&strv(&[
            "solve",
            "m.rsa",
            "--certify",
            "--procs",
            "4",
            "--scale",
            "--regularize",
            "--precision",
            "f32",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                path: "m.rsa".into(),
                procs: 4,
                nrhs: 1,
                block: 8,
                ordering: "nd".into(),
                threads: 0,
                certify: true,
                regularize: true,
                scale: true,
                precision: "f32".into(),
            }
        );
        assert!(parse_args(&strv(&["solve"])).is_err());
        assert!(
            parse_args(&strv(&["solve", "m", "--precision", "f16"])).is_err(),
            "bad precision lanes are rejected at parse time"
        );
        assert!(parse_args(&strv(&["bogus"])).is_err());
        assert!(parse_args(&strv(&["solve", "m", "--procs"])).is_err());
        assert!(parse_args(&strv(&["solve", "m", "--procs", "0"])).is_err());
        assert_eq!(
            parse_args(&strv(&["gen", "grid2d:8", "g.mtx"])).unwrap(),
            Command::Gen {
                spec: "grid2d:8".into(),
                output: "g.mtx".into()
            }
        );
        assert!(parse_args(&strv(&["gen", "grid2d:8"])).is_err());
    }

    #[test]
    fn parses_serve_and_client() {
        assert_eq!(
            parse_args(&strv(&["serve"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7411".into(),
                workers: 32,
                max_batch: 8,
                window_us: 1000,
                budget_mb: 512,
                exec: "threaded".into(),
                fault_spec: String::new(),
                max_pending: 1024,
                io_timeout_ms: 10_000,
                deadline_cap_ms: 30_000,
                solver_threads: 0,
                verify_every: 0,
                max_conns: 0,
                pipeline: 64,
                persist_dir: String::new(),
                persist_budget_mb: 0,
                precision: "f64".into(),
            }
        );
        assert_eq!(
            parse_args(&strv(&[
                "serve",
                "--addr",
                "0.0.0.0:9000",
                "--workers",
                "4",
                "--max-batch",
                "30",
                "--window-us",
                "500",
                "--budget-mb",
                "64",
                "--exec",
                "seq",
                "--fault-spec",
                "solve.panic=every:7",
                "--max-pending",
                "16",
                "--io-timeout-ms",
                "2500",
                "--deadline-cap-ms",
                "750",
                "--solver-threads",
                "2",
                "--verify-every",
                "64",
                "--max-conns",
                "5000",
                "--pipeline",
                "16",
                "--persist-dir",
                "/tmp/factors",
                "--persist-budget-mb",
                "128",
                "--precision",
                "auto",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 4,
                max_batch: 30,
                window_us: 500,
                budget_mb: 64,
                exec: "seq".into(),
                fault_spec: "solve.panic=every:7".into(),
                max_pending: 16,
                io_timeout_ms: 2500,
                deadline_cap_ms: 750,
                solver_threads: 2,
                verify_every: 64,
                max_conns: 5000,
                pipeline: 16,
                persist_dir: "/tmp/factors".into(),
                persist_budget_mb: 128,
                precision: "auto".into(),
            }
        );
        assert!(
            parse_args(&strv(&["serve", "--precision", "bf16"])).is_err(),
            "bad precision lanes are rejected at parse time"
        );
        assert!(
            parse_args(&strv(&["serve", "--persist-budget-mb", "8"])).is_err(),
            "--persist-budget-mb without --persist-dir is rejected"
        );
        assert!(parse_args(&strv(&["serve", "--exec", "warp"])).is_err());
        assert!(parse_args(&strv(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&strv(&["serve", "--pipeline", "0"])).is_err());
        assert!(
            parse_args(&strv(&["serve", "--fault-spec", "warp.panic=every:1"])).is_err(),
            "bad fault specs are rejected at parse time"
        );

        assert_eq!(
            parse_args(&strv(&[
                "client",
                "127.0.0.1:7411",
                "--gen",
                "grid2d:16",
                "--clients",
                "8",
                "--secs",
                "0.5",
                "--shutdown",
                "--timeout-ms",
                "200",
                "--retries",
                "5",
                "--backoff-ms",
                "20",
                "--idle-conns",
                "100",
            ]))
            .unwrap(),
            Command::Client {
                addr: "127.0.0.1:7411".into(),
                spec: Some("grid2d:16".into()),
                matrix: None,
                clients: 8,
                secs: 0.5,
                shutdown: true,
                timeout_ms: 200,
                retries: 5,
                backoff_ms: 20,
                idle_conns: 100,
                certify: false,
                stats: false,
            }
        );
        if let Command::Client { certify, stats, .. } =
            parse_args(&strv(&["client", "a:1", "--certify", "--stats"])).unwrap()
        {
            assert!(certify && stats);
        } else {
            panic!("expected client command");
        }
        assert!(parse_args(&strv(&["client"])).is_err());
        assert!(parse_args(&strv(&["client", "a:1", "--backoff-ms", "0"])).is_err());
        assert!(
            parse_args(&strv(&["client", "a:1", "--gen", "g", "--matrix", "m"])).is_err(),
            "--gen and --matrix are mutually exclusive"
        );
        assert!(parse_args(&strv(&["client", "a:1", "--clients", "0"])).is_err());
    }

    #[test]
    fn parses_route() {
        assert_eq!(
            parse_args(&strv(&[
                "route",
                "--backends",
                "127.0.0.1:7411, 127.0.0.1:7413",
                "--replication",
                "3",
                "--vnodes",
                "32",
                "--deadline-cap-ms",
                "5000",
                "--io-timeout-ms",
                "2500",
                "--probe-ms",
                "50",
                "--max-conns",
                "1000",
                "--pipeline",
                "16",
                "--retained-mb",
                "64",
                "--hedge-after-ms",
                "25",
                "--hedge-budget",
                "0.2",
            ]))
            .unwrap(),
            Command::Route {
                addr: "127.0.0.1:7412".into(),
                backends: vec!["127.0.0.1:7411".into(), "127.0.0.1:7413".into()],
                spawn: 0,
                replication: 3,
                vnodes: 32,
                deadline_cap_ms: 5000,
                io_timeout_ms: 2500,
                probe_ms: 50,
                max_conns: 1000,
                pipeline: 16,
                retained_mb: 64,
                hedge_after_ms: 25,
                hedge_budget: 0.2,
            }
        );
        assert_eq!(
            parse_args(&strv(&["route", "--spawn", "3"])).unwrap(),
            Command::Route {
                addr: "127.0.0.1:7412".into(),
                backends: vec![],
                spawn: 3,
                replication: 2,
                vnodes: trisolv_router::Ring::DEFAULT_VNODES,
                deadline_cap_ms: 30_000,
                io_timeout_ms: 10_000,
                probe_ms: 100,
                max_conns: 0,
                pipeline: 64,
                retained_mb: 256,
                hedge_after_ms: 50,
                hedge_budget: 0.10,
            }
        );
        assert!(
            parse_args(&strv(&["route"])).is_err(),
            "route needs --backends or --spawn"
        );
        assert!(
            parse_args(&strv(&["route", "--backends", "a:1", "--spawn", "2"])).is_err(),
            "--backends and --spawn are mutually exclusive"
        );
        assert!(parse_args(&strv(&["route", "--spawn", "2", "--replication", "0"])).is_err());
        assert!(
            parse_args(&strv(&["route", "--spawn", "2", "--hedge-budget", "1.5"])).is_err(),
            "--hedge-budget must be a fraction"
        );
    }

    #[test]
    fn client_command_against_live_server() {
        let server = srv::Server::spawn(srv::ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            ..srv::ServerOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let out = run(&Command::Client {
            addr: addr.clone(),
            spec: Some("grid2d:12".into()),
            matrix: None,
            clients: 2,
            secs: 0.2,
            shutdown: true,
            timeout_ms: 0,
            retries: 3,
            backoff_ms: 50,
            idle_conns: 10,
            certify: true,
            stats: true,
        })
        .unwrap();
        assert!(out.contains("loaded grid2d:12"), "{out}");
        assert!(out.contains("idle:     10 extra connections"), "{out}");
        assert!(out.contains("requests:"), "{out}");
        assert!(out.contains("certify:  omega"), "{out}");
        assert!(out.contains("-> certified"), "{out}");
        assert!(out.contains("stat solves_ok = "), "{out}");
        assert!(out.contains("server shutdown acknowledged"), "{out}");
        // SHUTDOWN must actually have stopped the server
        server.wait();
        // a second client now fails to connect quickly
        assert!(srv::Client::connect(addr.as_str()).is_err());
    }

    #[test]
    fn gen_writes_loadable_matrix() {
        let dir = std::env::temp_dir().join("trisolv-cli-gen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("gen.mtx");
        let msg = run(&Command::Gen {
            spec: "grid2d:8".into(),
            output: mtx.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(msg.contains("64 x 64"), "{msg}");
        let (a, _) = load_matrix(&mtx.to_string_lossy()).unwrap();
        assert_eq!(a, gen::grid2d_laplacian(8, 8));
        // Harwell-Boeing output path as well
        let rsa = dir.join("gen.rsa");
        run(&Command::Gen {
            spec: "random:40:5:3".into(),
            output: rsa.to_string_lossy().into_owned(),
        })
        .unwrap();
        let (b, _) = load_matrix(&rsa.to_string_lossy()).unwrap();
        assert_eq!(b.nrows(), 40);
        // bad specs surface as clean errors
        assert!(run(&Command::Gen {
            spec: "nosuch:4".into(),
            output: mtx.to_string_lossy().into_owned(),
        })
        .is_err());
    }

    #[test]
    fn info_solve_convert_round_trip() {
        let dir = std::env::temp_dir().join("trisolv-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let rsa = dir.join("g.rsa");
        // write a test matrix in Matrix-Market form
        {
            let a = gen::grid2d_laplacian(8, 8);
            let mut f = std::io::BufWriter::new(File::create(&mtx).unwrap());
            mmio::write_matrix_market(&mut f, &a, mmio::Symmetry::Symmetric).unwrap();
        }
        let info = run(&Command::Info {
            path: mtx.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(info.contains("order:   64 x 64"), "{info}");
        // convert to Harwell-Boeing and solve from that
        run(&Command::Convert {
            input: mtx.to_string_lossy().into_owned(),
            output: rsa.to_string_lossy().into_owned(),
        })
        .unwrap();
        let solved = run(&Command::Solve {
            path: rsa.to_string_lossy().into_owned(),
            procs: 4,
            nrhs: 2,
            block: 2,
            ordering: "nd".into(),
            threads: 2,
            certify: false,
            regularize: false,
            scale: false,
            precision: "f64".into(),
        })
        .unwrap();
        assert!(solved.contains("residual:"), "{solved}");
        assert!(solved.contains("threaded: 2 threads"), "{solved}");
        assert!(
            !solved.contains("certify:"),
            "no certificate lines without the flags: {solved}"
        );
        // with the certify flags, the certificate lines appear
        let certified = run(&Command::Solve {
            path: rsa.to_string_lossy().into_owned(),
            procs: 4,
            nrhs: 2,
            block: 2,
            ordering: "nd".into(),
            threads: 2,
            certify: true,
            regularize: true,
            scale: true,
            precision: "f32".into(),
        })
        .unwrap();
        assert!(
            certified.contains("certify:") && certified.contains("certified"),
            "{certified}"
        );
        assert!(
            certified.contains("[f32 lane]"),
            "a well-conditioned grid must certify on the narrow lane: {certified}"
        );
        assert!(
            certified.contains("boosted pivots 0")
                && certified.contains("scaling ratio")
                && certified.contains("cond1 estimate"),
            "{certified}"
        );
        let treal = solved.lines().find(|l| l.starts_with("threaded")).unwrap();
        let tresid: f64 = treal.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(tresid < 1e-9, "{treal}");
        // the printed residual must be tiny
        let resid_line = solved.lines().find(|l| l.starts_with("residual")).unwrap();
        let val: f64 = resid_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(val < 1e-9, "{resid_line}");
    }

    #[test]
    fn unknown_ordering_rejected() {
        let a = gen::grid2d_laplacian(3, 3);
        assert!(ordering_perm("zigzag", &a).is_err());
        for name in ["nd", "multilevel", "mindeg", "rcm", "natural"] {
            assert_eq!(ordering_perm(name, &a).unwrap().len(), 9);
        }
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&Command::Info {
            path: "/nonexistent/m.rsa".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
