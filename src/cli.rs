//! Implementation of the `trisolv` command-line tool (argument parsing and
//! subcommands), kept as a library module so it is unit-testable.
//!
//! Subcommands:
//!
//! * `info <matrix>` — structural and symbolic statistics;
//! * `solve <matrix> [--procs P] [--nrhs M] [--block B] [--ordering O]` —
//!   factor and solve on the simulated machine, reporting timings;
//! * `convert <in> <out>` — convert between Matrix-Market (`.mtx`) and
//!   Harwell-Boeing (anything else) files.
//!
//! Matrices are detected by extension: `.mtx` → Matrix Market, otherwise
//! Harwell-Boeing.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use trisolv_core::mapping::SubcubeMapping;
use trisolv_core::tree::{solve_fb, SolveConfig};
use trisolv_factor::seqchol;
use trisolv_graph::{mindeg, multilevel, nd, rcm, Graph, Permutation};
use trisolv_machine::MachineParams;
use trisolv_matrix::{gen, hb, io as mmio, CscMatrix};

/// Errors surfaced to the CLI user.
pub type CliError = String;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print structural statistics.
    Info {
        /// Input matrix path.
        path: String,
    },
    /// Factor and solve with timing report.
    Solve {
        /// Input matrix path.
        path: String,
        /// Virtual processors.
        procs: usize,
        /// Right-hand sides.
        nrhs: usize,
        /// Block-cyclic block size.
        block: usize,
        /// Ordering name.
        ordering: String,
    },
    /// Convert between matrix file formats.
    Convert {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
    },
}

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = "usage: trisolv <info|solve|convert> ...\n\
                 \x20 trisolv info <matrix>\n\
                 \x20 trisolv solve <matrix> [--procs P] [--nrhs M] [--block B] [--ordering nd|multilevel|mindeg|rcm|natural]\n\
                 \x20 trisolv convert <in> <out>";
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("info") => {
            let path = it.next().ok_or_else(|| usage.to_string())?.clone();
            Ok(Command::Info { path })
        }
        Some("solve") => {
            let path = it.next().ok_or_else(|| usage.to_string())?.clone();
            let mut procs = 16usize;
            let mut nrhs = 1usize;
            let mut block = 8usize;
            let mut ordering = "nd".to_string();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                match flag.as_str() {
                    "--procs" => procs = value.parse().map_err(|e| format!("bad --procs: {e}"))?,
                    "--nrhs" => nrhs = value.parse().map_err(|e| format!("bad --nrhs: {e}"))?,
                    "--block" => block = value.parse().map_err(|e| format!("bad --block: {e}"))?,
                    "--ordering" => ordering = value.clone(),
                    other => return Err(format!("unknown flag {other}\n{usage}")),
                }
            }
            if procs == 0 || nrhs == 0 || block == 0 {
                return Err("--procs, --nrhs, --block must be positive".to_string());
            }
            Ok(Command::Solve {
                path,
                procs,
                nrhs,
                block,
                ordering,
            })
        }
        Some("convert") => {
            let input = it.next().ok_or_else(|| usage.to_string())?.clone();
            let output = it.next().ok_or_else(|| usage.to_string())?.clone();
            Ok(Command::Convert { input, output })
        }
        _ => Err(usage.to_string()),
    }
}

/// Load a matrix by extension (`.mtx` → Matrix Market, else Harwell-Boeing).
pub fn load_matrix(path: &str) -> Result<(CscMatrix, String), CliError> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    if Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("mtx"))
    {
        let (m, _) = mmio::read_matrix_market(reader).map_err(|e| e.to_string())?;
        Ok((
            m,
            Path::new(path)
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned(),
        ))
    } else {
        let (m, title) = hb::read_harwell_boeing(reader).map_err(|e| e.to_string())?;
        Ok((m, title))
    }
}

fn ordering_perm(name: &str, a: &CscMatrix) -> Result<Permutation, CliError> {
    let g = Graph::from_sym_lower(a);
    Ok(match name {
        "nd" => nd::nested_dissection(&g, nd::NdOptions::default()),
        "multilevel" => {
            multilevel::nested_dissection_multilevel(&g, multilevel::MlOptions::default())
        }
        "mindeg" => mindeg::minimum_degree(&g),
        "rcm" => rcm::reverse_cuthill_mckee(&g),
        "natural" => Permutation::identity(a.ncols()),
        other => return Err(format!("unknown ordering {other:?}")),
    })
}

/// Execute a parsed command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Info { path } => {
            let (a, title) = load_matrix(path)?;
            let _ = writeln!(out, "matrix:  {title}");
            let _ = writeln!(out, "order:   {} x {}", a.nrows(), a.ncols());
            let _ = writeln!(out, "stored:  {} nonzeros (lower triangle)", a.nnz());
            let perm = ordering_perm("nd", &a)?;
            let an = seqchol::analyze_with_perm(&a, &perm);
            let _ = writeln!(out, "--- after nested dissection ---");
            let _ = writeln!(out, "factor:  {} nonzeros", an.part.nnz());
            let _ = writeln!(
                out,
                "opcount: {:.2} Mflop factorization, {:.3} Mflop per fw+bw solve",
                an.part.factor_flops() as f64 / 1e6,
                an.part.solve_flops(1) as f64 / 1e6
            );
            let _ = writeln!(out, "supernodes: {}", an.part.nsup());
            let _ = writeln!(out, "etree height: {}", an.sym.tree().height());
        }
        Command::Solve {
            path,
            procs,
            nrhs,
            block,
            ordering,
        } => {
            let (a, title) = load_matrix(path)?;
            let perm = ordering_perm(ordering, &a)?;
            let an = seqchol::analyze_with_perm(&a, &perm);
            let factor = seqchol::factor_supernodal(&an.pa, &an.part)
                .map_err(|e| format!("factorization failed: {e}"))?;
            let mapping = SubcubeMapping::new(&an.part, *procs);
            let config = SolveConfig {
                nprocs: *procs,
                block: *block,
                params: MachineParams::t3d(),
            };
            let b = gen::random_rhs(a.ncols(), *nrhs, 42);
            let (x, report) = solve_fb(&factor, &mapping, &b, &config);
            // residual check in the permuted space
            let ax = an.pa.spmv_sym_lower(&x).map_err(|e| e.to_string())?;
            let resid = ax.max_abs_diff(&b).unwrap_or(f64::NAN) / b.norm_max().max(1.0);
            let _ = writeln!(out, "matrix:   {title} (N = {})", a.ncols());
            let _ = writeln!(
                out,
                "ordering: {ordering}; factor nnz {}; {} supernodes",
                an.part.nnz(),
                an.part.nsup()
            );
            let _ = writeln!(
                out,
                "solve:    p = {procs}, NRHS = {nrhs}, b = {block} -> {:.4} s virtual ({:.1} MFLOPS)",
                report.total_time,
                report.mflops()
            );
            let _ = writeln!(
                out,
                "          forward {:.4} s, backward {:.4} s, {} msgs, {} words",
                report.forward_time, report.backward_time, report.msgs, report.words
            );
            let _ = writeln!(out, "residual: {resid:.3e} (relative, random RHS)");
        }
        Command::Convert { input, output } => {
            let (a, title) = load_matrix(input)?;
            let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
            let mut w = BufWriter::new(file);
            if Path::new(output)
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("mtx"))
            {
                mmio::write_matrix_market(&mut w, &a, mmio::Symmetry::Symmetric)
                    .map_err(|e| e.to_string())?;
            } else {
                hb::write_harwell_boeing(&mut w, &a, &title, "TRISOLV", true)
                    .map_err(|e| e.to_string())?;
            }
            let _ = writeln!(out, "wrote {output} ({} nonzeros)", a.nnz());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommands() {
        assert_eq!(
            parse_args(&strv(&["info", "m.mtx"])).unwrap(),
            Command::Info {
                path: "m.mtx".into()
            }
        );
        let cmd = parse_args(&strv(&[
            "solve",
            "m.rsa",
            "--procs",
            "64",
            "--nrhs",
            "10",
            "--block",
            "4",
            "--ordering",
            "multilevel",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                path: "m.rsa".into(),
                procs: 64,
                nrhs: 10,
                block: 4,
                ordering: "multilevel".into()
            }
        );
        assert!(parse_args(&strv(&["solve"])).is_err());
        assert!(parse_args(&strv(&["bogus"])).is_err());
        assert!(parse_args(&strv(&["solve", "m", "--procs"])).is_err());
        assert!(parse_args(&strv(&["solve", "m", "--procs", "0"])).is_err());
    }

    #[test]
    fn info_solve_convert_round_trip() {
        let dir = std::env::temp_dir().join("trisolv-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let rsa = dir.join("g.rsa");
        // write a test matrix in Matrix-Market form
        {
            let a = gen::grid2d_laplacian(8, 8);
            let mut f = std::io::BufWriter::new(File::create(&mtx).unwrap());
            mmio::write_matrix_market(&mut f, &a, mmio::Symmetry::Symmetric).unwrap();
        }
        let info = run(&Command::Info {
            path: mtx.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(info.contains("order:   64 x 64"), "{info}");
        // convert to Harwell-Boeing and solve from that
        run(&Command::Convert {
            input: mtx.to_string_lossy().into_owned(),
            output: rsa.to_string_lossy().into_owned(),
        })
        .unwrap();
        let solved = run(&Command::Solve {
            path: rsa.to_string_lossy().into_owned(),
            procs: 4,
            nrhs: 2,
            block: 2,
            ordering: "nd".into(),
        })
        .unwrap();
        assert!(solved.contains("residual:"), "{solved}");
        // the printed residual must be tiny
        let resid_line = solved.lines().find(|l| l.starts_with("residual")).unwrap();
        let val: f64 = resid_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(val < 1e-9, "{resid_line}");
    }

    #[test]
    fn unknown_ordering_rejected() {
        let a = gen::grid2d_laplacian(3, 3);
        assert!(ordering_perm("zigzag", &a).is_err());
        for name in ["nd", "multilevel", "mindeg", "rcm", "natural"] {
            assert_eq!(ordering_perm(name, &a).unwrap().len(), 9);
        }
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&Command::Info {
            path: "/nonexistent/m.rsa".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
