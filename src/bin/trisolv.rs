//! The `trisolv` command-line tool: inspect, convert, and solve sparse SPD
//! systems on the simulated parallel machine. See `trisolv::cli` for the
//! subcommand reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match trisolv::cli::parse_args(&args).and_then(|cmd| trisolv::cli::run(&cmd)) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
