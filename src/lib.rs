//! Facade crate re-exporting the trisolv workspace. See README.md.
pub mod cli;
pub use trisolv_analysis as analysis;
pub use trisolv_core as core;
pub use trisolv_factor as factor;
pub use trisolv_graph as graph;
pub use trisolv_machine as machine;
pub use trisolv_matrix as matrix;
pub use trisolv_symbolic as symbolic;
