//! A structural-analysis workload: one stiffness matrix, many load cases.
//!
//! This is the scenario the paper's introduction motivates: numerical
//! factorization happens once, but the triangular solves repeat for every
//! right-hand side (load case, time step, or Newton iteration), so the
//! solve phase — and the one-time 2-D → 1-D redistribution of `L` — must
//! be parallelized too.
//!
//! Run: `cargo run --release --example fem_workload`

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::redistribute::redistribute_factor;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::factor::par::{factor_parallel, FactorConfig};
use trisolv::factor::seqchol;
use trisolv::graph::{nd, Graph};
use trisolv::machine::MachineParams;
use trisolv::matrix::gen;

fn main() {
    // A 3-D finite-element block: 12x10x8 mesh, 3 displacement DOF per
    // node — the same class as the paper's BCSSTK31/COPTER2 matrices.
    let (kx, ky, kz, dof) = (12, 10, 8, 3);
    let a = gen::fem3d(kx, ky, kz, dof);
    let n = a.ncols();
    println!("stiffness matrix: N = {n}, nnz = {}", a.nnz());

    // symbolic analysis under geometric nested dissection
    let graph = Graph::from_sym_lower(&a);
    let coords = nd::grid3d_coords(kx, ky, kz, dof);
    let perm = nd::nested_dissection_coords(&graph, &coords, nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    println!(
        "analysis: {} supernodes, factor nnz = {}, factor opcount = {:.1} Mflop",
        an.part.nsup(),
        an.part.nnz(),
        an.part.factor_flops() as f64 / 1e6
    );

    let p = 64;
    let params = MachineParams::t3d();
    let mapping = SubcubeMapping::new(&an.part, p);

    // 1. parallel numerical factorization (2-D frontal distribution)
    let fconfig = FactorConfig {
        nprocs: p,
        block: 8,
        params,
    };
    let (factor, frep) = factor_parallel(&an.pa, &an.part, &mapping, &fconfig).expect("SPD");
    println!(
        "\nfactorization on p={p}: {:.3} s virtual ({:.0} MFLOPS)",
        frep.time,
        frep.mflops()
    );

    // 2. one-time redistribution of L from the 2-D factorization layout to
    //    the 1-D solver layout
    let redist = redistribute_factor(&factor, &mapping, 8, 8, params);
    println!("redistribution 2-D -> 1-D: {:.4} s virtual", redist.time);

    // 3. repeated solves: 12 load cases arriving in blocks of various sizes
    let sconfig = SolveConfig {
        nprocs: p,
        block: 8,
        params,
    };
    let mut total_solve = 0.0;
    let mut single_solve = f64::INFINITY;
    for (batch, nrhs) in [(1, 1), (2, 1), (3, 10)] {
        for _ in 0..batch {
            let b = gen::random_rhs(n, nrhs, 11);
            let (_, rep) = solve_fb(&factor, &mapping, &b, &sconfig);
            total_solve += rep.total_time;
            if nrhs == 1 {
                single_solve = single_solve.min(rep.total_time);
            }
            println!(
                "solve with NRHS={nrhs:>2}: {:.4} s virtual ({:.0} MFLOPS)",
                rep.total_time,
                rep.mflops()
            );
        }
    }
    println!(
        "\namortization: redistribution cost {:.0}% of one NRHS=1 solve and {:.0}% of \
         factorization, and is paid once for all 33 load cases ({:.3} s of solves total)",
        100.0 * redist.time / single_solve,
        100.0 * redist.time / frep.time,
        total_solve,
    );
    println!(
        "one NRHS=1 solve is {:.0}x cheaper than factorization — the paper's headline takeaway",
        frep.time / single_solve
    );
}
