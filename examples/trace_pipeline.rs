//! Visualize a parallel solve as an ASCII Gantt chart: the pipeline
//! wavefronts, the gather synchronizations between tree levels, and the
//! load balance of the sequential subtrees become directly visible.
//!
//! Run: `cargo run --release --example trace_pipeline`

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb_traced, SolveConfig};
use trisolv::factor::seqchol;
use trisolv::graph::{nd, Graph};
use trisolv::machine::{trace, MachineParams};
use trisolv::matrix::gen;

fn main() {
    let k = 31;
    let a = gen::grid2d_laplacian(k, k);
    let g = Graph::from_sym_lower(&a);
    let perm =
        nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    let factor = seqchol::factor_supernodal(&an.pa, &an.part).expect("SPD");

    let p = 8;
    let mapping = SubcubeMapping::new(&an.part, p);
    let config = SolveConfig {
        nprocs: p,
        block: 4,
        params: MachineParams::t3d(),
    };
    let b = gen::random_rhs(a.ncols(), 1, 1);
    let (_, report, traces) = solve_fb_traced(&factor, &mapping, &b, &config);

    println!(
        "forward+backward solve of GRID2D({k}) on {p} simulated processors \
         ({:.3} ms, {:.0} MFLOPS)\n",
        report.total_time * 1e3,
        report.mflops()
    );
    print!("{}", trace::render_gantt(&traces, 100));
    let util = trace::utilization(&traces);
    println!(
        "\nper-processor compute utilization: {}",
        util.iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("\nHow to read it: the left half is forward elimination — every processor");
    println!("computes in its sequential subtree, then the pipelined supernode kernels");
    println!("interleave compute (#) with message waits (.) in a visible wavefront; the");
    println!("barrier before back substitution shows as a wait column; the right half");
    println!("mirrors it root-to-leaf.");
}
