//! Quickstart: factor a sparse SPD system once, then solve it — first with
//! the sequential supernodal solver, then on the simulated
//! distributed-memory machine with the paper's parallel algorithms.
//!
//! Run: `cargo run --release --example quickstart`

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::SparseCholeskySolver;
use trisolv::machine::MachineParams;
use trisolv::matrix::{gen, DenseMatrix};

fn main() {
    // 1. A model problem: the 5-point Laplacian on a 40x40 grid.
    let k = 40;
    let a = gen::grid2d_laplacian(k, k);
    let n = a.ncols();
    println!("matrix: {}x{} with {} stored nonzeros", n, n, a.nnz());

    // 2. Factor (nested-dissection ordering + supernodal multifrontal
    //    Cholesky happen inside).
    let solver = SparseCholeskySolver::factor(&a).expect("SPD");
    println!(
        "factor: {} supernodes, {} nonzeros in L",
        solver.factor_matrix().nsup(),
        solver.factor_matrix().nnz()
    );

    // 3. Solve against a known solution and check the error.
    let x_true = gen::random_rhs(n, 3, 7);
    let b = a.spmv_sym_lower(&x_true).expect("shape");
    let x = solver.solve(&b);
    let err = x.max_abs_diff(&x_true).expect("same shape");
    println!("sequential solve: max error = {err:.3e}");
    assert!(err < 1e-8);

    // 4. The same solve on a simulated 16-processor machine: subtree-to-
    //    subcube mapping + pipelined block-cyclic kernels (paper §2).
    let factor = solver.factor_matrix();
    let mapping = SubcubeMapping::new(factor.partition(), 16);
    let config = SolveConfig {
        nprocs: 16,
        block: 4,
        params: MachineParams::t3d(),
    };
    // permute b into the factor's index space
    let perm = solver.perm();
    let mut pb = DenseMatrix::zeros(n, b.ncols());
    for c in 0..b.ncols() {
        for i in 0..n {
            pb[(perm.apply(i), c)] = b[(i, c)];
        }
    }
    let (px, report) = solve_fb(factor, &mapping, &pb, &config);
    let mut x_par = DenseMatrix::zeros(n, b.ncols());
    for c in 0..b.ncols() {
        for i in 0..n {
            x_par[(i, c)] = px[(perm.apply(i), c)];
        }
    }
    let err = x_par.max_abs_diff(&x_true).expect("same shape");
    println!(
        "parallel solve (p=16): max error = {err:.3e}, virtual time = {:.3} ms, {:.0} MFLOPS",
        report.total_time * 1e3,
        report.mflops()
    );
    assert!(err < 1e-8);

    // 5. Speedup over the single-processor virtual time.
    let mapping1 = SubcubeMapping::new(factor.partition(), 1);
    let config1 = SolveConfig {
        nprocs: 1,
        ..config
    };
    let (_, rep1) = solve_fb(factor, &mapping1, &pb, &config1);
    println!(
        "virtual speedup on 16 processors: {:.1}x",
        rep1.total_time / report.total_time
    );
}
