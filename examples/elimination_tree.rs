//! A guided tour of the symbolic machinery on a matrix small enough to
//! print: ordering, fill-in, supernodes, the elimination tree, and the
//! subtree-to-subcube mapping (the paper's Figures 1 and 2).
//!
//! Run: `cargo run --release --example elimination_tree`
//! (The `fig1_etree` harness binary prints the same content with the exact
//! experiment parameters.)

use trisolv::core::mapping::SubcubeMapping;
use trisolv::factor::seqchol;
use trisolv::graph::{nd, Graph};
use trisolv::matrix::gen;

fn main() {
    let (kx, ky) = (5, 5);
    let a = gen::grid2d_laplacian(kx, ky);
    println!("5x5 grid Laplacian: N = {}, nnz = {}\n", a.ncols(), a.nnz());

    let g = Graph::from_sym_lower(&a);
    let coords = nd::grid2d_coords(kx, ky, 1);
    let perm = nd::nested_dissection_coords(&g, &coords, nd::NdOptions { leaf_size: 3 });
    let an = seqchol::analyze_with_perm(&a, &perm);

    println!("after nested dissection + postorder:");
    println!(
        "  factor nonzeros: {} (fill-in: {})",
        an.sym.nnz(),
        an.sym.nnz() - a.nnz()
    );
    println!("  supernodes: {}", an.part.nsup());
    println!("  elimination-tree height: {}\n", an.sym.tree().height());

    println!("supernodal elimination tree (widths t, heights n):");
    let children = an.part.children();
    let mapping = SubcubeMapping::new(&an.part, 4);
    let mut stack: Vec<(usize, usize)> = an.part.roots().iter().map(|&r| (r, 0)).collect();
    while let Some((s, depth)) = stack.pop() {
        println!(
            "  {:indent$}supernode {s}: cols {:?}, t = {}, n = {}, procs {:?}",
            "",
            an.part.cols(s).collect::<Vec<_>>(),
            an.part.width(s),
            an.part.height(s),
            mapping.group(s).ranks(),
            indent = 2 * depth
        );
        for &c in &children[s] {
            stack.push((c, depth + 1));
        }
    }

    println!("\nforward-elimination dataflow (leaf to root):");
    for s in 0..an.part.nsup() {
        println!(
            "  supernode {s}: solve {}x{} triangle, send {} update rows to ancestors",
            an.part.width(s),
            an.part.width(s),
            an.part.height(s) - an.part.width(s)
        );
    }
}
