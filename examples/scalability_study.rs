//! Scalability study: efficiency versus processor count and the empirical
//! isoefficiency of the parallel triangular solver (paper §3.2).
//!
//! For each processor count we search for the smallest 2-D grid whose
//! solver efficiency reaches 50% — the growth of that problem size with
//! `p` is the isoefficiency function, which the paper proves is `O(p²)`
//! (problem size measured in solver flops `W ≈ N log N`).
//!
//! Run: `cargo run --release --example scalability_study`

use trisolv::analysis::{efficiency, fit_power_law};
use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::factor::seqchol;
use trisolv::graph::{nd, Graph};
use trisolv::machine::MachineParams;
use trisolv::matrix::gen;

fn solve_times(k: usize, p: usize) -> (f64, f64) {
    let a = gen::grid2d_laplacian(k, k);
    let graph = Graph::from_sym_lower(&a);
    let coords = nd::grid2d_coords(k, k, 1);
    let perm = nd::nested_dissection_coords(&graph, &coords, nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    let factor = seqchol::factor_supernodal(&an.pa, &an.part).expect("SPD");
    let b = gen::random_rhs(a.ncols(), 1, 3);
    let run = |nprocs: usize| {
        let mapping = SubcubeMapping::new(&an.part, nprocs);
        let config = SolveConfig {
            nprocs,
            block: 4,
            params: MachineParams::t3d(),
        };
        solve_fb(&factor, &mapping, &b, &config).1
    };
    let serial = run(1);
    let par = run(p);
    (serial.total_time, par.total_time)
}

fn main() {
    println!("== efficiency at fixed problem size (63x63 grid, NRHS = 1) ==\n");
    println!("  p   T_P (ms)  speedup  efficiency");
    let (ts, _) = solve_times(63, 1);
    for p in [2usize, 4, 8, 16, 32, 64] {
        let (_, tp) = solve_times(63, p);
        println!(
            "{p:3}   {:8.3}  {:7.2}  {:9.2}",
            tp * 1e3,
            ts / tp,
            efficiency(ts, tp, p)
        );
    }

    println!("\n== empirical isoefficiency (smallest grid reaching E >= 0.5) ==\n");
    println!("  p   grid side k   W = solver flops");
    let mut points = Vec::new();
    for p in [2usize, 4, 8, 16, 32] {
        let mut found = None;
        for k in [15usize, 21, 31, 43, 63, 89, 127, 179] {
            let (ts, tp) = solve_times(k, p);
            if efficiency(ts, tp, p) >= 0.5 {
                // flops proxy: serial time x vector rate
                let w = ts * MachineParams::t3d().solve_rate(1);
                found = Some((k, w));
                break;
            }
        }
        match found {
            Some((k, w)) => {
                println!("{p:3}   {k:11}   {w:14.0}");
                points.push((p as f64, w));
            }
            None => println!("{p:3}   (no candidate grid reached E = 0.5)"),
        }
    }
    if points.len() >= 3 {
        let fit = fit_power_law(&points);
        println!(
            "\nfitted isoefficiency W ~ p^{:.2}  (paper: O(p^2); r^2 = {:.3})",
            fit.b, fit.r2
        );
    }
}
