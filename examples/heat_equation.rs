//! Implicit heat-equation time stepping: the canonical "factor once, solve
//! every step" workload that makes triangular-solve performance matter.
//!
//! Backward Euler for `u_t = Δu` on a 2-D grid gives
//! `(I + dt·A)·u^{k+1} = u^k` with `A` the (positive semi-definite graph)
//! Laplacian — one factorization, then one forward+backward solve per time
//! step. With several independent initial conditions the steps become
//! multi-RHS solves, which is exactly where the paper's BLAS-3 effect pays.
//!
//! Run: `cargo run --release --example heat_equation`

use trisolv::core::{ParallelSolver, ParallelSolverOptions};
use trisolv::graph::nd;
use trisolv::matrix::{gen, DenseMatrix, TripletMatrix};

fn main() {
    let k = 33;
    let n = k * k;
    let dt = 0.1;
    // I + dt·A, lower triangle
    let lap = gen::grid2d_laplacian(k, k);
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        for (idx, &i) in lap.col_rows(j).iter().enumerate() {
            let v = dt * lap.col_values(j)[idx] + if i == j { 1.0 } else { 0.0 };
            t.push(i, j, v).unwrap();
        }
    }
    let m = t.to_csc();

    // factor once on a 16-processor virtual machine
    let coords = nd::grid2d_coords(k, k, 1);
    let solver =
        ParallelSolver::build(&m, Some(&coords), &ParallelSolverOptions::t3d(16)).expect("SPD");
    println!("implicit heat equation on a {k}x{k} grid (N = {n}), dt = {dt}",);
    println!(
        "factorization: {:.3} s virtual; redistribution: {:.4} s virtual\n",
        solver.factor_report().time,
        solver.redistribute_report().time
    );

    // four independent initial conditions solved as one RHS block:
    // hot spots at different grid locations
    let nrhs = 4;
    let mut u = DenseMatrix::zeros(n, nrhs);
    for (c, (hx, hy)) in [(8, 8), (24, 8), (8, 24), (16, 16)].iter().enumerate() {
        u[(hy * k + hx, c)] = 100.0;
    }
    let initial_heat: Vec<f64> = (0..nrhs).map(|c| u.col(c).iter().sum()).collect();

    let steps = 20;
    let mut solve_total = 0.0;
    for step in 1..=steps {
        let (next, report) = solver.solve(&u);
        solve_total += report.total_time;
        u = next;
        if step % 5 == 0 {
            let peak = u.norm_max();
            println!(
                "step {step:>2}: peak temperature {peak:8.3}, solve {:.4} s virtual ({:.0} MFLOPS)",
                report.total_time,
                report.mflops()
            );
        }
    }

    // physics sanity: diffusion conserves heat (Neumann-free interior
    // dissipation is tiny for small dt) and flattens peaks
    for c in 0..nrhs {
        let heat: f64 = u.col(c).iter().sum();
        assert!(
            (heat - initial_heat[c]).abs() / initial_heat[c] < 0.6,
            "heat badly lost: {heat} vs {}",
            initial_heat[c]
        );
    }
    assert!(u.norm_max() < 100.0, "peaks must flatten");
    println!(
        "\n{steps} time steps took {solve_total:.3} s virtual total — {:.1}x one factorization;",
        solve_total / solver.factor_report().time
    );
    println!("with a serial solver the steps would dominate wall-clock: parallelizing the");
    println!("substitution phase is what keeps implicit time stepping scalable (the paper's");
    println!("motivating scenario).");
}
