//! Multilevel graph bisection and nested dissection.
//!
//! The paper's ordering phase cites Karypis & Kumar's parallel multilevel
//! nested dissection (its reference `[7]`). This module implements the
//! serial multilevel scheme those orderings are built on:
//!
//! 1. **Coarsen** the graph by heavy-edge matching until it is small;
//! 2. **Partition** the coarsest graph with balanced BFS region growing;
//! 3. **Uncoarsen**, refining the bisection at every level with
//!    boundary Kernighan–Lin/Fiduccia–Mattheyses passes;
//! 4. Turn the edge bisection into a **vertex separator** (greedy cover of
//!    the cut), and recurse on the halves — separator ordered last.
//!
//! For mesh-like graphs without coordinates this produces substantially
//! better separators (and hence less fill and better-balanced elimination
//! trees) than the single-level BFS dissection in [`crate::nd`].

use crate::{Graph, Permutation};

/// Options for multilevel nested dissection.
#[derive(Debug, Clone, Copy)]
pub struct MlOptions {
    /// Stop dissecting parts at or below this many vertices.
    pub leaf_size: usize,
    /// Coarsen until at most this many vertices remain.
    pub coarse_size: usize,
    /// Boundary-refinement passes per uncoarsening level.
    pub refine_passes: usize,
}

impl Default for MlOptions {
    fn default() -> Self {
        MlOptions {
            leaf_size: 8,
            coarse_size: 48,
            refine_passes: 4,
        }
    }
}

/// A weighted graph used inside the multilevel hierarchy.
#[derive(Debug, Clone)]
struct WGraph {
    /// adjacency: per vertex, (neighbor, edge weight)
    adj: Vec<Vec<(usize, u64)>>,
    /// vertex weights (number of original vertices represented)
    vwgt: Vec<u64>,
}

impl WGraph {
    fn from_graph(g: &Graph, vertices: &[usize]) -> (WGraph, Vec<usize>) {
        // map global -> local
        let mut map = vec![usize::MAX; g.nvertices()];
        for (li, &v) in vertices.iter().enumerate() {
            map[v] = li;
        }
        let adj = vertices
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .iter()
                    .filter_map(|&u| {
                        let lu = map[u];
                        (lu != usize::MAX).then_some((lu, 1u64))
                    })
                    .collect()
            })
            .collect();
        (
            WGraph {
                adj,
                vwgt: vec![1; vertices.len()],
            },
            vertices.to_vec(),
        )
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Heavy-edge matching: visit vertices in random-ish order, match each
    /// unmatched vertex with its heaviest unmatched neighbor. Returns
    /// (coarse graph, map from fine vertex to coarse vertex).
    fn coarsen(&self) -> (WGraph, Vec<usize>) {
        let n = self.n();
        let mut matched = vec![usize::MAX; n];
        let mut coarse_of = vec![usize::MAX; n];
        let mut nc = 0usize;
        // deterministic pseudo-random visit order
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (v.wrapping_mul(2654435761)) % n.max(1));
        for &v in &order {
            if matched[v] != usize::MAX {
                continue;
            }
            let mut best: Option<(usize, u64)> = None;
            for &(u, w) in &self.adj[v] {
                if u != v && matched[u] == usize::MAX && best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((u, w));
                }
            }
            match best {
                Some((u, _)) => {
                    matched[v] = u;
                    matched[u] = v;
                    coarse_of[v] = nc;
                    coarse_of[u] = nc;
                }
                None => {
                    matched[v] = v;
                    coarse_of[v] = nc;
                }
            }
            nc += 1;
        }
        // build the coarse graph, merging parallel edges: process one
        // coarse vertex at a time so accumulators never interleave
        let mut vwgt = vec![0u64; nc];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nc];
        for v in 0..n {
            vwgt[coarse_of[v]] += self.vwgt[v];
            members[coarse_of[v]].push(v);
        }
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nc];
        let mut accum: Vec<u64> = vec![0; nc];
        let mut touched: Vec<usize> = Vec::new();
        for (cv, mem) in members.iter().enumerate() {
            for &v in mem {
                for &(u, w) in &self.adj[v] {
                    let cu = coarse_of[u];
                    if cu == cv {
                        continue;
                    }
                    if accum[cu] == 0 {
                        touched.push(cu);
                    }
                    accum[cu] += w;
                }
            }
            for &cu in &touched {
                adj[cv].push((cu, accum[cu]));
                accum[cu] = 0;
            }
            touched.clear();
        }
        (WGraph { adj, vwgt }, coarse_of)
    }

    /// Balanced BFS region-growing bisection of the (coarse) graph.
    /// Returns side ∈ {0,1} per vertex.
    fn initial_bisection(&self) -> Vec<u8> {
        let n = self.n();
        let half = self.total_vwgt() / 2;
        let mut best_part: Option<(u64, Vec<u8>)> = None;
        // try a few seeds, keep the best cut among balanced ones
        for seed in 0..4usize.min(n) {
            let start = (seed * 2654435761) % n;
            let mut side = vec![1u8; n];
            let mut grown = 0u64;
            let mut queue = std::collections::VecDeque::new();
            let mut seen = vec![false; n];
            queue.push_back(start);
            seen[start] = true;
            while let Some(v) = queue.pop_front() {
                if grown + self.vwgt[v] > half && grown > 0 {
                    continue;
                }
                side[v] = 0;
                grown += self.vwgt[v];
                for &(u, _) in &self.adj[v] {
                    if !seen[u] {
                        seen[u] = true;
                        queue.push_back(u);
                    }
                }
            }
            // grow may stall in disconnected graphs: assign leftovers
            // greedily to the lighter side
            let cut = self.cut_weight(&side);
            if best_part.as_ref().is_none_or(|(bc, _)| cut < *bc) {
                best_part = Some((cut, side));
            }
        }
        best_part.expect("at least one seed").1
    }

    fn cut_weight(&self, side: &[u8]) -> u64 {
        let mut cut = 0;
        for v in 0..self.n() {
            for &(u, w) in &self.adj[v] {
                if u > v && side[u] != side[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Boundary FM refinement: move boundary vertices with positive gain
    /// (or small negative gain if it fixes balance), a few passes.
    fn refine(&self, side: &mut [u8], passes: usize) {
        let n = self.n();
        let total = self.total_vwgt();
        let mut wgt = [0u64; 2];
        for v in 0..n {
            wgt[side[v] as usize] += self.vwgt[v];
        }
        let max_side = total.div_ceil(2) + total / 8 + 1; // 12.5% imbalance allowed
        for _ in 0..passes {
            let mut moved_any = false;
            for v in 0..n {
                let s = side[v] as usize;
                let o = 1 - s;
                // gain = cut edges removed − cut edges created
                let mut internal = 0i64;
                let mut external = 0i64;
                for &(u, w) in &self.adj[v] {
                    if side[u] == side[v] {
                        internal += w as i64;
                    } else {
                        external += w as i64;
                    }
                }
                let gain = external - internal;
                let balance_ok = wgt[o] + self.vwgt[v] <= max_side;
                let fixes_balance = wgt[s] > max_side;
                if balance_ok && (gain > 0 || (gain == 0 && fixes_balance)) {
                    side[v] = o as u8;
                    wgt[s] -= self.vwgt[v];
                    wgt[o] += self.vwgt[v];
                    moved_any = true;
                }
            }
            if !moved_any {
                break;
            }
        }
    }
}

/// Multilevel edge bisection of the subgraph induced by `vertices`;
/// returns side ∈ {0, 1} per position in `vertices`.
fn multilevel_bisection(g: &Graph, vertices: &[usize], opts: MlOptions) -> Vec<u8> {
    let (fine, _) = WGraph::from_graph(g, vertices);
    // build the hierarchy
    let mut levels: Vec<WGraph> = vec![fine];
    let mut maps: Vec<Vec<usize>> = Vec::new();
    loop {
        let top = levels.last().expect("non-empty");
        if top.n() <= opts.coarse_size {
            break;
        }
        let (coarse, map) = top.coarsen();
        if coarse.n() as f64 > top.n() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        levels.push(coarse);
        maps.push(map);
    }
    // initial partition at the coarsest level
    let mut side = levels.last().expect("non-empty").initial_bisection();
    levels
        .last()
        .expect("non-empty")
        .refine(&mut side, opts.refine_passes);
    // project back up, refining at each level
    for li in (0..maps.len()).rev() {
        let fine_side: Vec<u8> = maps[li].iter().map(|&cv| side[cv]).collect();
        side = fine_side;
        levels[li].refine(&mut side, opts.refine_passes);
    }
    side
}

/// Derive a vertex separator from an edge bisection: take the boundary
/// vertices of whichever side has the smaller boundary (every cut edge has
/// an endpoint there, so removing them disconnects the sides).
fn vertex_separator(g: &Graph, vertices: &[usize], side: &[u8]) -> Vec<usize> {
    let mut lmap = vec![usize::MAX; g.nvertices()];
    for (li, &v) in vertices.iter().enumerate() {
        lmap[v] = li;
    }
    let mut boundary: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (li, &v) in vertices.iter().enumerate() {
        let cut = g.neighbors(v).iter().any(|&u| {
            let lu = lmap[u];
            lu != usize::MAX && side[lu] != side[li]
        });
        if cut {
            boundary[side[li] as usize].push(v);
        }
    }
    let pick = usize::from(boundary[1].len() < boundary[0].len());
    std::mem::take(&mut boundary[pick])
}

/// Multilevel nested dissection ordering.
pub fn nested_dissection_multilevel(g: &Graph, opts: MlOptions) -> Permutation {
    let n = g.nvertices();
    let mut order = Vec::with_capacity(n);
    let mut mask = vec![true; n];
    dissect(g, &mut mask, (0..n).collect(), opts, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_order(order).expect("each vertex ordered once")
}

fn dissect(
    g: &Graph,
    mask: &mut Vec<bool>,
    part: Vec<usize>,
    opts: MlOptions,
    order: &mut Vec<usize>,
) {
    if part.len() <= opts.leaf_size.max(1) {
        order.extend_from_slice(&part);
        return;
    }
    let comps = g.components_masked(mask);
    if comps.len() > 1 {
        for c in comps {
            let mut sub = vec![false; g.nvertices()];
            for &v in &c {
                sub[v] = true;
            }
            let saved = std::mem::replace(mask, sub);
            dissect(g, mask, c, opts, order);
            *mask = saved;
        }
        return;
    }
    let side = multilevel_bisection(g, &part, opts);
    let sep = vertex_separator(g, &part, &side);
    if sep.is_empty() || sep.len() >= part.len() {
        order.extend_from_slice(&part);
        return;
    }
    for &v in &sep {
        mask[v] = false;
    }
    let halves = g.components_masked(mask);
    for half in halves {
        let mut sub = vec![false; g.nvertices()];
        for &v in &half {
            sub[v] = true;
        }
        let saved = std::mem::replace(mask, sub);
        dissect(g, mask, half, opts, order);
        *mask = saved;
    }
    order.extend_from_slice(&sep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EliminationTree;
    use trisolv_matrix::gen;

    fn check_perm(p: &Permutation, n: usize) {
        let mut seen = vec![false; n];
        for i in 0..n {
            assert!(!seen[p.apply(i)]);
            seen[p.apply(i)] = true;
        }
    }

    fn fill_of(a: &trisolv_matrix::CscMatrix, p: &Permutation) -> usize {
        let pa = a.permute_sym_lower(p.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        trisolv_symbolic_shim::analyze_nnz(&pa, &t)
    }

    // tiny shim so the graph crate's tests can count fill without a
    // dependency cycle on trisolv-symbolic: replicate the row-subtree count
    mod trisolv_symbolic_shim {
        use crate::EliminationTree;
        use trisolv_matrix::CscMatrix;
        pub fn analyze_nnz(a: &CscMatrix, tree: &EliminationTree) -> usize {
            let n = a.ncols();
            let at = a.transpose();
            let mut mark = vec![usize::MAX; n];
            let mut nnz = n;
            for i in 0..n {
                mark[i] = i;
                for &j in at.col_rows(i) {
                    let mut k = j;
                    while k < i && mark[k] != i {
                        nnz += 1;
                        mark[k] = i;
                        k = match tree.parent(k) {
                            Some(p) => p,
                            None => break,
                        };
                    }
                }
            }
            nnz
        }
    }

    #[test]
    fn produces_valid_permutation() {
        for (kx, ky) in [(8, 8), (12, 7), (5, 20)] {
            let a = gen::grid2d_laplacian(kx, ky);
            let g = Graph::from_sym_lower(&a);
            let p = nested_dissection_multilevel(&g, MlOptions::default());
            check_perm(&p, kx * ky);
        }
    }

    #[test]
    fn handles_disconnected_and_tiny_graphs() {
        let lists = vec![vec![1], vec![0], vec![3], vec![2], vec![]];
        let g = Graph::from_neighbor_lists(&lists);
        let p = nested_dissection_multilevel(&g, MlOptions::default());
        check_perm(&p, 5);
        // single vertex
        let g1 = Graph::from_neighbor_lists(&[vec![]]);
        let p1 = nested_dissection_multilevel(&g1, MlOptions::default());
        assert_eq!(p1.len(), 1);
    }

    #[test]
    fn beats_natural_ordering_fill_on_grid() {
        let k = 20;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let ml = nested_dissection_multilevel(&g, MlOptions::default());
        let fill_ml = fill_of(&a, &ml);
        let fill_nat = fill_of(&a, &Permutation::identity(k * k));
        // the natural ordering of a grid is already banded (fill ≈ n·k),
        // so demand a clear but not dramatic win
        assert!(
            (fill_ml as f64) < 0.8 * fill_nat as f64,
            "multilevel fill {fill_ml} vs natural {fill_nat}"
        );
    }

    #[test]
    fn competitive_with_bfs_nd_on_grid() {
        let k = 24;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let ml = nested_dissection_multilevel(&g, MlOptions::default());
        let bfs = crate::nd::nested_dissection(&g, crate::nd::NdOptions::default());
        let fill_ml = fill_of(&a, &ml);
        let fill_bfs = fill_of(&a, &bfs);
        assert!(
            (fill_ml as f64) < 1.35 * fill_bfs as f64,
            "multilevel fill {fill_ml} much worse than BFS-ND {fill_bfs}"
        );
    }

    #[test]
    fn works_on_random_structure() {
        let a = gen::random_spd(150, 4, 9);
        let g = Graph::from_sym_lower(&a);
        let p = nested_dissection_multilevel(&g, MlOptions::default());
        check_perm(&p, 150);
    }

    #[test]
    fn coarsening_roughly_halves() {
        let a = gen::grid2d_laplacian(16, 16);
        let g = Graph::from_sym_lower(&a);
        let verts: Vec<usize> = (0..256).collect();
        let (wg, _) = WGraph::from_graph(&g, &verts);
        let (coarse, map) = wg.coarsen();
        assert!(coarse.n() <= 256 * 3 / 4, "coarse size {}", coarse.n());
        assert!(coarse.n() >= 128);
        // vertex weights conserved
        assert_eq!(coarse.total_vwgt(), 256);
        assert!(map.iter().all(|&c| c < coarse.n()));
    }

    #[test]
    fn bisection_is_balanced_and_separator_separates() {
        let k = 16;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let verts: Vec<usize> = (0..k * k).collect();
        let side = multilevel_bisection(&g, &verts, MlOptions::default());
        let w0 = side.iter().filter(|&&s| s == 0).count();
        let w1 = side.len() - w0;
        assert!(
            w0.max(w1) <= side.len() * 2 / 3,
            "imbalanced bisection: {w0} vs {w1}"
        );
        let sep = vertex_separator(&g, &verts, &side);
        assert!(
            !sep.is_empty() && sep.len() < k * k / 4,
            "separator {}",
            sep.len()
        );
        // removing the separator must disconnect the two sides
        let mut mask = vec![true; k * k];
        for &v in &sep {
            mask[v] = false;
        }
        let comps = g.components_masked(&mask);
        assert!(comps.len() >= 2, "separator does not separate");
    }
}
