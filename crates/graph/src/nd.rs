//! Nested-dissection orderings.
//!
//! Two separator strategies are provided:
//!
//! * [`nested_dissection_coords`] — geometric dissection for meshes with
//!   known node coordinates (the grid / FEM problems from
//!   `trisolv_matrix::gen`). Splitting along the median plane of the
//!   longest box axis yields the `O(√N)` (2-D) / `O(N^(2/3))` (3-D)
//!   separators and the almost-balanced elimination trees the paper's
//!   analysis assumes.
//! * [`nested_dissection`] — general graphs, using BFS level-structure
//!   separators from a pseudo-peripheral vertex (George–Liu style).
//!
//! Both order each separator *after* the two halves, so separators float to
//! the top of the elimination tree.

use crate::{Graph, Permutation};

/// Options controlling the recursion.
#[derive(Debug, Clone, Copy)]
pub struct NdOptions {
    /// Parts of at most this many vertices are ordered directly (no further
    /// dissection).
    pub leaf_size: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions { leaf_size: 8 }
    }
}

/// Nested dissection with BFS level-structure separators.
pub fn nested_dissection(g: &Graph, opts: NdOptions) -> Permutation {
    let n = g.nvertices();
    let mut mask = vec![true; n];
    let mut order = Vec::with_capacity(n);
    dissect(g, None, &mut mask, (0..n).collect(), opts, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_order(order).expect("dissection emits each vertex once")
}

/// Nested dissection with geometric (median-plane) separators.
///
/// `coords[v]` gives the spatial position of vertex `v`; co-located
/// vertices (e.g. the `dof` unknowns of one FEM node) are kept together.
/// Falls back to BFS separators for parts that are geometrically
/// degenerate.
pub fn nested_dissection_coords(g: &Graph, coords: &[[f64; 3]], opts: NdOptions) -> Permutation {
    let n = g.nvertices();
    assert_eq!(coords.len(), n);
    let mut mask = vec![true; n];
    let mut order = Vec::with_capacity(n);
    dissect(
        g,
        Some(coords),
        &mut mask,
        (0..n).collect(),
        opts,
        &mut order,
    );
    debug_assert_eq!(order.len(), n);
    Permutation::from_order(order).expect("dissection emits each vertex once")
}

/// Node coordinates matching `trisolv_matrix::gen::grid2d_*` / `fem2d`
/// numbering (`dof` unknowns per node share a position).
pub fn grid2d_coords(kx: usize, ky: usize, dof: usize) -> Vec<[f64; 3]> {
    let mut coords = Vec::with_capacity(kx * ky * dof);
    for y in 0..ky {
        for x in 0..kx {
            for _ in 0..dof {
                coords.push([x as f64, y as f64, 0.0]);
            }
        }
    }
    coords
}

/// Node coordinates matching `trisolv_matrix::gen::grid3d_*` / `fem3d`
/// numbering.
pub fn grid3d_coords(kx: usize, ky: usize, kz: usize, dof: usize) -> Vec<[f64; 3]> {
    let mut coords = Vec::with_capacity(kx * ky * kz * dof);
    for z in 0..kz {
        for y in 0..ky {
            for x in 0..kx {
                for _ in 0..dof {
                    coords.push([x as f64, y as f64, z as f64]);
                }
            }
        }
    }
    coords
}

/// Recursive worker. `part` lists the vertices of the current subproblem
/// (all with `mask[v] == true`); vertices are appended to `order` leaves
/// first, separators last.
fn dissect(
    g: &Graph,
    coords: Option<&[[f64; 3]]>,
    mask: &mut Vec<bool>,
    part: Vec<usize>,
    opts: NdOptions,
    order: &mut Vec<usize>,
) {
    if part.len() <= opts.leaf_size.max(1) {
        order.extend_from_slice(&part);
        return;
    }
    // Split disconnected parts into components first. The mask is always
    // exactly the current part, so every component belongs to it.
    let comps = g.components_masked(mask);
    if comps.len() > 1 {
        for c in comps {
            let mut sub_mask = vec![false; g.nvertices()];
            for &v in &c {
                sub_mask[v] = true;
            }
            let saved = std::mem::replace(mask, sub_mask);
            dissect(g, coords, mask, c, opts, order);
            *mask = saved;
        }
        return;
    }

    let sep = match coords {
        Some(c) => geometric_separator(c, &part).unwrap_or_else(|| bfs_separator(g, mask, &part)),
        None => bfs_separator(g, mask, &part),
    };
    if sep.len() >= part.len() {
        // No useful split; order the whole part.
        order.extend_from_slice(&part);
        return;
    }
    for &v in &sep {
        mask[v] = false;
    }
    // With the separator unmasked, the remaining components are the halves.
    let halves = g.components_masked(mask);
    for half in halves {
        let mut sub_mask = vec![false; g.nvertices()];
        for &v in &half {
            sub_mask[v] = true;
        }
        let saved = std::mem::replace(mask, sub_mask);
        dissect(g, coords, mask, half, opts, order);
        *mask = saved;
    }
    order.extend_from_slice(&sep);
}

/// Median-plane separator: split along the axis with the largest extent at
/// the median coordinate; the separator is the slab of vertices exactly at
/// that coordinate. Returns `None` when the part is geometrically
/// degenerate (single distinct position).
fn geometric_separator(coords: &[[f64; 3]], part: &[usize]) -> Option<Vec<usize>> {
    let mut best_axis = 0;
    let mut best_extent = 0.0f64;
    for axis in 0..3 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in part {
            lo = lo.min(coords[v][axis]);
            hi = hi.max(coords[v][axis]);
        }
        if hi - lo > best_extent {
            best_extent = hi - lo;
            best_axis = axis;
        }
    }
    if best_extent == 0.0 {
        return None;
    }
    let mut vals: Vec<f64> = part.iter().map(|&v| coords[v][best_axis]).collect();
    vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = vals[vals.len() / 2];
    let sep: Vec<usize> = part
        .iter()
        .copied()
        .filter(|&v| coords[v][best_axis] == median)
        .collect();
    if sep.is_empty() || sep.len() == part.len() {
        None
    } else {
        Some(sep)
    }
}

/// BFS level-structure separator: run BFS from a pseudo-peripheral vertex
/// and take the level containing the median vertex (by cumulative count).
fn bfs_separator(g: &Graph, mask: &[bool], part: &[usize]) -> Vec<usize> {
    let root = g.pseudo_peripheral(part[0], mask);
    let (order, level) = g.bfs_masked(root, mask);
    debug_assert_eq!(order.len(), part.len());
    let max_level = order.iter().map(|&v| level[v]).max().unwrap_or(0);
    if max_level == 0 {
        // complete graph or single vertex: no separator smaller than part
        return part.to_vec();
    }
    // Find the level at which the cumulative count crosses half.
    let mut count = vec![0usize; max_level + 1];
    for &v in &order {
        count[level[v]] += 1;
    }
    let mut cum = 0;
    let mut sep_level = max_level / 2;
    for (l, &c) in count.iter().enumerate() {
        cum += c;
        if cum * 2 >= order.len() {
            sep_level = l;
            break;
        }
    }
    // Avoid degenerate splits at the extremes (keep at least one level on
    // the "left" side when the structure is deep enough).
    let sep_level = if max_level <= 1 {
        max_level
    } else {
        sep_level.clamp(1, max_level - 1)
    };
    order
        .iter()
        .copied()
        .filter(|&v| level[v] == sep_level)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EliminationTree;
    use trisolv_matrix::gen;

    fn check_perm(p: &Permutation, n: usize) {
        assert_eq!(p.len(), n);
        let mut seen = vec![false; n];
        for i in 0..n {
            assert!(!seen[p.apply(i)]);
            seen[p.apply(i)] = true;
        }
    }

    #[test]
    fn bfs_nd_is_a_permutation() {
        let a = gen::grid2d_laplacian(8, 8);
        let g = Graph::from_sym_lower(&a);
        let p = nested_dissection(&g, NdOptions::default());
        check_perm(&p, 64);
    }

    #[test]
    fn coord_nd_is_a_permutation() {
        let a = gen::grid2d_laplacian(9, 7);
        let g = Graph::from_sym_lower(&a);
        let coords = grid2d_coords(9, 7, 1);
        let p = nested_dissection_coords(&g, &coords, NdOptions::default());
        check_perm(&p, 63);
    }

    #[test]
    fn coord_nd_top_separator_is_last() {
        // In a kx x ky grid with kx > ky, the top separator is a column of
        // ky vertices; they must receive the highest labels.
        let (kx, ky) = (9, 5);
        let a = gen::grid2d_laplacian(kx, ky);
        let g = Graph::from_sym_lower(&a);
        let coords = grid2d_coords(kx, ky, 1);
        let p = nested_dissection_coords(&g, &coords, NdOptions { leaf_size: 1 });
        let mid = 4.0; // median x
        for v in 0..kx * ky {
            if coords[v][0] == mid {
                assert!(p.apply(v) >= kx * ky - ky, "separator vertex ordered early");
            }
        }
    }

    #[test]
    fn nd_reduces_fill_vs_natural_on_grid() {
        // Compare etree heights as a cheap proxy for balance: ND height
        // should be far below the natural ordering's (which is ~n for a
        // banded ordering of a grid).
        let k = 16;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let coords = grid2d_coords(k, k, 1);
        let p = nested_dissection_coords(&g, &coords, NdOptions::default());
        let pa = a.permute_sym_lower(p.as_slice()).unwrap();
        let nd_height = EliminationTree::from_sym_lower(&pa).height();
        let nat_height = EliminationTree::from_sym_lower(&a).height();
        assert!(
            nd_height * 2 < nat_height,
            "nd height {nd_height} not much below natural {nat_height}"
        );
    }

    #[test]
    fn coord_nd_produces_balanced_tree() {
        // The top of the supernodal tree should split node counts roughly
        // in half: compare subtree sizes of the root's children.
        let k = 17;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let coords = grid2d_coords(k, k, 1);
        let p = nested_dissection_coords(&g, &coords, NdOptions::default());
        let pa = a.permute_sym_lower(p.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        let sizes = t.subtree_sizes();
        // walk down from the root through the top separator chain to the
        // first branching node
        let root = *t.roots().last().unwrap();
        let children = t.children();
        let mut v = root;
        while children[v].len() == 1 {
            v = children[v][0];
        }
        let ch = &children[v];
        assert!(ch.len() >= 2, "expected branching below top separator");
        let (a_, b_) = (sizes[ch[0]], sizes[ch[1]]);
        let ratio = a_.max(b_) as f64 / a_.min(b_).max(1) as f64;
        assert!(ratio < 2.0, "imbalanced split: {a_} vs {b_}");
    }

    #[test]
    fn nd_handles_disconnected_graphs() {
        // two disjoint paths
        let lists = vec![vec![1], vec![0, 2], vec![1], vec![4], vec![3]];
        let g = Graph::from_neighbor_lists(&lists);
        let p = nested_dissection(&g, NdOptions { leaf_size: 1 });
        check_perm(&p, 5);
    }

    #[test]
    fn dof_block_stays_together() {
        let (kx, ky, dof) = (5, 5, 3);
        let a = gen::fem2d(kx, ky, dof);
        let g = Graph::from_sym_lower(&a);
        let coords = grid2d_coords(kx, ky, dof);
        let p = nested_dissection_coords(&g, &coords, NdOptions { leaf_size: dof });
        check_perm(&p, kx * ky * dof);
    }

    #[test]
    fn nd_on_3d_grid() {
        let a = gen::grid3d_laplacian(5, 5, 5);
        let g = Graph::from_sym_lower(&a);
        let coords = grid3d_coords(5, 5, 5, 1);
        let p = nested_dissection_coords(&g, &coords, NdOptions::default());
        check_perm(&p, 125);
    }
}
