//! Undirected adjacency graphs in CSR form.

use crate::Permutation;
use trisolv_matrix::CscMatrix;

/// An undirected graph stored in compressed sparse row form.
///
/// Neighbour lists are sorted and contain no self-loops. Built from the
/// lower triangle of a symmetric matrix (both directions of each edge are
/// stored so `neighbors(v)` is complete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl Graph {
    /// Build from explicit neighbour lists (deduplicated and sorted here).
    pub fn from_neighbor_lists(lists: &[Vec<usize>]) -> Self {
        let n = lists.len();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        xadj.push(0);
        for (v, list) in lists.iter().enumerate() {
            let mut l: Vec<usize> = list.iter().copied().filter(|&u| u != v).collect();
            l.sort_unstable();
            l.dedup();
            adjncy.extend_from_slice(&l);
            xadj.push(adjncy.len());
        }
        Graph { xadj, adjncy }
    }

    /// Build the adjacency graph of a symmetric matrix stored
    /// lower-triangular: an edge `{i, j}` for every off-diagonal entry.
    pub fn from_sym_lower(m: &CscMatrix) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "symmetric matrix must be square");
        let n = m.nrows();
        let mut deg = vec![0usize; n];
        for j in 0..n {
            for &i in m.col_rows(j) {
                if i != j {
                    deg[i] += 1;
                    deg[j] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0usize; xadj[n]];
        let mut next = xadj.clone();
        for j in 0..n {
            for &i in m.col_rows(j) {
                if i != j {
                    adjncy[next[i]] = j;
                    next[i] += 1;
                    adjncy[next[j]] = i;
                    next[j] += 1;
                }
            }
        }
        for v in 0..n {
            adjncy[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        Graph { xadj, adjncy }
    }

    /// Number of vertices.
    #[inline]
    pub fn nvertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn nedges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Relabel vertices: vertex `v` becomes `perm.apply(v)`.
    pub fn permute(&self, perm: &Permutation) -> Graph {
        let n = self.nvertices();
        assert_eq!(perm.len(), n);
        let mut lists = vec![Vec::new(); n];
        for v in 0..n {
            let pv = perm.apply(v);
            lists[pv] = self.neighbors(v).iter().map(|&u| perm.apply(u)).collect();
        }
        Graph::from_neighbor_lists(&lists)
    }

    /// Breadth-first search from `start` restricted to vertices where
    /// `mask[v]` is true. Returns `(order, level)` where `order` lists the
    /// reached vertices in visit order and `level[v]` is the BFS distance
    /// (`usize::MAX` if unreached or masked out).
    pub fn bfs_masked(&self, start: usize, mask: &[bool]) -> (Vec<usize>, Vec<usize>) {
        let n = self.nvertices();
        let mut level = vec![usize::MAX; n];
        let mut order = Vec::new();
        if !mask[start] {
            return (order, level);
        }
        let mut queue = std::collections::VecDeque::new();
        level[start] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in self.neighbors(v) {
                if mask[u] && level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        (order, level)
    }

    /// Connected components among vertices with `mask[v]` true; returns one
    /// vertex list per component.
    pub fn components_masked(&self, mask: &[bool]) -> Vec<Vec<usize>> {
        let n = self.nvertices();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if !mask[s] || seen[s] {
                continue;
            }
            let (order, _) = self.bfs_masked(s, mask);
            for &v in &order {
                seen[v] = true;
            }
            comps.push(order);
        }
        comps
    }

    /// A pseudo-peripheral vertex within the masked subgraph containing
    /// `start` (George–Liu heuristic: repeat BFS from the farthest
    /// smallest-degree vertex until eccentricity stops growing).
    pub fn pseudo_peripheral(&self, start: usize, mask: &[bool]) -> usize {
        let mut v = start;
        let (order, level) = self.bfs_masked(v, mask);
        if order.is_empty() {
            return start;
        }
        let mut ecc = order.iter().map(|&u| level[u]).max().unwrap();
        loop {
            let (order, level) = self.bfs_masked(v, mask);
            let far = order.iter().map(|&u| level[u]).max().unwrap();
            let cand = order
                .iter()
                .copied()
                .filter(|&u| level[u] == far)
                .min_by_key(|&u| self.degree(u))
                .unwrap();
            if far > ecc {
                ecc = far;
                v = cand;
            } else {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn from_sym_lower_builds_both_directions() {
        let m = gen::grid2d_laplacian(3, 1); // path 0-1-2
        let g = Graph::from_sym_lower(&m);
        assert_eq!(g.nvertices(), 3);
        assert_eq!(g.nedges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn neighbor_lists_deduplicate() {
        let g = Graph::from_neighbor_lists(&[vec![1, 1, 0], vec![0]]);
        assert_eq!(g.neighbors(0), &[1]); // self-loop and dup removed
        assert_eq!(g.nedges(), 1);
    }

    #[test]
    fn permute_preserves_structure() {
        let m = gen::grid2d_laplacian(2, 2); // square 0-1,0-2,1-3,2-3
        let g = Graph::from_sym_lower(&m);
        let p = Permutation::from_vec(vec![3, 2, 1, 0]).unwrap();
        let pg = g.permute(&p);
        assert_eq!(pg.nedges(), g.nedges());
        // old edge {0,1} -> new edge {3,2}
        assert!(pg.neighbors(3).contains(&2));
        for v in 0..4 {
            assert_eq!(pg.degree(p.apply(v)), g.degree(v));
        }
    }

    #[test]
    fn bfs_levels_on_path() {
        let m = gen::grid2d_laplacian(5, 1);
        let g = Graph::from_sym_lower(&m);
        let mask = vec![true; 5];
        let (order, level) = g.bfs_masked(0, &mask);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(level[4], 4);
    }

    #[test]
    fn bfs_respects_mask() {
        let m = gen::grid2d_laplacian(5, 1);
        let g = Graph::from_sym_lower(&m);
        let mut mask = vec![true; 5];
        mask[2] = false; // cut the path
        let (order, level) = g.bfs_masked(0, &mask);
        assert_eq!(order, vec![0, 1]);
        assert_eq!(level[3], usize::MAX);
    }

    #[test]
    fn components_found() {
        let m = gen::grid2d_laplacian(6, 1);
        let g = Graph::from_sym_lower(&m);
        let mut mask = vec![true; 6];
        mask[3] = false;
        let comps = g.components_masked(&mask);
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2));
    }

    #[test]
    fn pseudo_peripheral_on_path_is_an_end() {
        let m = gen::grid2d_laplacian(7, 1);
        let g = Graph::from_sym_lower(&m);
        let mask = vec![true; 7];
        let v = g.pseudo_peripheral(3, &mask);
        assert!(v == 0 || v == 6);
    }
}
