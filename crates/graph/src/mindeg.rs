//! Minimum-degree ordering (ablation baseline).
//!
//! A straightforward elimination-graph implementation: repeatedly eliminate
//! a vertex of minimum current degree and connect its neighbourhood into a
//! clique. Quadratic in the worst case but entirely adequate for the
//! ordering-quality ablations; the production path uses nested dissection,
//! which is what the paper's analysis requires.

use crate::{Graph, Permutation};
use std::collections::HashSet;

/// Compute a minimum-degree ordering of `g`. Ties break toward the smallest
/// vertex index, making the ordering deterministic.
pub fn minimum_degree(g: &Graph) -> Permutation {
    let n = g.nvertices();
    let mut adj: Vec<HashSet<usize>> = (0..n)
        .map(|v| g.neighbors(v).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // pick min-degree uneliminated vertex
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| (adj[v].len(), v))
            .expect("vertices remain");
        order.push(v);
        eliminated[v] = true;
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        // clique the neighbourhood
        for (i, &a) in nbrs.iter().enumerate() {
            adj[a].remove(&v);
            for &b in &nbrs[i + 1..] {
                if a != b {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
        adj[v].clear();
    }
    Permutation::from_order(order).expect("each vertex eliminated once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EliminationTree;
    use trisolv_matrix::gen;

    /// Fill count of the Cholesky factor under a given permutation
    /// (symbolic, dense-bitmap reference).
    fn fill_count(a: &trisolv_matrix::CscMatrix, perm: &Permutation) -> usize {
        let pa = a.permute_sym_lower(perm.as_slice()).unwrap();
        let n = pa.nrows();
        let mut pat = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in pa.col_rows(j) {
                pat[j][i] = true;
            }
        }
        for k in 0..n {
            if let Some(p) = (k + 1..n).find(|&i| pat[k][i]) {
                for i in k + 1..n {
                    if pat[k][i] {
                        pat[p][i] = true;
                    }
                }
            }
        }
        pat.iter().map(|c| c.iter().filter(|&&b| b).count()).sum()
    }

    #[test]
    fn produces_permutation() {
        let a = gen::grid2d_laplacian(6, 6);
        let g = Graph::from_sym_lower(&a);
        let p = minimum_degree(&g);
        assert_eq!(p.len(), 36);
        Permutation::from_vec(p.as_slice().to_vec()).unwrap();
    }

    #[test]
    fn star_center_ordered_last() {
        // star: center 0 connected to 1..5; leaves have degree 1
        let lists = vec![
            vec![1, 2, 3, 4, 5],
            vec![0],
            vec![0],
            vec![0],
            vec![0],
            vec![0],
        ];
        let g = Graph::from_neighbor_lists(&lists);
        let p = minimum_degree(&g);
        // Once four leaves are gone the hub's degree drops to 1, so it is
        // eliminated in one of the last two positions.
        assert!(p.apply(0) >= 4, "hub eliminated too early: {}", p.apply(0));
    }

    #[test]
    fn reduces_fill_vs_natural_on_grid() {
        let a = gen::grid2d_laplacian(8, 8);
        let g = Graph::from_sym_lower(&a);
        let p = minimum_degree(&g);
        let fill_md = fill_count(&a, &p);
        let fill_nat = fill_count(&a, &Permutation::identity(64));
        assert!(
            fill_md < fill_nat,
            "mindeg fill {fill_md} not below natural {fill_nat}"
        );
    }

    #[test]
    fn etree_valid_after_mindeg() {
        let a = gen::random_spd(40, 3, 3);
        let g = Graph::from_sym_lower(&a);
        let p = minimum_degree(&g);
        let pa = a.permute_sym_lower(p.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        assert_eq!(t.len(), 40);
    }
}
