//! Elimination trees (Liu, 1990).
//!
//! The elimination tree of a symmetric matrix `A` has `parent[j] =
//! min { i > j : L[i, j] ≠ 0 }` where `L` is the Cholesky factor of `A`.
//! It guides every phase of the solver: column dependencies in
//! factorization, the gather/scatter pattern of forward and back
//! substitution, and the subtree-to-subcube processor mapping.

use crate::Permutation;
use trisolv_matrix::CscMatrix;

/// Sentinel meaning "no parent" (tree root).
pub const NONE: usize = usize::MAX;

/// An elimination tree (more precisely a forest: reducible matrices yield
/// several roots) over columns `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationTree {
    parent: Vec<usize>,
}

impl EliminationTree {
    /// Compute the elimination tree of a symmetric matrix given its lower
    /// triangle, using Liu's algorithm with ancestor path compression —
    /// O(nnz · α(n)).
    pub fn from_sym_lower(a: &CscMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.ncols();
        // Column k of the transpose holds the pattern of A(0..k, k), i.e.
        // row k of the stored lower triangle.
        let at = a.transpose();
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for k in 0..n {
            for &i in at.col_rows(k) {
                if i >= k {
                    continue;
                }
                // Walk from i to the root of its current subtree, pointing
                // everything at k (path compression).
                let mut r = i;
                while ancestor[r] != NONE && ancestor[r] != k {
                    let next = ancestor[r];
                    ancestor[r] = k;
                    r = next;
                }
                if ancestor[r] == NONE {
                    ancestor[r] = k;
                    parent[r] = k;
                }
            }
        }
        EliminationTree { parent }
    }

    /// Build directly from a parent vector (`NONE` marks roots).
    pub fn from_parent(parent: Vec<usize>) -> Self {
        for (j, &p) in parent.iter().enumerate() {
            assert!(
                p == NONE || (p > j && p < parent.len()),
                "parent[{j}] = {p} must be NONE or in ({j}, n)"
            );
        }
        EliminationTree { parent }
    }

    /// Number of columns / tree nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `j`, or `None` for roots.
    #[inline]
    pub fn parent(&self, j: usize) -> Option<usize> {
        match self.parent[j] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Raw parent vector (with [`NONE`] sentinels).
    pub fn parent_slice(&self) -> &[usize] {
        &self.parent
    }

    /// All roots (nodes without parents).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.parent[j] == NONE)
            .collect()
    }

    /// Children lists, sorted ascending.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.len()];
        for j in 0..self.len() {
            if let Some(p) = self.parent(j) {
                ch[p].push(j);
            }
        }
        ch
    }

    /// A postordering of the forest: children before parents, each subtree
    /// contiguous. Returned as a [`Permutation`] (old→new labels).
    pub fn postorder(&self) -> Permutation {
        let n = self.len();
        let children = self.children();
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next child idx)
        for r in self.roots() {
            stack.push((r, 0));
            while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
                if *ci < children[v].len() {
                    let c = children[v][*ci];
                    *ci += 1;
                    stack.push((c, 0));
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        assert_eq!(order.len(), n, "forest must cover all nodes");
        Permutation::from_order(order).expect("postorder is a permutation")
    }

    /// True if labels are already postordered (every node's label exceeds
    /// all labels in its subtree, and subtrees are contiguous).
    pub fn is_postordered(&self) -> bool {
        let sizes = self.subtree_sizes();
        let children = self.children();
        (0..self.len()).all(|j| {
            // subtree of j must be exactly the label range [j+1-size, j]
            let lo = j + 1 - sizes[j];
            children[j].iter().all(|&c| c >= lo && c < j)
        })
    }

    /// Relabel the tree under a permutation (new tree has
    /// `parent'[perm[j]] = perm[parent[j]]`). Only valid if the permutation
    /// preserves the "parent has larger label" invariant, which any
    /// postorder of this tree does.
    pub fn permute(&self, perm: &Permutation) -> EliminationTree {
        let n = self.len();
        assert_eq!(perm.len(), n);
        let mut parent = vec![NONE; n];
        for j in 0..n {
            if let Some(p) = self.parent(j) {
                parent[perm.apply(j)] = perm.apply(p);
            }
        }
        EliminationTree::from_parent(parent)
    }

    /// Number of nodes in each subtree (including the node itself).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let n = self.len();
        let mut size = vec![1usize; n];
        for j in 0..n {
            if let Some(p) = self.parent(j) {
                // children have smaller labels, so a single ascending pass
                // accumulates correctly.
                size[p] += size[j];
            }
        }
        size
    }

    /// Level of each node: roots at level 0, children one deeper (the
    /// paper's Figure 1 convention).
    pub fn levels(&self) -> Vec<usize> {
        let n = self.len();
        let mut level = vec![0usize; n];
        // parents have larger labels: descending pass sets parents first.
        for j in (0..n).rev() {
            if let Some(p) = self.parent(j) {
                level[j] = level[p] + 1;
            }
        }
        level
    }

    /// Height of the forest (max level + 1; 0 for empty).
    pub fn height(&self) -> usize {
        self.levels().iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// The path from `j` to its root, inclusive.
    pub fn path_to_root(&self, mut j: usize) -> Vec<usize> {
        let mut path = vec![j];
        while let Some(p) = self.parent(j) {
            path.push(p);
            j = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::{gen, TripletMatrix};

    /// Reference elimination tree: parent[j] = min{i > j : L[i,j] != 0}
    /// computed from a dense symbolic factorization.
    fn dense_reference_etree(a: &CscMatrix) -> Vec<usize> {
        let n = a.nrows();
        let mut pat = vec![vec![false; n]; n]; // pat[j][i] = L[i][j] nonzero
        for j in 0..n {
            for &i in a.col_rows(j) {
                pat[j][i] = true;
            }
        }
        // left-looking symbolic fill: column j receives pattern of any
        // column k < j whose first below-diagonal nonzero... simplest: do
        // full symbolic elimination on the dense pattern.
        for k in 0..n {
            // first off-diagonal nonzero of column k
            if let Some(p) = (k + 1..n).find(|&i| pat[k][i]) {
                for i in k + 1..n {
                    if pat[k][i] {
                        pat[p][i] = true;
                    }
                }
            }
        }
        (0..n)
            .map(|j| (j + 1..n).find(|&i| pat[j][i]).unwrap_or(NONE))
            .collect()
    }

    #[test]
    fn matches_dense_reference_on_grid() {
        let a = gen::grid2d_laplacian(4, 4);
        let t = EliminationTree::from_sym_lower(&a);
        assert_eq!(t.parent_slice(), dense_reference_etree(&a).as_slice());
    }

    #[test]
    fn matches_dense_reference_on_random() {
        for seed in 0..5 {
            let a = gen::random_spd(30, 3, seed);
            let t = EliminationTree::from_sym_lower(&a);
            assert_eq!(
                t.parent_slice(),
                dense_reference_etree(&a).as_slice(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tridiagonal_is_a_path() {
        let a = gen::grid2d_laplacian(5, 1);
        let t = EliminationTree::from_sym_lower(&a);
        assert_eq!(t.parent_slice(), &[1, 2, 3, 4, NONE]);
        assert_eq!(t.height(), 5);
        assert_eq!(t.path_to_root(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn diagonal_matrix_is_all_roots() {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 1.0).unwrap();
        }
        let tree = EliminationTree::from_sym_lower(&t.to_csc());
        assert_eq!(tree.roots(), vec![0, 1, 2]);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn postorder_children_before_parents() {
        let a = gen::grid2d_laplacian(5, 5);
        let t = EliminationTree::from_sym_lower(&a);
        let p = t.postorder();
        let pt = t.permute(&p);
        for j in 0..pt.len() {
            if let Some(par) = pt.parent(j) {
                assert!(par > j);
            }
        }
        assert!(pt.is_postordered());
    }

    #[test]
    fn subtree_sizes_sum_at_roots() {
        let a = gen::random_spd(40, 3, 7);
        let t = EliminationTree::from_sym_lower(&a);
        let sizes = t.subtree_sizes();
        let total: usize = t.roots().iter().map(|&r| sizes[r]).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn levels_consistent_with_parents() {
        let a = gen::grid3d_laplacian(3, 3, 3);
        let t = EliminationTree::from_sym_lower(&a);
        let lv = t.levels();
        for j in 0..t.len() {
            match t.parent(j) {
                Some(p) => assert_eq!(lv[j], lv[p] + 1),
                None => assert_eq!(lv[j], 0),
            }
        }
    }

    #[test]
    fn from_parent_rejects_smaller_parent() {
        let result = std::panic::catch_unwind(|| EliminationTree::from_parent(vec![NONE, 0]));
        assert!(result.is_err());
    }
}
