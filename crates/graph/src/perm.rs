//! Vertex permutations.

use std::fmt;

/// A permutation of `{0, …, n−1}`, stored as the old→new map together with
/// its inverse.
///
/// `perm[i]` is the **new** label of old vertex `i`; `inv[k]` is the old
/// vertex placed at new position `k`. Applying a permutation to a symmetric
/// matrix `A` produces `P A Pᵀ` with `(PAPᵀ)[perm[i], perm[j]] = A[i, j]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

/// Error produced when a vector is not a valid permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAPermutation(pub String);

impl fmt::Display for NotAPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a permutation: {}", self.0)
    }
}

impl std::error::Error for NotAPermutation {}

impl Permutation {
    /// Identity permutation of order `n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation {
            inv: perm.clone(),
            perm,
        }
    }

    /// Build from an old→new vector, validating it is a bijection.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self, NotAPermutation> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (old, &new) in perm.iter().enumerate() {
            if new >= n {
                return Err(NotAPermutation(format!("image {new} out of range 0..{n}")));
            }
            if inv[new] != usize::MAX {
                return Err(NotAPermutation(format!("image {new} repeated")));
            }
            inv[new] = old;
        }
        Ok(Permutation { perm, inv })
    }

    /// Build from the *inverse* (new→old) vector, i.e. an ordering list
    /// "which old vertex comes k-th".
    pub fn from_order(order: Vec<usize>) -> Result<Self, NotAPermutation> {
        let p = Self::from_vec(order)?;
        Ok(p.inverse())
    }

    /// Order of the permuted set.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// New label of old vertex `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.perm[i]
    }

    /// Old vertex at new position `k`.
    #[inline]
    pub fn apply_inv(&self, k: usize) -> usize {
        self.inv[k]
    }

    /// The old→new map as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// The new→old map as a slice.
    pub fn inv_slice(&self) -> &[usize] {
        &self.inv
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.inv.clone(),
            inv: self.perm.clone(),
        }
    }

    /// Composition `other ∘ self`: apply `self` first, then `other`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let perm: Vec<usize> = self.perm.iter().map(|&m| other.perm[m]).collect();
        Permutation::from_vec(perm).expect("composition of bijections is a bijection")
    }

    /// Permute a data vector: `out[perm[i]] = data[i]`.
    pub fn permute_vec<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        let mut out: Vec<T> = data.to_vec();
        for (old, item) in data.iter().enumerate() {
            out[self.perm[old]] = item.clone();
        }
        out
    }

    /// True when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.apply(2), 2);
        assert_eq!(p.apply_inv(3), 3);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_ok());
        assert!(Permutation::from_vec(vec![1, 1, 2]).is_err());
        assert!(Permutation::from_vec(vec![0, 3]).is_err());
    }

    #[test]
    fn inverse_round_trip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        for i in 0..4 {
            assert_eq!(p.apply_inv(p.apply(i)), i);
            assert_eq!(p.apply(p.apply_inv(i)), i);
        }
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn from_order_semantics() {
        // order: position k holds old vertex order[k]
        let p = Permutation::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply(2), 0); // old 2 comes first
        assert_eq!(p.apply(0), 1);
        assert_eq!(p.apply(1), 2);
    }

    #[test]
    fn composition_applies_left_then_right() {
        let a = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let b = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let c = a.then(&b);
        for i in 0..3 {
            assert_eq!(c.apply(i), b.apply(a.apply(i)));
        }
    }

    #[test]
    fn permute_vec_moves_elements() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let v = p.permute_vec(&["a", "b", "c"]);
        assert_eq!(v, ["b", "c", "a"]);
    }
}
