//! Graphs, elimination trees, and fill-reducing orderings.
//!
//! The paper assumes "a nested-dissection based fill-reducing ordering ...
//! which results in an almost balanced elimination tree" — the
//! subtree-to-subcube mapping at the heart of the parallel solvers depends
//! on it. This crate supplies:
//!
//! * [`Graph`] — undirected adjacency structure (CSR) built from the lower
//!   triangle of a symmetric sparse matrix;
//! * [`Permutation`] — old→new vertex relabelings with composition and
//!   inversion;
//! * [`etree`] — Liu's elimination-tree algorithm, postordering, level and
//!   subtree statistics;
//! * [`nd`] — nested dissection: coordinate-based (exact, for the grid /
//!   FEM problems the paper analyzes) and BFS-separator-based (general
//!   graphs);
//! * [`mindeg`] — a minimum-degree ordering used as an ablation baseline;
//! * [`rcm`] — reverse Cuthill-McKee, a profile-reducing baseline.

pub mod adjacency;
pub mod etree;
pub mod mindeg;
pub mod multilevel;
pub mod nd;
pub mod perm;
pub mod rcm;

pub use adjacency::Graph;
pub use etree::EliminationTree;
pub use perm::Permutation;
