//! Reverse Cuthill–McKee ordering (profile-reducing baseline).

use crate::{Graph, Permutation};

/// Compute the reverse Cuthill–McKee ordering: BFS from a pseudo-peripheral
/// vertex with neighbours visited in increasing-degree order, then the
/// whole sequence reversed. Handles disconnected graphs component by
/// component.
pub fn reverse_cuthill_mckee(g: &Graph) -> Permutation {
    let n = g.nvertices();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let mask: Vec<bool> = visited.iter().map(|&v| !v).collect();
        let root = g.pseudo_peripheral(s, &mask);
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            nbrs.sort_by_key(|&u| (g.degree(u), u));
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_order(order).expect("RCM visits each vertex once")
}

/// Bandwidth of a symmetric (lower-stored) matrix: `max_j max_{i in col j} (i - j)`.
pub fn bandwidth(a: &trisolv_matrix::CscMatrix) -> usize {
    let mut bw = 0;
    for j in 0..a.ncols() {
        for &i in a.col_rows(j) {
            bw = bw.max(i - j);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn is_a_permutation() {
        let a = gen::grid2d_laplacian(7, 5);
        let g = Graph::from_sym_lower(&a);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 35);
        Permutation::from_vec(p.as_slice().to_vec()).unwrap();
    }

    #[test]
    fn reduces_bandwidth_of_shuffled_grid() {
        // Shuffle a banded matrix, then check RCM restores a small bandwidth.
        let k = 8;
        let a = gen::grid2d_laplacian(k, k);
        // a deterministic scramble
        let scramble: Vec<usize> = (0..k * k).map(|i| (i * 37 + 11) % (k * k)).collect();
        let sp = Permutation::from_vec(scramble).unwrap();
        let shuffled = a.permute_sym_lower(sp.as_slice()).unwrap();
        let g = Graph::from_sym_lower(&shuffled);
        let p = reverse_cuthill_mckee(&g);
        let restored = shuffled.permute_sym_lower(p.as_slice()).unwrap();
        assert!(
            bandwidth(&restored) <= 2 * k,
            "bandwidth {} not restored (expected <= {})",
            bandwidth(&restored),
            2 * k
        );
        assert!(bandwidth(&restored) < bandwidth(&shuffled));
    }

    #[test]
    fn handles_disconnected() {
        let lists = vec![vec![1], vec![0], vec![3], vec![2]];
        let g = Graph::from_neighbor_lists(&lists);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn bandwidth_of_tridiagonal_is_one() {
        let a = gen::grid2d_laplacian(6, 1);
        assert_eq!(bandwidth(&a), 1);
    }
}
