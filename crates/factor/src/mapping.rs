//! Subtree-to-subcube mapping of the supernodal elimination tree.
//!
//! The root supernode is shared by all `p` processors; at every branching
//! the processor group splits in two (work-balanced halves), until groups
//! become singletons — from that point downward whole subtrees are owned by
//! a single processor and processed sequentially (paper §2.1, Figure 1).

use trisolv_machine::Group;
use trisolv_symbolic::SupernodePartition;

/// The subtree-to-subcube assignment for a given processor count.
#[derive(Debug, Clone)]
pub struct SubcubeMapping {
    nprocs: usize,
    /// Group of processors sharing each supernode (singleton for
    /// sequential supernodes).
    group_of: Vec<Group>,
    /// Supernodes with a group of size ≥ 2, ascending (children first).
    parallel_snodes: Vec<usize>,
    /// Sequential supernodes owned by each processor, ascending.
    seq_snodes: Vec<Vec<usize>>,
}

impl SubcubeMapping {
    /// Build the mapping for `nprocs` processors. Children at each
    /// branching are partitioned into two sets with balanced subtree solve
    /// work; each set receives half the group (generalizing the binary
    /// subtree-to-subcube scheme to arbitrary forests).
    pub fn new(part: &SupernodePartition, nprocs: usize) -> Self {
        assert!(nprocs >= 1);
        let nsup = part.nsup();
        let work = part.subtree_solve_flops(1);
        let children = part.children();
        let mut group_of: Vec<Option<Group>> = vec![None; nsup];
        let mut seq_snodes: Vec<Vec<usize>> = vec![Vec::new(); nprocs];

        // Recursive assignment, expressed iteratively with an explicit
        // stack of (supernode set, group) jobs.
        enum Job {
            Set(Vec<usize>, Group),
            Snode(usize, Group),
        }
        let mut stack = vec![Job::Set(part.roots(), Group::world(nprocs))];
        while let Some(job) = stack.pop() {
            match job {
                Job::Snode(s, g) => {
                    if g.size() == 1 {
                        // entire subtree is sequential on this processor
                        let owner = g.world_rank(0);
                        let mut sub = vec![s];
                        while let Some(v) = sub.pop() {
                            group_of[v] = Some(Group::from_ranks(vec![owner]));
                            seq_snodes[owner].push(v);
                            sub.extend_from_slice(&children[v]);
                        }
                    } else {
                        group_of[s] = Some(g.clone());
                        stack.push(Job::Set(children[s].clone(), g));
                    }
                }
                Job::Set(set, g) => {
                    if set.is_empty() {
                        continue;
                    }
                    if set.len() == 1 {
                        stack.push(Job::Snode(set[0], g));
                        continue;
                    }
                    if g.size() == 1 {
                        for s in set {
                            stack.push(Job::Snode(s, g.clone()));
                        }
                        continue;
                    }
                    // Greedy balanced bipartition of the set by subtree work.
                    let mut idx: Vec<usize> = set.clone();
                    idx.sort_by_key(|&s| std::cmp::Reverse(work[s]));
                    let (mut wa, mut wb) = (0u64, 0u64);
                    let (mut sa, mut sb) = (Vec::new(), Vec::new());
                    for s in idx {
                        if wa <= wb {
                            wa += work[s];
                            sa.push(s);
                        } else {
                            wb += work[s];
                            sb.push(s);
                        }
                    }
                    let (ga, gb) = g.split_half();
                    stack.push(Job::Set(sa, ga));
                    stack.push(Job::Set(sb, gb));
                }
            }
        }

        let group_of: Vec<Group> = group_of
            .into_iter()
            .map(|g| g.expect("every supernode assigned"))
            .collect();
        let parallel_snodes: Vec<usize> = (0..nsup).filter(|&s| group_of[s].size() >= 2).collect();
        for list in &mut seq_snodes {
            list.sort_unstable();
        }
        SubcubeMapping {
            nprocs,
            group_of,
            parallel_snodes,
            seq_snodes,
        }
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The group sharing supernode `s`.
    pub fn group(&self, s: usize) -> &Group {
        &self.group_of[s]
    }

    /// True if `s` is processed with the pipelined parallel kernels.
    pub fn is_parallel(&self, s: usize) -> bool {
        self.group_of[s].size() >= 2
    }

    /// All parallel supernodes, ascending (children before parents).
    pub fn parallel_snodes(&self) -> &[usize] {
        &self.parallel_snodes
    }

    /// Parallel supernodes whose group contains `rank`, ascending — the
    /// processing path of that processor above its sequential subtree.
    pub fn parallel_path(&self, rank: usize) -> Vec<usize> {
        self.parallel_snodes
            .iter()
            .copied()
            .filter(|&s| self.group_of[s].contains(rank))
            .collect()
    }

    /// Sequential supernodes owned by `rank`, ascending.
    pub fn seq_snodes(&self, rank: usize) -> &[usize] {
        &self.seq_snodes[rank]
    }

    /// Sequential solve work (flops, fw+bw, 1 RHS) per processor — a load
    /// balance diagnostic.
    pub fn seq_work_per_proc(&self, part: &SupernodePartition) -> Vec<u64> {
        (0..self.nprocs)
            .map(|q| {
                self.seq_snodes[q]
                    .iter()
                    .map(|&s| 2 * part.solve_flops_snode(s, 1))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqchol::analyze_with_perm;
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn grid_partition(k: usize) -> SupernodePartition {
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let p =
            nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default());
        analyze_with_perm(&a, &p).part
    }

    #[test]
    fn single_proc_everything_sequential() {
        let part = grid_partition(9);
        let m = SubcubeMapping::new(&part, 1);
        assert!(m.parallel_snodes().is_empty());
        assert_eq!(m.seq_snodes(0).len(), part.nsup());
    }

    #[test]
    fn every_snode_gets_a_group() {
        let part = grid_partition(9);
        for p in [2, 4, 8] {
            let m = SubcubeMapping::new(&part, p);
            for s in 0..part.nsup() {
                assert!(!m.group(s).ranks().is_empty());
                assert!(m.group(s).size() <= p);
            }
        }
    }

    #[test]
    fn root_group_is_world() {
        let part = grid_partition(11);
        let m = SubcubeMapping::new(&part, 8);
        let root = *part.roots().last().unwrap();
        assert_eq!(m.group(root).size(), 8);
    }

    #[test]
    fn child_groups_nest_in_parent() {
        let part = grid_partition(11);
        let m = SubcubeMapping::new(&part, 8);
        for s in 0..part.nsup() {
            if let Some(p) = part.parent(s) {
                for &r in m.group(s).ranks() {
                    assert!(
                        m.group(p).contains(r),
                        "rank {r} of snode {s} not in parent group"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_snodes_partition_non_parallel() {
        let part = grid_partition(9);
        let m = SubcubeMapping::new(&part, 4);
        let mut owned = vec![0usize; part.nsup()];
        for q in 0..4 {
            for &s in m.seq_snodes(q) {
                owned[s] += 1;
                assert!(!m.is_parallel(s));
            }
        }
        for s in 0..part.nsup() {
            if m.is_parallel(s) {
                assert_eq!(owned[s], 0);
            } else {
                assert_eq!(owned[s], 1, "snode {s} owned {} times", owned[s]);
            }
        }
    }

    #[test]
    fn parallel_path_is_nested_chain() {
        let part = grid_partition(13);
        let m = SubcubeMapping::new(&part, 8);
        for q in 0..8 {
            let path = m.parallel_path(q);
            // group sizes along the path must be non-decreasing
            for w in path.windows(2) {
                assert!(
                    m.group(w[0]).size() <= m.group(w[1]).size(),
                    "proc {q}: group shrank going up"
                );
            }
            // the last entry must be the root
            if let Some(&top) = path.last() {
                assert_eq!(m.group(top).size(), 8);
            }
        }
    }

    #[test]
    fn seq_work_is_roughly_balanced_on_balanced_grid() {
        let part = grid_partition(17);
        let m = SubcubeMapping::new(&part, 4);
        let w = m.seq_work_per_proc(&part);
        let max = *w.iter().max().unwrap() as f64;
        let min = *w.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 3.0,
            "sequential work imbalanced: {w:?}"
        );
    }

    #[test]
    fn more_procs_than_work_still_valid() {
        // tiny matrix, many procs: most procs own nothing sequential
        let part = grid_partition(3);
        let m = SubcubeMapping::new(&part, 16);
        let total: usize = (0..16).map(|q| m.seq_snodes(q).len()).sum();
        let npar = m.parallel_snodes().len();
        assert_eq!(total + npar, part.nsup());
    }
}
