//! Storage-precision abstraction for the numeric factor and solve kernels.
//!
//! The solve hot path is memory-bandwidth-bound — the factor is streamed
//! once per substitution sweep — so halving the bytes per stored nonzero
//! is a direct win no scheduling change can match. [`FScalar`] abstracts
//! the *storage* scalar of the factor (`f64` or `f32`) for the four solve
//! kernels in [`crate::blas`] and the substitution drivers built on them;
//! factorization itself always runs in `f64` and is demoted afterwards
//! (see `SupernodalFactor::demote`). Right-hand sides, residuals, and
//! certificates stay in `f64` end to end — only the factor's resident
//! representation changes width.
//!
//! [`FactorBlocks`] is the read-only view the generic solvers consume: a
//! supernode partition plus one column-major trapezoid of `S` values per
//! supernode. It is implemented by both `SupernodalFactor` (`S = f64`) and
//! `SupernodalFactorF32` (`S = f32`), so one solver body monomorphizes to
//! both lanes with identical operation order — the `f64` instantiation is
//! bit-identical to the pre-generic code.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use trisolv_symbolic::SupernodePartition;

/// Scalar type a factor can be stored and streamed in.
///
/// The conversions define the mixed-precision contract: `from_f64`
/// truncates (rounds to nearest) on narrow types, `to_f64` is exact for
/// every type implemented here. Because `f32 → f64 → f32` round-trips to
/// the same bits, handing intermediate values through `f64`-typed buffers
/// never perturbs an `f32`-lane result.
pub trait FScalar:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity (the zero-skip sentinel of the kernels).
    const ZERO: Self;
    /// Bytes per stored value (4 for `f32`, 8 for `f64`) — the quantity
    /// the cache byte budget charges.
    const BYTES: usize;
    /// Narrowing (or identity) conversion from the working precision.
    fn from_f64(v: f64) -> Self;
    /// Exact widening (or identity) conversion to the working precision.
    fn to_f64(self) -> f64;
}

impl FScalar for f64 {
    const ZERO: f64 = 0.0;
    const BYTES: usize = 8;
    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

impl FScalar for f32 {
    const ZERO: f32 = 0.0;
    const BYTES: usize = 4;
    #[inline(always)]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

/// Read-only supernodal factor view the generic substitution drivers
/// consume: the partition (structure) plus, per supernode, a column-major
/// `height(s) × width(s)` trapezoid of values with leading dimension
/// `height(s)`.
pub trait FactorBlocks: Sync {
    /// Storage scalar of the trapezoid values.
    type S: FScalar;

    /// The supernode partition (structure is precision-independent).
    fn partition(&self) -> &SupernodePartition;

    /// The flat column-major values of supernode `s`'s trapezoid
    /// (`height(s) * width(s)` entries, leading dimension `height(s)`).
    fn values(&self, s: usize) -> &[Self::S];

    /// Matrix order.
    fn n(&self) -> usize {
        self.partition().n()
    }

    /// Number of supernodes.
    fn nsup(&self) -> usize {
        self.partition().nsup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_exactly() {
        // f32 → f64 is exact, and truncating back recovers the same bits:
        // the invariant that lets f32-lane intermediates ride in f64
        // buffers without perturbation.
        for bits in [
            0x3f80_0001u32, // 1.0 + ulp
            0x0000_0001,    // smallest subnormal
            0x7f7f_ffff,    // largest finite
            0x8000_0000,    // -0.0
            0xc2c8_0000,    // -100.0
        ] {
            let v = f32::from_bits(bits);
            assert_eq!(f32::from_f64(v.to_f64()).to_bits(), bits);
        }
        assert_eq!(f64::from_f64(1.5f64.to_f64()), 1.5);
    }

    #[test]
    fn from_f64_truncates_to_nearest() {
        let fine = 1.0f64 + f64::EPSILON;
        assert_eq!(f32::from_f64(fine), 1.0f32);
        assert_eq!(<f32 as FScalar>::BYTES, 4);
        assert_eq!(<f64 as FScalar>::BYTES, 8);
        assert_eq!(<f32 as FScalar>::ZERO, 0.0f32);
    }
}
