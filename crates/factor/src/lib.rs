//! Sparse Cholesky factorization and the dense kernels underneath it.
//!
//! The triangular solvers of the paper consume the factor `L` produced by a
//! supernodal multifrontal Cholesky factorization ([Gupta, Karypis & Kumar
//! 1994], reference `[4]` of the paper). This crate provides:
//!
//! * [`blas`] — hand-written dense BLAS-like kernels (`gemm`, `syrk`,
//!   `trsm`, `potrf`) operating on column-major blocks with explicit
//!   leading dimensions;
//! * [`dense`] — dense Cholesky factorization and triangular solves, used
//!   as reference numerics and as the dense baselines of the paper's
//!   Figure 5 comparison;
//! * [`snfactor`] — the [`SupernodalFactor`] container: per-supernode
//!   `n_s × t_s` trapezoidal blocks of `L`, the storage format every
//!   solver kernel operates on;
//! * [`seqchol`] — sequential factorization: simplicial left-looking (a
//!   reference) and supernodal multifrontal (the production path);
//! * [`par`] — the simulated-parallel multifrontal factorization with
//!   subtree-to-subcube mapping and 2-D block-cyclic frontal kernels,
//!   which supplies the factorization-time columns of the paper's main
//!   table and the 2-D distributed factor that the solvers must
//!   redistribute.

pub mod blas;
pub mod dense;
pub mod dense_par;
pub mod fio;
pub mod fscalar;
pub mod mapping;
pub mod par;
pub mod seqchol;
pub mod snfactor;

pub use fscalar::{FScalar, FactorBlocks};
pub use mapping::SubcubeMapping;
pub use snfactor::{SupernodalFactor, SupernodalFactorF32};
