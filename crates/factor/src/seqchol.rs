//! Sequential sparse Cholesky factorization.
//!
//! Two implementations:
//!
//! * [`factor_simplicial`] — column-by-column left-looking factorization on
//!   the CSC structure; simple, used as a cross-check;
//! * [`factor_supernodal`] — multifrontal factorization over the supernode
//!   partition (dense trapezoid kernels + extend-add of update matrices),
//!   the production path that produces the [`SupernodalFactor`] the
//!   parallel solvers consume.
//!
//! [`Analysis`] bundles the whole symbolic pipeline: fill-reducing
//! permutation → postorder → symbolic factorization → supernode partition.

use crate::{blas, SupernodalFactor};
use trisolv_graph::{EliminationTree, Permutation};
use trisolv_matrix::{CscMatrix, DenseMatrix, MatrixError};
use trisolv_symbolic::{SupernodePartition, SymbolicFactor};

/// The symbolic phase output: everything needed to factor and solve.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Total old→new permutation (fill-reducing ∘ postorder).
    pub perm: Permutation,
    /// The permuted matrix `P·A·Pᵀ` (lower triangle).
    pub pa: CscMatrix,
    /// Column structure of `L`.
    pub sym: SymbolicFactor,
    /// Fundamental supernode partition.
    pub part: SupernodePartition,
}

/// Run the symbolic pipeline for a symmetric matrix under a given
/// fill-reducing permutation. The permutation is composed with a postorder
/// of the elimination tree, so the returned structures satisfy the
/// "children have smaller labels / subtrees are contiguous" invariants the
/// solvers rely on.
pub fn analyze_with_perm(a: &CscMatrix, fill_perm: &Permutation) -> Analysis {
    let pa = a
        .permute_sym_lower(fill_perm.as_slice())
        .expect("valid permutation");
    let tree = EliminationTree::from_sym_lower(&pa);
    let post = tree.postorder();
    let perm = fill_perm.then(&post);
    let pa = a.permute_sym_lower(perm.as_slice()).expect("valid perm");
    let tree = EliminationTree::from_sym_lower(&pa);
    debug_assert!(tree.is_postordered());
    let sym = SymbolicFactor::analyze(&pa, &tree);
    let part = SupernodePartition::from_symbolic(&sym);
    Analysis {
        perm,
        pa,
        sym,
        part,
    }
}

/// Left-looking simplicial Cholesky: returns `L` in CSC form with the
/// symbolic pattern (including numerically-zero fill entries).
pub fn factor_simplicial(pa: &CscMatrix, sym: &SymbolicFactor) -> Result<CscMatrix, MatrixError> {
    let n = pa.ncols();
    let mut colptr = vec![0usize; n + 1];
    for j in 0..n {
        colptr[j + 1] = colptr[j] + sym.col_count(j);
    }
    let nnz = colptr[n];
    let mut rowidx = vec![0usize; nnz];
    let mut values = vec![0f64; nnz];
    for j in 0..n {
        rowidx[colptr[j]..colptr[j + 1]].copy_from_slice(sym.col_rows(j));
    }

    // rowlist[i] = columns k < i already factored with L[i, k] != 0
    let mut rowlist: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut work = vec![0f64; n];
    for j in 0..n {
        // scatter A[:, j]
        for (k, &i) in pa.col_rows(j).iter().enumerate() {
            work[i] = pa.col_values(j)[k];
        }
        // subtract contributions of earlier columns with L[j, k] != 0
        for &k in &rowlist[j] {
            let col = &rowidx[colptr[k]..colptr[k + 1]];
            let vals = &values[colptr[k]..colptr[k + 1]];
            // find L[j, k]
            let pos = col.binary_search(&j).expect("structure contains (j, k)");
            let ljk = vals[pos];
            if ljk != 0.0 {
                for (idx, &i) in col.iter().enumerate().skip(pos) {
                    work[i] -= vals[idx] * ljk;
                }
            }
        }
        // scale and store column j
        let pivot = work[j];
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { column: j, pivot });
        }
        let d = pivot.sqrt();
        let range = colptr[j]..colptr[j + 1];
        for idx in range.clone() {
            let i = rowidx[idx];
            values[idx] = if i == j { d } else { work[i] / d };
            work[i] = 0.0;
            if i > j {
                rowlist[i].push(j);
            }
        }
    }
    CscMatrix::from_parts(n, n, colptr, rowidx, values)
}

/// Left-looking simplicial **LDLᵀ** factorization (square-root-free):
/// returns the unit-lower factor `L` (diagonal stored as 1) with the
/// symbolic pattern, and the diagonal `D`. Works for SPD and symmetric
/// quasi-definite matrices (no pivoting).
pub fn factor_simplicial_ldlt(
    pa: &CscMatrix,
    sym: &SymbolicFactor,
) -> Result<(CscMatrix, Vec<f64>), MatrixError> {
    let n = pa.ncols();
    let mut colptr = vec![0usize; n + 1];
    for j in 0..n {
        colptr[j + 1] = colptr[j] + sym.col_count(j);
    }
    let nnz = colptr[n];
    let mut rowidx = vec![0usize; nnz];
    let mut values = vec![0f64; nnz];
    for j in 0..n {
        rowidx[colptr[j]..colptr[j + 1]].copy_from_slice(sym.col_rows(j));
    }
    let mut d = vec![0f64; n];
    let mut rowlist: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut work = vec![0f64; n];
    for j in 0..n {
        for (k, &i) in pa.col_rows(j).iter().enumerate() {
            work[i] = pa.col_values(j)[k];
        }
        for &k in &rowlist[j] {
            let col = &rowidx[colptr[k]..colptr[k + 1]];
            let vals = &values[colptr[k]..colptr[k + 1]];
            let pos = col.binary_search(&j).expect("structure contains (j, k)");
            let ljk_d = vals[pos] * d[k];
            if ljk_d != 0.0 {
                for (idx, &i) in col.iter().enumerate().skip(pos) {
                    work[i] -= vals[idx] * ljk_d;
                }
            }
        }
        let dj = work[j];
        if dj == 0.0 || !dj.is_finite() {
            return Err(MatrixError::NotPositiveDefinite {
                column: j,
                pivot: dj,
            });
        }
        d[j] = dj;
        for idx in colptr[j]..colptr[j + 1] {
            let i = rowidx[idx];
            values[idx] = if i == j { 1.0 } else { work[i] / dj };
            work[i] = 0.0;
            if i > j {
                rowlist[i].push(j);
            }
        }
    }
    Ok((CscMatrix::from_parts(n, n, colptr, rowidx, values)?, d))
}

/// Numeric-phase policy for the supernodal factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorOptions {
    /// Boost a too-small (or negative) pivot to the floor instead of
    /// failing with `NotPositiveDefinite` — CHOLMOD-style dynamic
    /// regularization. The perturbations are recorded on the factor
    /// ([`SupernodalFactor::perturbations`]) so iterative refinement can
    /// compensate. Off by default: breakdown stays a hard error unless
    /// the caller opted in.
    pub regularize: bool,
    /// Relative pivot floor: the absolute floor is `beta · max_ij |a_ij|`.
    /// The default (`f64::EPSILON`) only trips on pivots that are zero or
    /// negative up to rounding, so well-conditioned factorizations are
    /// bit-identical with or without regularization enabled.
    pub beta: f64,
}

impl Default for FactorOptions {
    fn default() -> FactorOptions {
        FactorOptions {
            regularize: false,
            beta: f64::EPSILON,
        }
    }
}

/// Assemble and partially factor one supernode's frontal matrix.
///
/// `child_updates` supplies the update (Schur-complement) matrices of the
/// supernode's children, each indexed by `part.below_rows(child)`. Returns
/// the factored `n_s × t_s` trapezoid block of `L` and the supernode's own
/// update matrix (shape `(n_s−t_s)²`, lower triangle valid) for its
/// parent.
pub fn process_frontal(
    pa: &CscMatrix,
    part: &SupernodePartition,
    s: usize,
    child_updates: &[(usize, DenseMatrix)],
) -> Result<(DenseMatrix, DenseMatrix), MatrixError> {
    process_frontal_reg(pa, part, s, child_updates, None, &mut Vec::new())
}

/// [`process_frontal`] with an optional pivot floor: when `floor` is
/// `Some`, sub-floor pivots are boosted and recorded into `perturbations`
/// as `(global column, delta)` pairs instead of aborting.
pub fn process_frontal_reg(
    pa: &CscMatrix,
    part: &SupernodePartition,
    s: usize,
    child_updates: &[(usize, DenseMatrix)],
    floor: Option<f64>,
    perturbations: &mut Vec<(usize, f64)>,
) -> Result<(DenseMatrix, DenseMatrix), MatrixError> {
    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let first = part.cols(s).start;
    // global row -> local frontal row
    let gmap: std::collections::HashMap<usize, usize> =
        rows.iter().enumerate().map(|(li, &gi)| (gi, li)).collect();
    let mut f = DenseMatrix::zeros(ns, ns);
    // assemble A's columns
    for (lj, j) in part.cols(s).enumerate() {
        for (k, &i) in pa.col_rows(j).iter().enumerate() {
            let li = *gmap.get(&i).expect("A entry inside pattern");
            f[(li, lj)] += pa.col_values(j)[k];
        }
    }
    // extend-add children update matrices
    for (c, u) in child_updates {
        let crows = part.below_rows(*c);
        debug_assert_eq!(u.nrows(), crows.len());
        for (lj, &gj) in crows.iter().enumerate() {
            let fj = gmap[&gj];
            for (li, &gi) in crows.iter().enumerate().skip(lj) {
                f[(gmap[&gi], fj)] += u[(li, lj)];
            }
        }
    }
    // partial dense factorization of the leading t columns
    match floor {
        None => blas::potrf_lower(f.as_mut_slice(), ns, t),
        Some(fl) => {
            let mut local = Vec::new();
            let r = blas::potrf_lower_reg(f.as_mut_slice(), ns, t, fl, &mut local);
            perturbations.extend(local.into_iter().map(|(c, d)| (first + c, d)));
            r
        }
    }
    .map_err(|e| match e {
        MatrixError::NotPositiveDefinite { column, pivot } => MatrixError::NotPositiveDefinite {
            column: first + column,
            pivot,
        },
        other => other,
    })?;
    let update = if ns > t {
        // Solve the rectangle against the freshly factored triangle.
        let mut rect = f.sub_block(t, ns, 0, t);
        let tri = f.sub_block(0, t, 0, t);
        blas::trsm_right_lower_trans(tri.as_slice(), t, rect.as_mut_slice(), ns - t, ns - t, t);
        for lj in 0..t {
            let src = rect.col(lj);
            f.col_mut(lj)[t..ns].copy_from_slice(src);
        }
        // Schur complement for the parent: U = F22 − L21·L21ᵀ
        let mut u = f.sub_block(t, ns, t, ns);
        blas::syrk_lower_update(u.as_mut_slice(), ns - t, rect.as_slice(), ns - t, ns - t, t);
        u
    } else {
        DenseMatrix::zeros(0, 0)
    };
    // extract the trapezoid block, zeroing the stored strict upper
    let mut blk = f.sub_block(0, ns, 0, t);
    for lj in 0..t {
        for li in 0..lj {
            blk[(li, lj)] = 0.0;
        }
    }
    Ok((blk, update))
}

/// Multifrontal supernodal Cholesky over the supernode partition.
pub fn factor_supernodal(
    pa: &CscMatrix,
    part: &SupernodePartition,
) -> Result<SupernodalFactor, MatrixError> {
    factor_supernodal_opts(pa, part, FactorOptions::default())
}

/// [`factor_supernodal`] with a numeric policy. With
/// `opts.regularize == true`, a non-positive (or sub-floor) pivot no
/// longer aborts the factorization: it is boosted to `beta · max|A|` and
/// the perturbation is recorded on the returned factor, making breakdown
/// a *policy choice* rather than the only outcome.
pub fn factor_supernodal_opts(
    pa: &CscMatrix,
    part: &SupernodePartition,
    opts: FactorOptions,
) -> Result<SupernodalFactor, MatrixError> {
    let floor = if opts.regularize {
        let maxabs = pa.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // a positive floor even for the all-zero matrix, so potrf's
        // division by the boosted pivot is well-defined
        Some((opts.beta * maxabs).max(f64::MIN_POSITIVE))
    } else {
        None
    };
    let nsup = part.nsup();
    let mut blocks: Vec<DenseMatrix> = Vec::with_capacity(nsup);
    let mut updates: Vec<Option<DenseMatrix>> = (0..nsup).map(|_| None).collect();
    let mut perturbations = Vec::new();
    let children = part.children();
    for s in 0..nsup {
        let child_updates: Vec<(usize, DenseMatrix)> = children[s]
            .iter()
            .map(|&c| (c, updates[c].take().expect("child processed earlier")))
            .collect();
        let (blk, update) =
            process_frontal_reg(pa, part, s, &child_updates, floor, &mut perturbations)?;
        updates[s] = Some(update);
        blocks.push(blk);
    }
    let mut f = SupernodalFactor::new(part.clone(), blocks);
    f.set_perturbations(perturbations);
    Ok(f)
}

/// Flops actually performed by the supernodal factorization (dense-block
/// accounting; matches `SupernodePartition::factor_flops` up to lower-order
/// terms).
pub fn supernodal_factor_flops(part: &SupernodePartition) -> u64 {
    (0..part.nsup())
        .map(|s| {
            let (n, t) = (part.height(s), part.width(s));
            blas::potrf_flops(t)
                + blas::trsm_flops(t, n - t)
                + blas::gemm_flops(n - t, n - t, t) / 2
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn nd_perm(a: &CscMatrix) -> Permutation {
        let g = Graph::from_sym_lower(a);
        nd::nested_dissection(&g, nd::NdOptions::default())
    }

    fn residual_check(a: &CscMatrix, f: &SupernodalFactor, tol: f64) {
        // verify L·Lᵀ·x == A·x for random x (A is the permuted matrix)
        let n = a.ncols();
        let x = gen::random_rhs(n, 2, 99);
        let ax = a.spmv_sym_lower(&x).unwrap();
        let llx = f.llt_times(&x);
        let scale = ax.norm_max().max(1.0);
        assert!(
            ax.max_abs_diff(&llx).unwrap() / scale < tol,
            "residual {} too large",
            ax.max_abs_diff(&llx).unwrap() / scale
        );
    }

    #[test]
    fn simplicial_matches_dense_cholesky() {
        let a = gen::random_spd(20, 3, 1);
        let an = analyze_with_perm(&a, &Permutation::identity(20));
        let l = factor_simplicial(&an.pa, &an.sym).unwrap();
        let dense =
            crate::dense::DenseCholesky::factor(&an.pa.sym_expand().unwrap().to_dense()).unwrap();
        assert!(l.to_dense().max_abs_diff(dense.l()).unwrap() < 1e-9);
    }

    #[test]
    fn supernodal_matches_simplicial() {
        for seed in 0..3 {
            let a = gen::random_spd(40, 4, seed);
            let an = analyze_with_perm(&a, &nd_perm(&a));
            let ls = factor_simplicial(&an.pa, &an.sym).unwrap();
            let f = factor_supernodal(&an.pa, &an.part).unwrap();
            let lf = f.to_csc();
            // compare entrywise over the symbolic pattern
            assert!(
                ls.to_dense().max_abs_diff(&lf.to_dense()).unwrap() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn supernodal_on_grid_reconstructs_a() {
        let a = gen::grid2d_laplacian(9, 9);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        residual_check(&an.pa, &f, 1e-10);
    }

    #[test]
    fn supernodal_on_3d_fem_reconstructs_a() {
        let a = gen::fem3d(4, 4, 3, 2);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        residual_check(&an.pa, &f, 1e-9);
    }

    #[test]
    fn indefinite_matrix_reports_column() {
        let mut a = gen::grid2d_laplacian(4, 4);
        // make it indefinite by flipping a diagonal entry
        let j = 7;
        let pos = a.col_rows(j).iter().position(|&i| i == j).unwrap();
        let base = a.colptr()[j];
        a.values_mut()[base + pos] = -5.0;
        let an = analyze_with_perm(&a, &Permutation::identity(16));
        assert!(factor_simplicial(&an.pa, &an.sym).is_err());
        assert!(factor_supernodal(&an.pa, &an.part).is_err());
    }

    #[test]
    fn regularization_recovers_indefinite_pivot() {
        let mut a = gen::grid2d_laplacian(4, 4);
        let j = 7;
        let pos = a.col_rows(j).iter().position(|&i| i == j).unwrap();
        let base = a.colptr()[j];
        a.values_mut()[base + pos] = -5.0;
        let an = analyze_with_perm(&a, &Permutation::identity(16));
        // default policy: hard failure
        assert!(factor_supernodal(&an.pa, &an.part).is_err());
        // regularized: succeeds and records where it intervened
        let opts = FactorOptions {
            regularize: true,
            ..FactorOptions::default()
        };
        let f = factor_supernodal_opts(&an.pa, &an.part, opts).unwrap();
        assert!(
            !f.perturbations().is_empty(),
            "expected at least one recorded boost"
        );
        for &(col, delta) in f.perturbations() {
            assert!(col < 16);
            assert!(delta > 0.0 && delta.is_finite());
        }
        // the factor is a valid Cholesky factor of the *perturbed* matrix
        let x = gen::random_rhs(16, 1, 5);
        let llx = f.llt_times(&x);
        assert!(llx.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regularized_factor_is_bit_identical_on_spd_input() {
        let a = gen::grid2d_laplacian(7, 7);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        let plain = factor_supernodal(&an.pa, &an.part).unwrap();
        let opts = FactorOptions {
            regularize: true,
            ..FactorOptions::default()
        };
        let reg = factor_supernodal_opts(&an.pa, &an.part, opts).unwrap();
        assert!(reg.perturbations().is_empty());
        for s in 0..plain.nsup() {
            assert_eq!(
                plain.block(s).as_slice(),
                reg.block(s).as_slice(),
                "supernode {s} changed"
            );
        }
    }

    #[test]
    fn factorization_works_on_amalgamated_partition() {
        let a = gen::grid2d_laplacian(10, 10);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        let am = an.part.amalgamate(16, 0.25);
        assert!(am.nsup() < an.part.nsup());
        let f = factor_supernodal(&an.pa, &am).unwrap();
        residual_check(&an.pa, &f, 1e-10);
        // entries on the original pattern agree with the unamalgamated factor
        let f0 = factor_supernodal(&an.pa, &an.part).unwrap();
        let d = f.to_csc().to_dense();
        let d0 = f0.to_csc().to_dense();
        for j in 0..a.ncols() {
            for i in j..a.ncols() {
                if d0[(i, j)] != 0.0 {
                    assert!(
                        (d[(i, j)] - d0[(i, j)]).abs() < 1e-10,
                        "L entry ({i},{j}) changed"
                    );
                }
            }
        }
    }

    #[test]
    fn analysis_composes_postorder() {
        let a = gen::grid2d_laplacian(6, 6);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        assert!(an.sym.tree().is_postordered());
        assert_eq!(an.part.n(), 36);
        // permutation round-trips values
        let orig = a.sym_expand().unwrap().to_dense();
        let permuted = an.pa.sym_expand().unwrap().to_dense();
        for i in 0..36 {
            for j in 0..36 {
                assert_eq!(permuted[(an.perm.apply(i), an.perm.apply(j))], orig[(i, j)]);
            }
        }
    }

    #[test]
    fn factor_flops_counter_positive() {
        let a = gen::grid2d_laplacian(8, 8);
        let an = analyze_with_perm(&a, &nd_perm(&a));
        assert!(supernodal_factor_flops(&an.part) > 0);
    }
}
