//! Simulated-parallel *dense* Cholesky factorization — the dense
//! factorization rows of the paper's Figure 5 table.
//!
//! * [`cholesky_1d`] — columns block-cyclic over all processors; fan-out
//!   right-looking: the panel owner factors and broadcasts, everyone
//!   updates. Every panel is broadcast to all `p` processors, so the
//!   overhead is `O(N²·…)`-class per the paper's analysis: isoefficiency
//!   `O(p³)` — the poorest pairing in the table.
//! * [`cholesky_2d`] — 2-D block-cyclic over a near-square grid with row
//!   and column broadcasts only inside grid rows/columns: overhead
//!   `O(N·√p)`, isoefficiency `O(p^{3/2})` — the scalable formulation the
//!   sparse multifrontal kernels inherit.

use crate::blas;
use trisolv_machine::{
    coll, BlockCyclic1d, BlockCyclic2d, Group, KernelClass, Machine, MachineParams,
};
use trisolv_matrix::{DenseMatrix, MatrixError};

/// Result of a simulated dense factorization.
#[derive(Debug, Clone)]
pub struct DenseFactorResult {
    /// The factor `L` (strict upper triangle zeroed).
    pub l: DenseMatrix,
    /// Virtual parallel time.
    pub time: f64,
    /// Overhead function `p·T_P − Σ busy`.
    pub overhead: f64,
    /// Words communicated.
    pub words: u64,
}

/// Fan-out right-looking Cholesky with **1-D column block-cyclic**
/// distribution.
pub fn cholesky_1d(
    a: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> Result<DenseFactorResult, MatrixError> {
    let (n, m) = a.shape();
    assert_eq!(n, m, "matrix must be square");
    let layout = BlockCyclic1d::new(n, block, p);
    let nb = n.div_ceil(block);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let me = proc.rank();
        let group = Group::world(p);
        // local columns, packed ascending
        let my_cols: Vec<usize> = (0..n).filter(|&j| layout.owner(j) == me).collect();
        let mut local = DenseMatrix::zeros(n, my_cols.len());
        for (lj, &j) in my_cols.iter().enumerate() {
            for i in j..n {
                local[(i, lj)] = a[(i, j)];
            }
        }
        let mut failed: Option<usize> = None;
        for k in 0..nb {
            let c0 = k * block;
            let c1 = (c0 + block).min(n);
            let len = c1 - c0;
            let owner = layout.owner_of_block(k);
            // panel = L[c0.., c0..c1] after factorization of the diag tile.
            // The owner always broadcasts (status word first) so peers can
            // learn about failures in earlier panels.
            let payload = if me == owner {
                if failed.is_none() {
                    let lj0 = my_cols.binary_search(&c0).expect("owner has block");
                    // factor the diagonal tile in place
                    let mut ok = true;
                    {
                        let lslice = local.as_mut_slice();
                        // tile occupies rows c0..c1 of local cols lj0..lj0+len
                        let mut tile = vec![0.0; len * len];
                        for j in 0..len {
                            for i in j..len {
                                tile[i + j * len] = lslice[(c0 + i) + (lj0 + j) * n];
                            }
                        }
                        if blas::potrf_lower(&mut tile, len, len).is_err() {
                            ok = false;
                        } else {
                            for j in 0..len {
                                for i in j..len {
                                    lslice[(c0 + i) + (lj0 + j) * n] = tile[i + j * len];
                                }
                            }
                            // panel trsm: L[c1.., c0..c1] ← A·L11⁻ᵀ
                            let rows = n - c1;
                            if rows > 0 {
                                let mut panel = vec![0.0; rows * len];
                                for j in 0..len {
                                    for i in 0..rows {
                                        panel[i + j * rows] = lslice[(c1 + i) + (lj0 + j) * n];
                                    }
                                }
                                blas::trsm_right_lower_trans(
                                    &tile, len, &mut panel, rows, rows, len,
                                );
                                for j in 0..len {
                                    for i in 0..rows {
                                        lslice[(c1 + i) + (lj0 + j) * n] = panel[i + j * rows];
                                    }
                                }
                            }
                        }
                    }
                    if !ok {
                        failed = Some(c0);
                    }
                    proc.compute_flops(
                        (blas::potrf_flops(len) + blas::trsm_flops(len, n - c1)) as f64,
                        KernelClass::Matrix,
                    );
                }
                // broadcast status + the full panel rows c0..n
                let rows = n - c0;
                let mut buf = Vec::with_capacity(rows * len + 1);
                buf.push(if failed.is_some() { 1.0 } else { 0.0 });
                if failed.is_none() {
                    let lj0 = my_cols.binary_search(&c0).expect("owner has block");
                    for j in 0..len {
                        for i in 0..rows {
                            buf.push(local[(c0 + i, lj0 + j)]);
                        }
                    }
                }
                buf
            } else {
                Vec::new()
            };
            let data = coll::bcast(proc, &group, k as u64, owner, payload);
            if data[0] != 0.0 {
                failed.get_or_insert(c0);
                continue;
            }
            if failed.is_some() {
                continue;
            }
            let rows = n - c0;
            // update my columns j ≥ c1: local[:, j] -= panel · panel_jᵀ
            let mut flops = 0usize;
            for (lj, &j) in my_cols.iter().enumerate() {
                if j < c1 {
                    continue;
                }
                for kk in 0..len {
                    // panel row for column j: data[1 + kk*rows + (j − c0)]
                    let ljk = data[1 + kk * rows + (j - c0)];
                    if ljk == 0.0 {
                        continue;
                    }
                    for i in j..n {
                        let lik = data[1 + kk * rows + (i - c0)];
                        local[(i, lj)] -= lik * ljk;
                    }
                }
                flops += 2 * (n - j) * len;
            }
            proc.compute_flops(flops as f64, KernelClass::Matrix);
        }
        (my_cols, local, failed)
    });
    assemble_1d(run, n)
}

fn assemble_1d(
    run: trisolv_machine::RunResult<(Vec<usize>, DenseMatrix, Option<usize>)>,
    n: usize,
) -> Result<DenseFactorResult, MatrixError> {
    let mut l = DenseMatrix::zeros(n, n);
    for (my_cols, local, failed) in &run.results {
        if let Some(col) = failed {
            return Err(MatrixError::NotPositiveDefinite {
                column: *col,
                pivot: f64::NAN,
            });
        }
        for (lj, &j) in my_cols.iter().enumerate() {
            for i in j..n {
                l[(i, j)] = local[(i, lj)];
            }
        }
    }
    Ok(DenseFactorResult {
        l,
        time: run.parallel_time(),
        overhead: run.overhead(),
        words: run.total_words(),
    })
}

/// Fan-out right-looking Cholesky with **2-D block-cyclic** distribution
/// over a near-square processor grid.
pub fn cholesky_2d(
    a: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> Result<DenseFactorResult, MatrixError> {
    let (n, m) = a.shape();
    assert_eq!(n, m);
    let (pr, pc) = BlockCyclic2d::square_grid(p);
    let grid = BlockCyclic2d::new(n, n, block, pr, pc);
    let nb = n.div_ceil(block);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let me = proc.rank();
        let (my_r, my_c) = (me / pc, me % pc);
        let group = Group::world(p);
        let row_group = Group::from_ranks((0..pc).map(|c| my_r * pc + c).collect());
        let col_group = Group::from_ranks((0..pr).map(|r| r * pc + my_c).collect());
        let my_rows: Vec<usize> = (0..n).filter(|&i| grid.rows.owner(i) == my_r).collect();
        let my_cols: Vec<usize> = (0..n).filter(|&j| grid.cols.owner(j) == my_c).collect();
        let mut local = DenseMatrix::zeros(my_rows.len(), my_cols.len());
        for (lj, &j) in my_cols.iter().enumerate() {
            for (li, &i) in my_rows.iter().enumerate() {
                if i >= j {
                    local[(li, lj)] = a[(i, j)];
                }
            }
        }
        let mut failed: Option<usize> = None;
        for k in 0..nb {
            let c0 = k * block;
            let c1 = (c0 + block).min(n);
            let len = c1 - c0;
            let rk = grid.rows.owner(c0);
            let ck = grid.cols.owner(c0);
            let ktag = 3 * k as u64;
            // 1. potrf at (rk, ck), column-broadcast the tile
            let mut tile = DenseMatrix::zeros(len, len);
            if my_c == ck {
                let mut status = 0.0;
                if my_r == rk {
                    if failed.is_none() {
                        let li0 = my_rows.binary_search(&c0).expect("diag rows");
                        let lj0 = my_cols.binary_search(&c0).expect("diag cols");
                        for j in 0..len {
                            for i in j..len {
                                tile[(i, j)] = local[(li0 + i, lj0 + j)];
                            }
                        }
                        if blas::potrf_lower(tile.as_mut_slice(), len, len).is_err() {
                            failed = Some(c0);
                            status = 1.0;
                        } else {
                            proc.compute_flops(blas::potrf_flops(len) as f64, KernelClass::Matrix);
                            for j in 0..len {
                                for i in j..len {
                                    local[(li0 + i, lj0 + j)] = tile[(i, j)];
                                }
                            }
                        }
                    } else {
                        status = 1.0;
                    }
                }
                let root = col_group
                    .group_rank(rk * pc + ck)
                    .expect("diag owner in column");
                let mut payload = vec![status];
                payload.extend_from_slice(tile.as_slice());
                let data = coll::bcast(proc, &col_group, ktag, root, payload);
                if data[0] != 0.0 {
                    failed.get_or_insert(c0);
                } else if my_r != rk {
                    tile = DenseMatrix::from_column_major(len, len, data[1..].to_vec())
                        .expect("tile shape");
                }
                // 2. panel trsm on my rows below the tile
                if failed.is_none() {
                    let tail = my_rows.partition_point(|&i| i < c1);
                    let mrows = my_rows.len() - tail;
                    if mrows > 0 {
                        let lj0 = my_cols.binary_search(&c0).expect("panel cols");
                        let mut panel = vec![0.0; mrows * len];
                        for j in 0..len {
                            for i in 0..mrows {
                                panel[i + j * mrows] = local[(tail + i, lj0 + j)];
                            }
                        }
                        blas::trsm_right_lower_trans(
                            tile.as_slice(),
                            len,
                            &mut panel,
                            mrows,
                            mrows,
                            len,
                        );
                        proc.compute_flops(
                            blas::trsm_flops(len, mrows) as f64,
                            KernelClass::Matrix,
                        );
                        for j in 0..len {
                            for i in 0..mrows {
                                local[(tail + i, lj0 + j)] = panel[i + j * mrows];
                            }
                        }
                    }
                }
            }
            // propagate failure knowledge grid-wide via the row broadcast
            // 3. row broadcast of panel pieces from grid column ck
            let tail = my_rows.partition_point(|&i| i < c1);
            let w_rows: Vec<usize> = my_rows[tail..].to_vec();
            let payload = if my_c == ck {
                let mut buf = vec![if failed.is_some() { 1.0 } else { 0.0 }];
                if failed.is_none() {
                    let lj0 = my_cols.binary_search(&c0).expect("panel cols");
                    for (i, &pos) in w_rows.iter().enumerate() {
                        buf.push(pos as f64);
                        for j in 0..len {
                            buf.push(local[(tail + i, lj0 + j)]);
                        }
                    }
                }
                buf
            } else {
                Vec::new()
            };
            let root = row_group
                .group_rank(my_r * pc + ck)
                .expect("panel col in row group");
            let wdata = coll::bcast(proc, &row_group, ktag + 1, root, payload);
            if wdata[0] != 0.0 {
                failed.get_or_insert(c0);
            }
            if failed.is_some() {
                // keep collective structure consistent: empty exchange
                let _ = coll::allgather(proc, &col_group, ktag + 2, Vec::new(), 1);
                continue;
            }
            let mut w_mine = DenseMatrix::zeros(w_rows.len(), len);
            {
                let stride = 1 + len;
                for rec in wdata[1..].chunks_exact(stride) {
                    let pos = rec[0] as usize;
                    let i = w_rows.binary_search(&pos).expect("my row");
                    for j in 0..len {
                        w_mine[(i, j)] = rec[1 + j];
                    }
                }
            }
            // 4. column exchange: panel rows needed for my column set
            let contrib: Vec<f64> = {
                let mut buf = Vec::new();
                for (i, &pos) in w_rows.iter().enumerate() {
                    if grid.cols.owner(pos) == my_c {
                        buf.push(pos as f64);
                        for j in 0..len {
                            buf.push(w_mine[(i, j)]);
                        }
                    }
                }
                buf
            };
            let hint = (n - c1) * (1 + len) / p + 1;
            let gathered = coll::allgather(proc, &col_group, ktag + 2, contrib, hint);
            let ctail = my_cols.partition_point(|&j| j < c1);
            let w_cols: Vec<usize> = my_cols[ctail..].to_vec();
            let mut w_colvals = DenseMatrix::zeros(w_cols.len(), len);
            for chunk in &gathered {
                let stride = 1 + len;
                for rec in chunk.chunks_exact(stride) {
                    let pos = rec[0] as usize;
                    if let Ok(j) = w_cols.binary_search(&pos) {
                        for kk in 0..len {
                            w_colvals[(j, kk)] = rec[1 + kk];
                        }
                    }
                }
            }
            // 5. local symmetric update (lower triangle only)
            let mut pairs = 0usize;
            for (j, &pos_j) in w_cols.iter().enumerate() {
                let jc = ctail + j;
                let istart = w_rows.partition_point(|&i| i < pos_j);
                for i in istart..w_rows.len() {
                    let ir = tail + i;
                    let mut sum = 0.0;
                    for kk in 0..len {
                        sum += w_mine[(i, kk)] * w_colvals[(j, kk)];
                    }
                    local[(ir, jc)] -= sum;
                    pairs += 1;
                }
            }
            proc.compute_flops((2 * pairs * len) as f64, KernelClass::Matrix);
        }
        let _ = &group;
        (my_rows, my_cols, local, failed)
    });

    let mut l = DenseMatrix::zeros(n, n);
    for (my_rows, my_cols, local, failed) in &run.results {
        if let Some(col) = failed {
            return Err(MatrixError::NotPositiveDefinite {
                column: *col,
                pivot: f64::NAN,
            });
        }
        for (lj, &j) in my_cols.iter().enumerate() {
            for (li, &i) in my_rows.iter().enumerate() {
                if i >= j {
                    l[(i, j)] = local[(li, lj)];
                }
            }
        }
    }
    Ok(DenseFactorResult {
        l,
        time: run.parallel_time(),
        overhead: run.overhead(),
        words: run.total_words(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseCholesky;
    use trisolv_matrix::gen;

    fn dense_spd(n: usize, seed: u64) -> DenseMatrix {
        gen::random_spd(n, 3, seed).sym_expand().unwrap().to_dense()
    }

    #[test]
    fn cholesky_1d_matches_sequential() {
        for (n, p, b) in [(24, 4, 3), (30, 6, 4), (16, 1, 4), (20, 8, 2)] {
            let a = dense_spd(n, 1);
            let reference = DenseCholesky::factor(&a).unwrap();
            let r = cholesky_1d(&a, p, b, MachineParams::t3d()).unwrap();
            assert!(
                r.l.max_abs_diff(reference.l()).unwrap() < 1e-9,
                "n={n} p={p} b={b}"
            );
        }
    }

    #[test]
    fn cholesky_2d_matches_sequential() {
        for (n, p, b) in [(24, 4, 3), (30, 8, 4), (16, 1, 4), (28, 16, 2), (21, 6, 2)] {
            let a = dense_spd(n, 2);
            let reference = DenseCholesky::factor(&a).unwrap();
            let r = cholesky_2d(&a, p, b, MachineParams::t3d()).unwrap();
            assert!(
                r.l.max_abs_diff(reference.l()).unwrap() < 1e-9,
                "n={n} p={p} b={b}"
            );
        }
    }

    #[test]
    fn indefinite_detected_1d_and_2d() {
        let mut a = DenseMatrix::identity(12);
        a[(7, 7)] = -3.0;
        assert!(matches!(
            cholesky_1d(&a, 4, 2, MachineParams::t3d()),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            cholesky_2d(&a, 4, 2, MachineParams::t3d()),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn two_d_communicates_less_than_one_d_at_scale() {
        // the scalability story of Figure 5: 1-D broadcasts every panel to
        // everyone; 2-D confines broadcasts to grid rows/columns
        let n = 96;
        let p = 16;
        let a = dense_spd(n, 3);
        let r1 = cholesky_1d(&a, p, 4, MachineParams::t3d()).unwrap();
        let r2 = cholesky_2d(&a, p, 4, MachineParams::t3d()).unwrap();
        assert!(
            r2.words < r1.words,
            "2-D words {} not below 1-D words {}",
            r2.words,
            r1.words
        );
        assert!(r2.time < r1.time, "2-D {} vs 1-D {}", r2.time, r1.time);
    }

    #[test]
    fn single_proc_no_comm() {
        let a = dense_spd(10, 5);
        let r = cholesky_1d(&a, 1, 4, MachineParams::t3d()).unwrap();
        assert_eq!(r.words, 0);
        let r2 = cholesky_2d(&a, 1, 4, MachineParams::t3d()).unwrap();
        assert_eq!(r2.words, 0);
    }
}
