//! Binary persistence for computed factors.
//!
//! Factoring is the expensive phase; production workflows persist `L` and
//! re-load it to answer right-hand sides later ("factor once, solve for
//! years"). The format is a simple little-endian stream — magic, version,
//! partition arrays, per-supernode row patterns and dense blocks — with
//! structural validation on load.

use crate::SupernodalFactor;
use std::io::{Read, Write};
use trisolv_matrix::{DenseMatrix, MatrixError};
use trisolv_symbolic::{SupernodePartition, NONE};

const MAGIC: &[u8; 8] = b"TRISOLV1";

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), MatrixError> {
    w.write_all(&v.to_le_bytes()).map_err(MatrixError::from)
}

fn write_f64_slice<W: Write>(w: &mut W, vs: &[f64]) -> Result<(), MatrixError> {
    for &v in vs {
        w.write_all(&v.to_le_bytes()).map_err(MatrixError::from)?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, MatrixError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(MatrixError::from)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize<R: Read>(r: &mut R, bound: u64) -> Result<usize, MatrixError> {
    let v = read_u64(r)?;
    if v > bound {
        return Err(MatrixError::Io(format!(
            "corrupt factor file: value {v} exceeds bound {bound}"
        )));
    }
    Ok(v as usize)
}

fn read_f64_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<f64>, MatrixError> {
    let mut out = vec![0f64; n];
    let mut buf = [0u8; 8];
    for v in &mut out {
        r.read_exact(&mut buf).map_err(MatrixError::from)?;
        *v = f64::from_le_bytes(buf);
    }
    Ok(out)
}

/// Serialize a factor to a writer.
pub fn save_factor<W: Write>(w: &mut W, f: &SupernodalFactor) -> Result<(), MatrixError> {
    w.write_all(MAGIC).map_err(MatrixError::from)?;
    let part = f.partition();
    let n = part.n() as u64;
    write_u64(w, n)?;
    write_u64(w, part.nsup() as u64)?;
    for s in 0..part.nsup() {
        write_u64(w, part.cols(s).start as u64)?;
        write_u64(w, part.cols(s).end as u64)?;
        let rows = part.rows(s);
        write_u64(w, rows.len() as u64)?;
        for &r in rows {
            write_u64(w, r as u64)?;
        }
        write_f64_slice(w, f.block(s).as_slice())?;
    }
    Ok(())
}

/// Deserialize a factor from a reader, re-validating all structural
/// invariants (column tiling, sorted rows, block shapes).
pub fn load_factor<R: Read>(r: &mut R) -> Result<SupernodalFactor, MatrixError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(MatrixError::from)?;
    if &magic != MAGIC {
        return Err(MatrixError::Io("not a trisolv factor file".to_string()));
    }
    let n = read_usize(r, u64::MAX >> 16)?;
    let nsup = read_usize(r, n as u64)?;
    let mut first_col = Vec::with_capacity(nsup + 1);
    let mut all_rows: Vec<Vec<usize>> = Vec::with_capacity(nsup);
    let mut blocks: Vec<DenseMatrix> = Vec::with_capacity(nsup);
    let mut expect_start = 0usize;
    for s in 0..nsup {
        let start = read_usize(r, n as u64)?;
        let end = read_usize(r, n as u64)?;
        if start != expect_start || end <= start || end > n {
            return Err(MatrixError::Io(format!(
                "corrupt factor file: supernode {s} columns {start}..{end}"
            )));
        }
        expect_start = end;
        first_col.push(start);
        let nrows = read_usize(r, n as u64)?;
        let t = end - start;
        if nrows < t {
            return Err(MatrixError::Io(format!(
                "corrupt factor file: supernode {s} height {nrows} < width {t}"
            )));
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            rows.push(read_usize(r, n as u64 - 1)?);
        }
        if rows[..t] != (start..end).collect::<Vec<_>>()[..]
            || rows.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(MatrixError::Io(format!(
                "corrupt factor file: supernode {s} row pattern invalid"
            )));
        }
        let data = read_f64_vec(r, nrows * t)?;
        blocks.push(DenseMatrix::from_column_major(nrows, t, data)?);
        all_rows.push(rows);
    }
    if expect_start != n {
        return Err(MatrixError::Io(
            "corrupt factor file: columns do not tile 0..n".to_string(),
        ));
    }
    first_col.push(n);
    // rebuild derived arrays
    let mut snode_of_col = vec![0usize; n];
    for s in 0..nsup {
        for c in first_col[s]..first_col[s + 1] {
            snode_of_col[c] = s;
        }
    }
    let mut parent = vec![NONE; nsup];
    for s in 0..nsup {
        let t = first_col[s + 1] - first_col[s];
        if let Some(&below0) = all_rows[s].get(t) {
            parent[s] = snode_of_col[below0];
        }
    }
    let part = SupernodePartition::from_raw(first_col, snode_of_col, all_rows, parent);
    Ok(SupernodalFactor::new(part, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn sample_factor() -> SupernodalFactor {
        let a = gen::grid2d_laplacian(9, 8);
        let g = Graph::from_sym_lower(&a);
        let p = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = analyze_with_perm(&a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    #[test]
    fn round_trip_preserves_factor() {
        let f = sample_factor();
        let mut buf = Vec::new();
        save_factor(&mut buf, &f).unwrap();
        let g = load_factor(&mut &buf[..]).unwrap();
        assert_eq!(g.n(), f.n());
        assert_eq!(g.nsup(), f.nsup());
        for s in 0..f.nsup() {
            assert_eq!(g.partition().rows(s), f.partition().rows(s));
            assert_eq!(g.block(s), f.block(s));
            assert_eq!(g.partition().parent(s), f.partition().parent(s));
        }
    }

    #[test]
    fn loaded_factor_solves() {
        let f = sample_factor();
        let mut buf = Vec::new();
        save_factor(&mut buf, &f).unwrap();
        let g = load_factor(&mut &buf[..]).unwrap();
        let x = gen::random_rhs(f.n(), 2, 1);
        let b = f.llt_times(&x);
        let b2 = g.llt_times(&x);
        assert!(b.max_abs_diff(&b2).unwrap() == 0.0);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTAFILE".to_vec();
        assert!(load_factor(&mut &buf[..]).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let f = sample_factor();
        let mut buf = Vec::new();
        save_factor(&mut buf, &f).unwrap();
        for cut in [4usize, 12, 40, buf.len() / 2, buf.len() - 3] {
            assert!(
                load_factor(&mut &buf[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_corrupted_structure() {
        let f = sample_factor();
        let mut buf = Vec::new();
        save_factor(&mut buf, &f).unwrap();
        // corrupt the supernode count field (bytes 16..24)
        let mut bad = buf.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(load_factor(&mut &bad[..]).is_err());
        // corrupt a column bound
        let mut bad = buf.clone();
        bad[24..32].copy_from_slice(&999_999u64.to_le_bytes());
        assert!(load_factor(&mut &bad[..]).is_err());
    }
}
