//! Supernodal storage of the Cholesky factor.

use crate::fscalar::FactorBlocks;
use trisolv_matrix::{CscMatrix, DenseMatrix, MatrixError, TripletMatrix};
use trisolv_symbolic::SupernodePartition;

/// The Cholesky factor `L` stored supernode by supernode.
///
/// Each supernode `s` owns a dense `n_s × t_s` **trapezoidal block** in
/// column-major order: rows are the supernode's row pattern
/// (`partition.rows(s)`, global indices), columns are its `t_s` columns.
/// The top `t_s × t_s` part is lower-triangular (its strict upper triangle
/// is stored as zeros), the rest is the dense rectangular sub-diagonal
/// part. This is exactly the unit the paper's pipelined kernels operate on.
#[derive(Debug, Clone)]
pub struct SupernodalFactor {
    part: SupernodePartition,
    blocks: Vec<DenseMatrix>,
    /// Diagonal boosts applied by dynamic regularization, as
    /// `(global column, added perturbation)` in the permuted ordering;
    /// empty for a plain factorization.
    perturbations: Vec<(usize, f64)>,
}

impl SupernodalFactor {
    /// Assemble from a partition and per-supernode blocks (validated for
    /// shape).
    pub fn new(part: SupernodePartition, blocks: Vec<DenseMatrix>) -> Self {
        assert_eq!(blocks.len(), part.nsup());
        for s in 0..part.nsup() {
            assert_eq!(
                blocks[s].shape(),
                (part.height(s), part.width(s)),
                "block {s} shape mismatch"
            );
        }
        SupernodalFactor {
            part,
            blocks,
            perturbations: Vec::new(),
        }
    }

    /// Record the diagonal perturbations a regularized factorization
    /// applied (see `seqchol::factor_supernodal_opts`).
    pub fn set_perturbations(&mut self, perturbations: Vec<(usize, f64)>) {
        self.perturbations = perturbations;
    }

    /// Diagonal perturbations applied by dynamic regularization:
    /// `(global column, boost added to the pivot)` pairs in the permuted
    /// ordering, empty for a plain factorization. This factor represents
    /// `A + Σ δ_j·e_j·e_jᵀ`, not `A` — iterative refinement against the
    /// *original* matrix compensates for the difference.
    pub fn perturbations(&self) -> &[(usize, f64)] {
        &self.perturbations
    }

    /// The supernode partition.
    pub fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.part.n()
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.part.nsup()
    }

    /// The dense trapezoid of supernode `s`.
    pub fn block(&self, s: usize) -> &DenseMatrix {
        &self.blocks[s]
    }

    /// Mutable access to the trapezoid of supernode `s`.
    pub fn block_mut(&mut self, s: usize) -> &mut DenseMatrix {
        &mut self.blocks[s]
    }

    /// Reconstruct `L` as a CSC matrix (for verification and export).
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.n();
        let mut t = TripletMatrix::new(n, n);
        for s in 0..self.nsup() {
            let rows = self.part.rows(s);
            let cols = self.part.cols(s);
            let blk = &self.blocks[s];
            for (lj, j) in cols.enumerate() {
                for (li, &i) in rows.iter().enumerate().skip(lj) {
                    let v = blk[(li, lj)];
                    if v != 0.0 {
                        t.push(i, j, v).unwrap();
                    }
                }
            }
        }
        t.to_csc()
    }

    /// Compute `L·X` for a dense block (reference helper for tests).
    pub fn l_times(&self, x: &DenseMatrix) -> DenseMatrix {
        let l = self.to_csc();
        l.spmv(x).expect("dimension checked by caller")
    }

    /// Compute `L·Lᵀ·X` (reference helper: verifies `L` against `A` via
    /// matrix-vector products without forming `L·Lᵀ`).
    pub fn llt_times(&self, x: &DenseMatrix) -> DenseMatrix {
        let l = self.to_csc();
        let y = l.transpose().spmv(x).expect("shape ok");
        l.spmv(&y).expect("shape ok")
    }

    /// Nonzeros stored (trapezoid entries at or below the diagonal).
    pub fn nnz(&self) -> usize {
        self.part.nnz()
    }

    /// Total stored values across all trapezoids (Σ height·width — larger
    /// than [`Self::nnz`] because the strict upper triangle of each top
    /// block is stored as explicit zeros).
    pub fn value_count(&self) -> usize {
        self.blocks.iter().map(|b| b.as_slice().len()).sum()
    }

    /// Demote the factor to `f32` storage (round-to-nearest per entry).
    ///
    /// The partition is shared structure and the recorded perturbations are
    /// kept verbatim in `f64` — they describe what the *factorization* did,
    /// not how the result is stored. This is the cache-insert step of the
    /// mixed-precision lane: factorization always runs in `f64`, only the
    /// resident representation narrows.
    pub fn demote(&self) -> SupernodalFactorF32 {
        let blocks = self
            .blocks
            .iter()
            .map(|b| b.as_slice().iter().map(|&v| v as f32).collect())
            .collect();
        SupernodalFactorF32 {
            part: self.part.clone(),
            blocks,
            perturbations: self.perturbations.clone(),
        }
    }
}

impl FactorBlocks for SupernodalFactor {
    type S = f64;

    fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    fn values(&self, s: usize) -> &[f64] {
        self.blocks[s].as_slice()
    }
}

/// An `f32`-storage twin of [`SupernodalFactor`]: same partition, same
/// column-major trapezoids, half the bytes per value. Produced by
/// [`SupernodalFactor::demote`] — never factored directly — and consumed
/// by the generic solve kernels through [`FactorBlocks`].
#[derive(Debug, Clone)]
pub struct SupernodalFactorF32 {
    part: SupernodePartition,
    blocks: Vec<Vec<f32>>,
    /// Perturbations inherited from the f64 factorization (see
    /// [`SupernodalFactor::perturbations`]); kept in `f64`.
    perturbations: Vec<(usize, f64)>,
}

impl SupernodalFactorF32 {
    /// Reassemble from a partition plus the flat persisted values — the
    /// per-supernode trapezoids concatenated in supernode order, exactly
    /// the layout [`Self::values`] exposes. Fails with `InvalidStructure`
    /// on a value-count mismatch (stale or foreign snapshot).
    pub fn from_flat_values(
        part: SupernodePartition,
        values: &[f32],
        perturbations: Vec<(usize, f64)>,
    ) -> Result<Self, MatrixError> {
        let total: usize = (0..part.nsup())
            .map(|s| part.height(s) * part.width(s))
            .sum();
        if total != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "persisted f32 factor has {} values but the partition holds {}",
                values.len(),
                total
            )));
        }
        let mut off = 0usize;
        let mut blocks = Vec::with_capacity(part.nsup());
        for s in 0..part.nsup() {
            let len = part.height(s) * part.width(s);
            blocks.push(values[off..off + len].to_vec());
            off += len;
        }
        Ok(SupernodalFactorF32 {
            part,
            blocks,
            perturbations,
        })
    }

    /// The supernode partition.
    pub fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.part.n()
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.part.nsup()
    }

    /// The flat column-major values of supernode `s`'s trapezoid.
    pub fn values(&self, s: usize) -> &[f32] {
        &self.blocks[s]
    }

    /// Perturbations inherited from the originating f64 factorization.
    pub fn perturbations(&self) -> &[(usize, f64)] {
        &self.perturbations
    }

    /// Nonzeros stored (trapezoid entries at or below the diagonal).
    pub fn nnz(&self) -> usize {
        self.part.nnz()
    }

    /// Total stored values across all trapezoids (Σ height·width).
    pub fn value_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Mutable access to supernode `s`'s values. Exists for integrity
    /// drills (bit flips simulating silent corruption); normal solves
    /// never mutate the factor.
    pub fn values_mut(&mut self, s: usize) -> &mut [f32] {
        &mut self.blocks[s]
    }
}

impl FactorBlocks for SupernodalFactorF32 {
    type S = f32;

    fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    fn values(&self, s: usize) -> &[f32] {
        &self.blocks[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::EliminationTree;
    use trisolv_matrix::gen;
    use trisolv_symbolic::{SupernodePartition, SymbolicFactor};

    fn small_partition() -> SupernodePartition {
        let a = gen::grid2d_laplacian(3, 3);
        let t = EliminationTree::from_sym_lower(&a);
        let post = t.postorder();
        let pa = a.permute_sym_lower(post.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        let sym = SymbolicFactor::analyze(&pa, &t);
        SupernodePartition::from_symbolic(&sym)
    }

    fn identity_factor(part: SupernodePartition) -> SupernodalFactor {
        let blocks: Vec<DenseMatrix> = (0..part.nsup())
            .map(|s| {
                let mut b = DenseMatrix::zeros(part.height(s), part.width(s));
                for k in 0..part.width(s) {
                    b[(k, k)] = 1.0;
                }
                b
            })
            .collect();
        SupernodalFactor::new(part, blocks)
    }

    #[test]
    fn identity_blocks_give_identity_l() {
        let part = small_partition();
        let n = part.n();
        let f = identity_factor(part);
        let l = f.to_csc();
        assert_eq!(l.nnz(), n);
        for j in 0..n {
            assert_eq!(l.get(j, j), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_block_shape_rejected() {
        let part = small_partition();
        let blocks: Vec<DenseMatrix> = (0..part.nsup()).map(|_| DenseMatrix::zeros(1, 1)).collect();
        SupernodalFactor::new(part, blocks);
    }

    #[test]
    fn demote_truncates_values_and_keeps_structure() {
        let part = small_partition();
        let mut f = identity_factor(part);
        // plant a value that is not f32-representable
        let fine = 1.0 + f64::EPSILON;
        f.block_mut(0)[(0, 0)] = fine;
        f.set_perturbations(vec![(3, 0.25)]);
        let d = f.demote();
        assert_eq!(d.nsup(), f.nsup());
        assert_eq!(d.n(), f.n());
        assert_eq!(d.value_count(), f.value_count());
        assert_eq!(d.values(0)[0], 1.0f32, "round-to-nearest demotion");
        assert_eq!(d.perturbations(), f.perturbations(), "perturbations kept");
        // flat round-trip reassembles bit-identically
        let mut flat = Vec::new();
        for s in 0..d.nsup() {
            flat.extend_from_slice(d.values(s));
        }
        let re = SupernodalFactorF32::from_flat_values(
            d.partition().clone(),
            &flat,
            d.perturbations().to_vec(),
        )
        .unwrap();
        for s in 0..d.nsup() {
            assert_eq!(re.values(s), d.values(s));
        }
        // wrong value count is a structured error, not a panic
        let err = SupernodalFactorF32::from_flat_values(d.partition().clone(), &flat[1..], vec![]);
        assert!(matches!(err, Err(MatrixError::InvalidStructure(_))));
    }

    #[test]
    fn l_times_matches_csc() {
        let part = small_partition();
        let n = part.n();
        let f = identity_factor(part);
        let x = gen::random_rhs(n, 2, 1);
        let y = f.l_times(&x);
        assert!(y.max_abs_diff(&x).unwrap() < 1e-15);
    }
}
