//! Supernodal storage of the Cholesky factor.

use trisolv_matrix::{CscMatrix, DenseMatrix, TripletMatrix};
use trisolv_symbolic::SupernodePartition;

/// The Cholesky factor `L` stored supernode by supernode.
///
/// Each supernode `s` owns a dense `n_s × t_s` **trapezoidal block** in
/// column-major order: rows are the supernode's row pattern
/// (`partition.rows(s)`, global indices), columns are its `t_s` columns.
/// The top `t_s × t_s` part is lower-triangular (its strict upper triangle
/// is stored as zeros), the rest is the dense rectangular sub-diagonal
/// part. This is exactly the unit the paper's pipelined kernels operate on.
#[derive(Debug, Clone)]
pub struct SupernodalFactor {
    part: SupernodePartition,
    blocks: Vec<DenseMatrix>,
    /// Diagonal boosts applied by dynamic regularization, as
    /// `(global column, added perturbation)` in the permuted ordering;
    /// empty for a plain factorization.
    perturbations: Vec<(usize, f64)>,
}

impl SupernodalFactor {
    /// Assemble from a partition and per-supernode blocks (validated for
    /// shape).
    pub fn new(part: SupernodePartition, blocks: Vec<DenseMatrix>) -> Self {
        assert_eq!(blocks.len(), part.nsup());
        for s in 0..part.nsup() {
            assert_eq!(
                blocks[s].shape(),
                (part.height(s), part.width(s)),
                "block {s} shape mismatch"
            );
        }
        SupernodalFactor {
            part,
            blocks,
            perturbations: Vec::new(),
        }
    }

    /// Record the diagonal perturbations a regularized factorization
    /// applied (see `seqchol::factor_supernodal_opts`).
    pub fn set_perturbations(&mut self, perturbations: Vec<(usize, f64)>) {
        self.perturbations = perturbations;
    }

    /// Diagonal perturbations applied by dynamic regularization:
    /// `(global column, boost added to the pivot)` pairs in the permuted
    /// ordering, empty for a plain factorization. This factor represents
    /// `A + Σ δ_j·e_j·e_jᵀ`, not `A` — iterative refinement against the
    /// *original* matrix compensates for the difference.
    pub fn perturbations(&self) -> &[(usize, f64)] {
        &self.perturbations
    }

    /// The supernode partition.
    pub fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.part.n()
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.part.nsup()
    }

    /// The dense trapezoid of supernode `s`.
    pub fn block(&self, s: usize) -> &DenseMatrix {
        &self.blocks[s]
    }

    /// Mutable access to the trapezoid of supernode `s`.
    pub fn block_mut(&mut self, s: usize) -> &mut DenseMatrix {
        &mut self.blocks[s]
    }

    /// Reconstruct `L` as a CSC matrix (for verification and export).
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.n();
        let mut t = TripletMatrix::new(n, n);
        for s in 0..self.nsup() {
            let rows = self.part.rows(s);
            let cols = self.part.cols(s);
            let blk = &self.blocks[s];
            for (lj, j) in cols.enumerate() {
                for (li, &i) in rows.iter().enumerate().skip(lj) {
                    let v = blk[(li, lj)];
                    if v != 0.0 {
                        t.push(i, j, v).unwrap();
                    }
                }
            }
        }
        t.to_csc()
    }

    /// Compute `L·X` for a dense block (reference helper for tests).
    pub fn l_times(&self, x: &DenseMatrix) -> DenseMatrix {
        let l = self.to_csc();
        l.spmv(x).expect("dimension checked by caller")
    }

    /// Compute `L·Lᵀ·X` (reference helper: verifies `L` against `A` via
    /// matrix-vector products without forming `L·Lᵀ`).
    pub fn llt_times(&self, x: &DenseMatrix) -> DenseMatrix {
        let l = self.to_csc();
        let y = l.transpose().spmv(x).expect("shape ok");
        l.spmv(&y).expect("shape ok")
    }

    /// Nonzeros stored (trapezoid entries at or below the diagonal).
    pub fn nnz(&self) -> usize {
        self.part.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::EliminationTree;
    use trisolv_matrix::gen;
    use trisolv_symbolic::{SupernodePartition, SymbolicFactor};

    fn small_partition() -> SupernodePartition {
        let a = gen::grid2d_laplacian(3, 3);
        let t = EliminationTree::from_sym_lower(&a);
        let post = t.postorder();
        let pa = a.permute_sym_lower(post.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        let sym = SymbolicFactor::analyze(&pa, &t);
        SupernodePartition::from_symbolic(&sym)
    }

    fn identity_factor(part: SupernodePartition) -> SupernodalFactor {
        let blocks: Vec<DenseMatrix> = (0..part.nsup())
            .map(|s| {
                let mut b = DenseMatrix::zeros(part.height(s), part.width(s));
                for k in 0..part.width(s) {
                    b[(k, k)] = 1.0;
                }
                b
            })
            .collect();
        SupernodalFactor::new(part, blocks)
    }

    #[test]
    fn identity_blocks_give_identity_l() {
        let part = small_partition();
        let n = part.n();
        let f = identity_factor(part);
        let l = f.to_csc();
        assert_eq!(l.nnz(), n);
        for j in 0..n {
            assert_eq!(l.get(j, j), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_block_shape_rejected() {
        let part = small_partition();
        let blocks: Vec<DenseMatrix> = (0..part.nsup()).map(|_| DenseMatrix::zeros(1, 1)).collect();
        SupernodalFactor::new(part, blocks);
    }

    #[test]
    fn l_times_matches_csc() {
        let part = small_partition();
        let n = part.n();
        let f = identity_factor(part);
        let x = gen::random_rhs(n, 2, 1);
        let y = f.l_times(&x);
        assert!(y.max_abs_diff(&x).unwrap() < 1e-15);
    }
}
