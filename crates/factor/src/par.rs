//! Simulated-parallel multifrontal Cholesky factorization.
//!
//! This is the workspace's stand-in for the highly scalable factorization
//! of Gupta, Karypis & Kumar (reference `[4]` of the paper): subtrees below
//! the top `log p` levels are factored sequentially on their owner
//! processors; each parallel supernode's frontal matrix is distributed
//! **2-D block-cyclically** over a near-square grid of the supernode's
//! group and factored with a fan-out right-looking algorithm (diagonal
//! `potrf` → column broadcast → panel `trsm` → row broadcast + column
//! exchange → local rank-`b` update). Moving update matrices between tree
//! levels is an all-to-all personalized exchange within the parent group.
//!
//! It supplies (a) the factorization-time columns of the paper's main
//! table, and (b) the 2-D distributed factor whose conversion to the 1-D
//! solver layout is the redistribution experiment of §4.

use crate::mapping::SubcubeMapping;
use crate::{blas, seqchol, SupernodalFactor};
use std::collections::HashMap;
use trisolv_machine::{coll, BlockCyclic1d, BlockCyclic2d, Group, Machine, MachineParams, Proc};
use trisolv_matrix::{CscMatrix, DenseMatrix, MatrixError};
use trisolv_symbolic::SupernodePartition;

/// Configuration of a simulated parallel factorization.
#[derive(Debug, Clone, Copy)]
pub struct FactorConfig {
    /// Number of virtual processors.
    pub nprocs: usize,
    /// Tile size of the 2-D block-cyclic frontal distribution.
    pub block: usize,
    /// Machine cost model.
    pub params: MachineParams,
}

/// Timing and accounting of a parallel factorization.
#[derive(Debug, Clone)]
pub struct FactorReport {
    /// Virtual parallel runtime in seconds.
    pub time: f64,
    /// Algorithmic flop count of the factorization.
    pub flops: u64,
    /// Words communicated.
    pub words: u64,
    /// Messages sent.
    pub msgs: u64,
}

impl FactorReport {
    /// MFLOPS achieved (algorithmic flops / virtual time).
    pub fn mflops(&self) -> f64 {
        self.flops as f64 / self.time / 1e6
    }
}

/// Entries of a distributed matrix piece: `(row, col, value)` in the
/// *global* index space.
type Entries = Vec<(usize, usize, f64)>;

/// Per-processor output: solved L pieces per supernode.
struct ProcOut {
    seq_blocks: Vec<(usize, DenseMatrix)>,
    par_pieces: Vec<(usize, Entries)>,
}

/// Factor `pa` (lower triangle, already permuted/postordered) on the
/// simulated machine. Returns the assembled factor — verified in tests to
/// match [`seqchol::factor_supernodal`] — plus the timing report.
pub fn factor_parallel(
    pa: &CscMatrix,
    part: &SupernodePartition,
    mapping: &SubcubeMapping,
    config: &FactorConfig,
) -> Result<(SupernodalFactor, FactorReport), MatrixError> {
    assert_eq!(mapping.nprocs(), config.nprocs);
    let children = part.children();
    let machine = Machine::new(config.nprocs, config.params);

    // A numerical failure on one virtual processor is handled the way real
    // distributed codes handle it (MPI_Abort): the failing processor
    // records the error and panics; the panic cascades through the
    // machine, is caught here, and is converted back into an `Err`.
    let error_slot: std::sync::Mutex<Option<MatrixError>> = std::sync::Mutex::new(None);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        machine.run(|proc| {
            let me = proc.rank();
            let abort = |e: MatrixError| -> ! {
                *error_slot.lock().expect("error slot") = Some(e);
                std::panic::panic_any("simulated machine abort: numerical failure");
            };
            let mut out = ProcOut {
                seq_blocks: Vec::new(),
                par_pieces: Vec::new(),
            };
            // updates of my sequential subtree roots, as dense matrices
            let mut seq_updates: HashMap<usize, DenseMatrix> = HashMap::new();
            // my local pieces of parallel supernodes' update matrices (global
            // index space)
            let mut par_updates: HashMap<usize, Entries> = HashMap::new();

            // ---- sequential subtrees ----
            for &s in mapping.seq_snodes(me) {
                let child_updates: Vec<(usize, DenseMatrix)> = children[s]
                    .iter()
                    .map(|&c| (c, seq_updates.remove(&c).expect("child done")))
                    .collect();
                match seqchol::process_frontal(pa, part, s, &child_updates) {
                    Ok((blk, update)) => {
                        let (ns, t) = (part.height(s), part.width(s));
                        proc.compute_flops(
                            (blas::potrf_flops(t)
                                + blas::trsm_flops(t, ns - t)
                                + blas::gemm_flops(ns - t, ns - t, t) / 2)
                                as f64,
                            trisolv_machine::KernelClass::Matrix,
                        );
                        seq_updates.insert(s, update);
                        out.seq_blocks.push((s, blk));
                    }
                    Err(e) => abort(e),
                }
            }

            // ---- parallel supernodes along my path ----
            for &s in &mapping.parallel_path(me) {
                if let Err(e) = parallel_frontal(
                    proc,
                    pa,
                    part,
                    mapping,
                    s,
                    &children[s],
                    config.block,
                    &mut seq_updates,
                    &mut par_updates,
                    &mut out,
                ) {
                    abort(e);
                }
            }
            out
        })
    }));
    let run = match run {
        Ok(r) => r,
        Err(payload) => {
            let e = error_slot
                .lock()
                .expect("error slot")
                .take()
                .unwrap_or_else(|| {
                    // not a recorded numerical failure: re-raise
                    std::panic::resume_unwind(payload)
                });
            return Err(e);
        }
    };

    // assemble
    let mut blocks: Vec<Option<DenseMatrix>> = (0..part.nsup()).map(|_| None).collect();
    for po in &run.results {
        for (s, blk) in &po.seq_blocks {
            blocks[*s] = Some(blk.clone());
        }
    }
    // parallel pieces: scatter into blocks
    let mut rowpos: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for po in &run.results {
        for (s, entries) in &po.par_pieces {
            let pos = rowpos.entry(*s).or_insert_with(|| {
                part.rows(*s)
                    .iter()
                    .enumerate()
                    .map(|(li, &gi)| (gi, li))
                    .collect()
            });
            let blk = blocks[*s]
                .get_or_insert_with(|| DenseMatrix::zeros(part.height(*s), part.width(*s)));
            let first = part.cols(*s).start;
            for &(gi, gj, v) in entries {
                blk[(pos[&gi], gj - first)] = v;
            }
        }
    }
    let blocks: Vec<DenseMatrix> = blocks
        .into_iter()
        .enumerate()
        .map(|(s, b)| b.unwrap_or_else(|| panic!("supernode {s} unassembled")))
        .collect();
    let factor = SupernodalFactor::new(part.clone(), blocks);
    let report = FactorReport {
        time: run.parallel_time(),
        flops: part.factor_flops(),
        words: run.total_words(),
        msgs: run.total_msgs(),
    };
    Ok((factor, report))
}

/// Process one parallel supernode's frontal matrix on its group's grid.
#[allow(clippy::too_many_arguments)]
fn parallel_frontal(
    proc: &mut Proc,
    pa: &CscMatrix,
    part: &SupernodePartition,
    mapping: &SubcubeMapping,
    s: usize,
    snode_children: &[usize],
    block: usize,
    seq_updates: &mut HashMap<usize, DenseMatrix>,
    par_updates: &mut HashMap<usize, Entries>,
    out: &mut ProcOut,
) -> Result<(), MatrixError> {
    let group = mapping.group(s).clone();
    let q = group.size();
    let gme = group.group_rank(proc.rank()).expect("on path");
    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let first_col = part.cols(s).start;
    let (pr, pc) = BlockCyclic2d::square_grid(q);
    let (my_r, my_c) = (gme / pc, gme % pc);
    let row_layout = BlockCyclic1d::new(ns, block, pr);
    let col_layout = BlockCyclic1d::new(ns, block, pc);
    let tag0 = s as u64 * 1_000_003;

    // global row -> frontal position
    let gpos: HashMap<usize, usize> = rows.iter().enumerate().map(|(li, &gi)| (gi, li)).collect();
    let my_rows: Vec<usize> = (0..ns).filter(|&i| row_layout.owner(i) == my_r).collect();
    let my_cols: Vec<usize> = (0..ns).filter(|&j| col_layout.owner(j) == my_c).collect();
    let rloc = |pos: usize| my_rows.binary_search(&pos).expect("my row");
    let cloc = |pos: usize| my_cols.binary_search(&pos).expect("my col");
    let mut f = DenseMatrix::zeros(my_rows.len(), my_cols.len());

    // assemble A entries I own
    for (lj, j) in part.cols(s).enumerate() {
        if col_layout.owner(lj) != my_c {
            continue;
        }
        let jc = cloc(lj);
        for (k, &gi) in pa.col_rows(j).iter().enumerate() {
            let pi = gpos[&gi];
            if row_layout.owner(pi) == my_r {
                f[(rloc(pi), jc)] += pa.col_values(j)[k];
            }
        }
    }

    // ---- extend-add: route child update entries to their 2-D owners ----
    let mut per_dest: Vec<Vec<f64>> = vec![Vec::new(); q];
    let route = |entries: &Entries, per_dest: &mut Vec<Vec<f64>>| {
        for &(gi, gj, v) in entries {
            let (pi, pj) = (gpos[&gi], gpos[&gj]);
            let dest = row_layout.owner(pi) * pc + col_layout.owner(pj);
            per_dest[dest].push(pi as f64);
            per_dest[dest].push(pj as f64);
            per_dest[dest].push(v);
        }
    };
    for &c in snode_children {
        if let Some(u) = seq_updates.remove(&c) {
            // my whole sequential subtree root update
            let crows = part.below_rows(c);
            let mut entries = Entries::new();
            for (lj, &gj) in crows.iter().enumerate() {
                for (li, &gi) in crows.iter().enumerate().skip(lj) {
                    let v = u[(li, lj)];
                    if v != 0.0 {
                        entries.push((gi, gj, v));
                    }
                }
            }
            route(&entries, &mut per_dest);
        }
        if let Some(entries) = par_updates.remove(&c) {
            route(&entries, &mut per_dest);
        }
    }
    // group-uniform hint: total child-update volume (3 words per entry)
    // split across the group
    let hint = {
        let total: usize = snode_children
            .iter()
            .map(|&c| {
                let m = part.below_rows(c).len();
                m * (m + 1) / 2
            })
            .sum();
        3 * total / q + 1
    };
    let incoming = coll::all_to_all_personalized(proc, &group, tag0, per_dest, hint);
    for chunk in &incoming {
        for e in chunk.chunks_exact(3) {
            let (pi, pj, v) = (e[0] as usize, e[1] as usize, e[2]);
            f[(rloc(pi), cloc(pj))] += v;
        }
    }

    // ---- fan-out right-looking panel factorization of the t columns ----
    let nb_panels = t.div_ceil(block);
    let row_group = Group::from_ranks((0..pc).map(|c| group.world_rank(my_r * pc + c)).collect());
    let col_group = Group::from_ranks((0..pr).map(|r| group.world_rank(r * pc + my_c)).collect());
    for k in 0..nb_panels {
        let p0 = k * block;
        let p1 = (p0 + block).min(t);
        let len = p1 - p0;
        let rk = row_layout.owner(p0);
        let ck = col_layout.owner(p0);
        let ktag = tag0 + 5 * (k as u64 + 1);

        // 1. factor the diagonal tile at (rk, ck); broadcast down column ck
        let mut tile = DenseMatrix::zeros(len, len);
        if my_c == ck {
            if my_r == rk {
                let (r0, c0) = (rloc(p0), cloc(p0));
                for j in 0..len {
                    for i in j..len {
                        tile[(i, j)] = f[(r0 + i, c0 + j)];
                    }
                }
                blas::potrf_lower(tile.as_mut_slice(), len, len).map_err(|e| match e {
                    MatrixError::NotPositiveDefinite { column, pivot } => {
                        MatrixError::NotPositiveDefinite {
                            column: first_col + p0 + column,
                            pivot,
                        }
                    }
                    other => other,
                })?;
                proc.compute_flops(
                    blas::potrf_flops(len) as f64,
                    trisolv_machine::KernelClass::Matrix,
                );
                for j in 0..len {
                    for i in j..len {
                        f[(r0 + i, c0 + j)] = tile[(i, j)];
                    }
                }
            }
            let root = col_group
                .group_rank(group.world_rank(rk * pc + ck))
                .expect("diag owner in column group");
            let data = coll::bcast(proc, &col_group, ktag, root, tile.as_slice().to_vec());
            if my_r != rk {
                tile = DenseMatrix::from_column_major(len, len, data).expect("tile shape");
            }
            // 2. panel trsm on my rows below the tile
            let tail = my_rows.partition_point(|&p| p < p1);
            let m = my_rows.len() - tail;
            if m > 0 {
                let c0 = cloc(p0);
                let mut panel = DenseMatrix::zeros(m, len);
                for j in 0..len {
                    for i in 0..m {
                        panel[(i, j)] = f[(tail + i, c0 + j)];
                    }
                }
                blas::trsm_right_lower_trans(tile.as_slice(), len, panel.as_mut_slice(), m, m, len);
                proc.compute_flops(
                    blas::trsm_flops(len, m) as f64,
                    trisolv_machine::KernelClass::Matrix,
                );
                for j in 0..len {
                    for i in 0..m {
                        f[(tail + i, c0 + j)] = panel[(i, j)];
                    }
                }
            }
        }
        // 3. row broadcast: grid column ck procs send their panel pieces
        // along their grid rows → every proc gets W for its row set
        let tail = my_rows.partition_point(|&p| p < p1);
        let w_rows: Vec<usize> = my_rows[tail..].to_vec();
        let payload = if my_c == ck {
            let c0 = cloc(p0);
            let mut buf = Vec::with_capacity(w_rows.len() * (1 + len));
            for (i, &pos) in w_rows.iter().enumerate() {
                buf.push(pos as f64);
                for j in 0..len {
                    buf.push(f[(tail + i, c0 + j)]);
                }
            }
            buf
        } else {
            Vec::new()
        };
        let root = row_group
            .group_rank(group.world_rank(my_r * pc + ck))
            .expect("panel owner in row group");
        let wdata = coll::bcast(proc, &row_group, ktag + 1, root, payload);
        // W for my rows: pos -> values
        let mut w_mine = DenseMatrix::zeros(w_rows.len(), len);
        {
            let stride = 1 + len;
            for rec in wdata.chunks_exact(stride) {
                let pos = rec[0] as usize;
                let i = w_rows.binary_search(&pos).expect("my row");
                for j in 0..len {
                    w_mine[(i, j)] = rec[1 + j];
                }
            }
        }
        // 4. column exchange: contribute the panel rows whose position is
        // one of MY GRID COLUMN's positions; all-gather within the column
        let contrib: Vec<f64> = {
            let mut buf = Vec::new();
            for (i, &pos) in w_rows.iter().enumerate() {
                if col_layout.owner(pos) == my_c {
                    buf.push(pos as f64);
                    for j in 0..len {
                        buf.push(w_mine[(i, j)]);
                    }
                }
            }
            buf
        };
        // group-uniform hint: my grid column's share of the panel rows
        let hint = (ns - p1) * (1 + len) / (pr * pc) + 1;
        let gathered = coll::allgather(proc, &col_group, ktag + 2, contrib, hint);
        let ctail = my_cols.partition_point(|&p| p < p1);
        let w_cols: Vec<usize> = my_cols[ctail..].to_vec();
        let mut w_colvals = DenseMatrix::zeros(w_cols.len(), len);
        for chunk in &gathered {
            let stride = 1 + len;
            for rec in chunk.chunks_exact(stride) {
                let pos = rec[0] as usize;
                if let Ok(j) = w_cols.binary_search(&pos) {
                    for kk in 0..len {
                        w_colvals[(j, kk)] = rec[1 + kk];
                    }
                }
            }
        }
        // 5. local update: F[i][j] -= Σ W_row[i]·W_col[j] for pos_i ≥ pos_j ≥ p1
        let mut pairs = 0usize;
        for (j, &pos_j) in w_cols.iter().enumerate() {
            let jc = ctail + j;
            let istart = w_rows.partition_point(|&p| p < pos_j);
            for i in istart..w_rows.len() {
                let ir = tail + i;
                let mut sum = 0.0;
                for kk in 0..len {
                    sum += w_mine[(i, kk)] * w_colvals[(j, kk)];
                }
                f[(ir, jc)] -= sum;
                pairs += 1;
            }
        }
        proc.compute_flops(
            (2 * pairs * len) as f64,
            trisolv_machine::KernelClass::Matrix,
        );
    }

    // ---- extract my L pieces and my update pieces ----
    let mut l_entries = Entries::new();
    let mut u_entries = Entries::new();
    for (jc, &pos_j) in my_cols.iter().enumerate() {
        for (ir, &pos_i) in my_rows.iter().enumerate() {
            if pos_i < pos_j {
                continue;
            }
            let v = f[(ir, jc)];
            if pos_j < t {
                if v != 0.0 || pos_i == pos_j {
                    l_entries.push((rows[pos_i], rows[pos_j], v));
                }
            } else if v != 0.0 {
                u_entries.push((rows[pos_i], rows[pos_j], v));
            }
        }
    }
    out.par_pieces.push((s, l_entries));
    par_updates.insert(s, u_entries);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn analyze(a: &CscMatrix, coords: Option<&[[f64; 3]]>) -> crate::seqchol::Analysis {
        let g = Graph::from_sym_lower(a);
        let p = match coords {
            Some(c) => nd::nested_dissection_coords(&g, c, nd::NdOptions::default()),
            None => nd::nested_dissection(&g, nd::NdOptions::default()),
        };
        analyze_with_perm(a, &p)
    }

    fn check_matches_sequential(
        a: &CscMatrix,
        coords: Option<&[[f64; 3]]>,
        nprocs: usize,
        block: usize,
    ) -> FactorReport {
        let an = analyze(a, coords);
        let expect = factor_supernodal(&an.pa, &an.part).unwrap();
        let mapping = SubcubeMapping::new(&an.part, nprocs);
        let config = FactorConfig {
            nprocs,
            block,
            params: MachineParams::t3d(),
        };
        let (got, report) = factor_parallel(&an.pa, &an.part, &mapping, &config).unwrap();
        for s in 0..an.part.nsup() {
            let diff = got.block(s).max_abs_diff(expect.block(s)).unwrap();
            assert!(diff < 1e-9, "p={nprocs} b={block} snode {s}: diff {diff}");
        }
        report
    }

    #[test]
    fn matches_sequential_on_grid() {
        let a = gen::grid2d_laplacian(11, 11);
        let coords = nd::grid2d_coords(11, 11, 1);
        for p in [1, 2, 4, 8] {
            check_matches_sequential(&a, Some(&coords), p, 2);
        }
    }

    #[test]
    fn matches_sequential_various_blocks() {
        let a = gen::grid2d_laplacian(9, 9);
        let coords = nd::grid2d_coords(9, 9, 1);
        for b in [1, 2, 3, 8] {
            check_matches_sequential(&a, Some(&coords), 4, b);
        }
    }

    #[test]
    fn matches_sequential_on_3d() {
        let a = gen::grid3d_laplacian(4, 4, 4);
        let coords = nd::grid3d_coords(4, 4, 4, 1);
        check_matches_sequential(&a, Some(&coords), 8, 2);
    }

    #[test]
    fn matches_sequential_on_random() {
        let a = gen::random_spd(90, 4, 21);
        for p in [2, 6] {
            check_matches_sequential(&a, None, p, 2);
        }
    }

    #[test]
    fn non_power_of_two_grid() {
        let a = gen::grid2d_laplacian(10, 10);
        let coords = nd::grid2d_coords(10, 10, 1);
        for p in [3, 5, 12] {
            check_matches_sequential(&a, Some(&coords), p, 2);
        }
    }

    #[test]
    fn indefinite_reported_from_parallel_region() {
        let a = gen::grid2d_laplacian(8, 8);
        let an = analyze(&a, None);
        // flip a diagonal value in the permuted matrix near the root
        let mut pa = an.pa.clone();
        let j = pa.ncols() - 1;
        let base = pa.colptr()[j];
        pa.values_mut()[base] = -1.0;
        let mapping = SubcubeMapping::new(&an.part, 4);
        let config = FactorConfig {
            nprocs: 4,
            block: 2,
            params: MachineParams::t3d(),
        };
        let res = factor_parallel(&pa, &an.part, &mapping, &config);
        assert!(matches!(res, Err(MatrixError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn factorization_time_decreases_with_procs() {
        let k = 31;
        let a = gen::grid2d_laplacian(k, k);
        let coords = nd::grid2d_coords(k, k, 1);
        let an = analyze(&a, Some(&coords));
        let mut prev = f64::INFINITY;
        for p in [1, 4, 16] {
            let mapping = SubcubeMapping::new(&an.part, p);
            let config = FactorConfig {
                nprocs: p,
                block: 4,
                params: MachineParams::t3d(),
            };
            let (_, report) = factor_parallel(&an.pa, &an.part, &mapping, &config).unwrap();
            assert!(
                report.time < prev,
                "p={p}: {} not below {prev}",
                report.time
            );
            prev = report.time;
        }
    }

    #[test]
    fn single_proc_factor_time_matches_flop_model() {
        let a = gen::grid2d_laplacian(9, 9);
        let an = analyze(&a, None);
        let mapping = SubcubeMapping::new(&an.part, 1);
        let config = FactorConfig {
            nprocs: 1,
            block: 4,
            params: MachineParams::t3d(),
        };
        let (_, report) = factor_parallel(&an.pa, &an.part, &mapping, &config).unwrap();
        assert_eq!(report.words, 0);
        assert!(report.time > 0.0);
        assert!(report.mflops() > 0.0);
    }
}
