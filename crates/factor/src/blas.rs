//! Dense BLAS-like kernels on column-major storage.
//!
//! All kernels take raw slices with explicit leading dimensions so they can
//! operate on sub-blocks of larger matrices without copies. Entry `(i, j)`
//! of an operand lives at `buf[i + j * ld]`. Kernels are written with the
//! inner loop running down a column (unit stride) per the perf-book
//! guidance; no allocation happens inside any kernel.
//!
//! The multi-column kernels (`gemm_update`, `gemm_tn_update`,
//! [`trsm_lower_left`], [`trsm_lower_trans_left`]) are register-blocked
//! four right-hand-side columns at a time: each element of the triangular
//! operand is loaded once and applied to four columns, so a blocked
//! multi-RHS solve streams `L` once per four columns instead of once per
//! column. This is the shared-memory analogue of the paper's multi-RHS
//! pipelining result — the factor traffic and per-element load cost
//! amortize over the RHS block. The single-column case (the paper's
//! headline nrhs=1 workload) takes dedicated gemv-shaped fast paths
//! instead of falling into the remainder loop: the matrix-vector updates
//! block four `A` columns (or result rows) per sweep and the triangular
//! solves run on bounds-check-free column slices. Each column's
//! floating-point operations run in exactly the order of the one-column
//! scalar kernel — blocking only interchanges loops, never reassociates a
//! sum — so results are bit-identical whatever the blocking or RHS count
//! (a property the solve service's batching layer relies on).

use crate::fscalar::FScalar;
use trisolv_matrix::MatrixError;

/// Split four consecutive columns `j..j+4` of a column-major buffer with
/// leading dimension `ld` into disjoint mutable column slices of length `m`.
#[inline]
#[allow(clippy::type_complexity)]
fn four_cols_mut<S: FScalar>(
    x: &mut [S],
    ld: usize,
    j: usize,
    m: usize,
) -> (&mut [S], &mut [S], &mut [S], &mut [S]) {
    let block = &mut x[j * ld..j * ld + 3 * ld + m];
    let (c0, rest) = block.split_at_mut(ld);
    let (c1, rest) = rest.split_at_mut(ld);
    let (c2, c3) = rest.split_at_mut(ld);
    (&mut c0[..m], &mut c1[..m], &mut c2[..m], c3)
}

/// `C ← C − A·B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// Generic over the storage scalar: the `f64` instantiation is the
/// factorization/solve workhorse, the `f32` one serves the demoted-factor
/// solve lane. Operation order is identical in both, so each lane is
/// bit-identical to its own one-column reference.
pub fn gemm_update<S: FScalar>(
    c: &mut [S],
    ldc: usize,
    a: &[S],
    lda: usize,
    b: &[S],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= m && ldb >= k);
    if n == 1 {
        // gemv fast path: block four A columns per sweep so each C element
        // is loaded/stored once per four updates. Each element still sees
        // its updates in ascending-l order as separate subtractions, so the
        // bits match the unblocked column kernel.
        let c_col = &mut c[..m];
        let mut l = 0;
        while l + 4 <= k {
            let b0 = b[l];
            let b1 = b[l + 1];
            let b2 = b[l + 2];
            let b3 = b[l + 3];
            if b0 != S::ZERO && b1 != S::ZERO && b2 != S::ZERO && b3 != S::ZERO {
                let (a0, rest) = a[l * lda..l * lda + 3 * lda + m].split_at(lda);
                let (a1, rest) = rest.split_at(lda);
                let (a2, a3) = rest.split_at(lda);
                for i in 0..m {
                    let mut ci = c_col[i];
                    ci -= a0[i] * b0;
                    ci -= a1[i] * b1;
                    ci -= a2[i] * b2;
                    ci -= a3[i] * b3;
                    c_col[i] = ci;
                }
            } else {
                // rare: preserve the per-l zero-skip of the scalar kernel
                for (ll, bl) in [(l, b0), (l + 1, b1), (l + 2, b2), (l + 3, b3)] {
                    if bl == S::ZERO {
                        continue;
                    }
                    let a_col = &a[ll * lda..ll * lda + m];
                    for i in 0..m {
                        c_col[i] -= a_col[i] * bl;
                    }
                }
            }
            l += 4;
        }
        while l < k {
            let bl = b[l];
            if bl != S::ZERO {
                let a_col = &a[l * lda..l * lda + m];
                for i in 0..m {
                    c_col[i] -= a_col[i] * bl;
                }
            }
            l += 1;
        }
        return;
    }
    let mut j = 0;
    // four-column register blocking: each A element is loaded once and
    // applied to four C columns
    while j + 4 <= n {
        let (c0, c1, c2, c3) = four_cols_mut(c, ldc, j, m);
        for l in 0..k {
            let a_col = &a[l * lda..l * lda + m];
            let b0 = b[l + j * ldb];
            let b1 = b[l + (j + 1) * ldb];
            let b2 = b[l + (j + 2) * ldb];
            let b3 = b[l + (j + 3) * ldb];
            if b0 != S::ZERO && b1 != S::ZERO && b2 != S::ZERO && b3 != S::ZERO {
                for i in 0..m {
                    let ai = a_col[i];
                    c0[i] -= ai * b0;
                    c1[i] -= ai * b1;
                    c2[i] -= ai * b2;
                    c3[i] -= ai * b3;
                }
            } else {
                // rare: keep the one-column kernel's zero-skip per column
                // so results stay bit-identical to unblocked execution
                for (cc, bb) in [
                    (&mut *c0, b0),
                    (&mut *c1, b1),
                    (&mut *c2, b2),
                    (&mut *c3, b3),
                ] {
                    if bb == S::ZERO {
                        continue;
                    }
                    for i in 0..m {
                        cc[i] -= a_col[i] * bb;
                    }
                }
            }
        }
        j += 4;
    }
    while j < n {
        for l in 0..k {
            let blj = b[l + j * ldb];
            if blj == S::ZERO {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] -= a_col[i] * blj;
            }
        }
        j += 1;
    }
}

/// `C ← C − A·Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
pub fn gemm_nt_update(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= m && ldb >= n);
    for j in 0..n {
        for l in 0..k {
            let bjl = b[j + l * ldb];
            if bjl == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] -= a_col[i] * bjl;
            }
        }
    }
}

/// `C ← C − Aᵀ·B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// This is the back-substitution rectangle apply: with `A = L21`
/// (`k = n_s − t` below-rows, `m = t` columns) and `B = x_below`, it
/// subtracts `L21ᵀ·x_below` from the top block in one blocked pass. Both
/// inner products run down columns of `A` and `B` (unit stride).
pub fn gemm_tn_update<S: FScalar>(
    c: &mut [S],
    ldc: usize,
    a: &[S],
    lda: usize,
    b: &[S],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= k && ldb >= k);
    if n == 1 {
        // gemv-transpose fast path: four result rows per sweep share one
        // streaming pass over the B column. Each inner product keeps its
        // own single accumulator running in ascending-l order, so every
        // result is bit-identical to the unblocked kernel's.
        let b_col = &b[..k];
        let mut i = 0;
        while i + 4 <= m {
            let (a0, rest) = a[i * lda..i * lda + 3 * lda + k].split_at(lda);
            let (a1, rest) = rest.split_at(lda);
            let (a2, a3) = rest.split_at(lda);
            let (mut s0, mut s1, mut s2, mut s3) = (S::ZERO, S::ZERO, S::ZERO, S::ZERO);
            for l in 0..k {
                let bl = b_col[l];
                s0 += a0[l] * bl;
                s1 += a1[l] * bl;
                s2 += a2[l] * bl;
                s3 += a3[l] * bl;
            }
            c[i] -= s0;
            c[i + 1] -= s1;
            c[i + 2] -= s2;
            c[i + 3] -= s3;
            i += 4;
        }
        while i < m {
            let a_col = &a[i * lda..i * lda + k];
            let mut sum = S::ZERO;
            for l in 0..k {
                sum += a_col[l] * b_col[l];
            }
            c[i] -= sum;
            i += 1;
        }
        return;
    }
    let mut j = 0;
    // four-column register blocking: each A column is streamed once for
    // four simultaneous inner products
    while j + 4 <= n {
        let b0 = &b[j * ldb..j * ldb + k];
        let b1 = &b[(j + 1) * ldb..(j + 1) * ldb + k];
        let b2 = &b[(j + 2) * ldb..(j + 2) * ldb + k];
        let b3 = &b[(j + 3) * ldb..(j + 3) * ldb + k];
        for i in 0..m {
            let a_col = &a[i * lda..i * lda + k];
            let (mut s0, mut s1, mut s2, mut s3) = (S::ZERO, S::ZERO, S::ZERO, S::ZERO);
            for l in 0..k {
                let al = a_col[l];
                s0 += al * b0[l];
                s1 += al * b1[l];
                s2 += al * b2[l];
                s3 += al * b3[l];
            }
            c[i + j * ldc] -= s0;
            c[i + (j + 1) * ldc] -= s1;
            c[i + (j + 2) * ldc] -= s2;
            c[i + (j + 3) * ldc] -= s3;
        }
        j += 4;
    }
    while j < n {
        let b_col = &b[j * ldb..j * ldb + k];
        for i in 0..m {
            let a_col = &a[i * lda..i * lda + k];
            let mut sum = S::ZERO;
            for l in 0..k {
                sum += a_col[l] * b_col[l];
            }
            c[i + j * ldc] -= sum;
        }
        j += 1;
    }
}

/// Symmetric rank-k update on the lower triangle:
/// `C ← C − A·Aᵀ` for `C` `n×n` (only entries `i ≥ j` touched), `A` `n×k`.
pub fn syrk_lower_update(c: &mut [f64], ldc: usize, a: &[f64], lda: usize, n: usize, k: usize) {
    debug_assert!(ldc >= n && lda >= n);
    for j in 0..n {
        for l in 0..k {
            let ajl = a[j + l * lda];
            if ajl == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + n];
            let c_col = &mut c[j * ldc..j * ldc + n];
            for i in j..n {
                c_col[i] -= a_col[i] * ajl;
            }
        }
    }
}

/// In-place dense Cholesky of the lower triangle: `A = L·Lᵀ`, `A` `n×n`
/// with leading dimension `lda`; on success the lower triangle holds `L`.
/// The strict upper triangle is not referenced.
pub fn potrf_lower(a: &mut [f64], lda: usize, n: usize) -> Result<(), MatrixError> {
    for j in 0..n {
        // update column j with columns 0..j
        for k in 0..j {
            let ajk = a[j + k * lda];
            if ajk == 0.0 {
                continue;
            }
            for i in j..n {
                a[i + j * lda] -= a[i + k * lda] * ajk;
            }
        }
        let pivot = a[j + j * lda];
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { column: j, pivot });
        }
        let d = pivot.sqrt();
        a[j + j * lda] = d;
        let inv = 1.0 / d;
        for i in j + 1..n {
            a[i + j * lda] *= inv;
        }
    }
    Ok(())
}

/// In-place dense Cholesky with a pivot floor (dynamic regularization):
/// like [`potrf_lower`], but a finite pivot below `floor` is *boosted* to
/// `max(floor, |pivot|)` instead of failing, and the perturbation
/// `(column, boost added)` is recorded. When no pivot trips the floor, the arithmetic —
/// and hence the factor — is bit-identical to `potrf_lower`. Non-finite
/// pivots still fail with [`MatrixError::NotPositiveDefinite`].
pub fn potrf_lower_reg(
    a: &mut [f64],
    lda: usize,
    n: usize,
    floor: f64,
    perturbations: &mut Vec<(usize, f64)>,
) -> Result<(), MatrixError> {
    debug_assert!(floor > 0.0 && floor.is_finite());
    for j in 0..n {
        for k in 0..j {
            let ajk = a[j + k * lda];
            if ajk == 0.0 {
                continue;
            }
            for i in j..n {
                a[i + j * lda] -= a[i + k * lda] * ajk;
            }
        }
        let mut pivot = a[j + j * lda];
        if !pivot.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { column: j, pivot });
        }
        if pivot < floor {
            // Boost to max(floor, |pivot|): a strongly negative pivot is
            // flipped rather than shrunk to the floor, which keeps the
            // rescaled column bounded by the original column magnitudes and
            // stops the perturbation from cascading through the Schur
            // complement (Gill–Murray-style modified Cholesky).
            let boosted = floor.max(-pivot);
            perturbations.push((j, boosted - pivot));
            pivot = boosted;
        }
        let d = pivot.sqrt();
        a[j + j * lda] = d;
        let inv = 1.0 / d;
        for i in j + 1..n {
            a[i + j * lda] *= inv;
        }
    }
    Ok(())
}

/// `X ← L⁻¹·X` where `L` is `m×m` lower-triangular (leading dim `ldl`) and
/// `X` is `m×n` (leading dim `ldx`): forward substitution on a block.
pub fn trsm_lower_left<S: FScalar>(
    l: &[S],
    ldl: usize,
    x: &mut [S],
    ldx: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(ldl >= m && ldx >= m);
    if n == 1 {
        // single-RHS fast path: the column update is a bounds-check-free
        // sliced axpy, same operation order as the scalar remainder loop
        let x_col = &mut x[..m];
        for k in 0..m {
            let l_col = &l[k * ldl..k * ldl + m];
            let xk = x_col[k] / l_col[k];
            x_col[k] = xk;
            if xk == S::ZERO {
                continue;
            }
            for (xi, &lik) in x_col[k + 1..].iter_mut().zip(&l_col[k + 1..]) {
                *xi -= lik * xk;
            }
        }
        return;
    }
    let mut j = 0;
    // four-column register blocking: each L element is loaded once and
    // applied to four solve columns
    while j + 4 <= n {
        let (x0, x1, x2, x3) = four_cols_mut(x, ldx, j, m);
        for k in 0..m {
            let l_col = &l[k * ldl..k * ldl + m];
            let d = l_col[k];
            let k0 = x0[k] / d;
            let k1 = x1[k] / d;
            let k2 = x2[k] / d;
            let k3 = x3[k] / d;
            x0[k] = k0;
            x1[k] = k1;
            x2[k] = k2;
            x3[k] = k3;
            if k0 != S::ZERO && k1 != S::ZERO && k2 != S::ZERO && k3 != S::ZERO {
                for i in k + 1..m {
                    let lik = l_col[i];
                    x0[i] -= lik * k0;
                    x1[i] -= lik * k1;
                    x2[i] -= lik * k2;
                    x3[i] -= lik * k3;
                }
            } else {
                // rare: per-column zero-skip exactly as in the one-column
                // kernel, keeping results bit-identical to it
                for (xc, xk) in [
                    (&mut *x0, k0),
                    (&mut *x1, k1),
                    (&mut *x2, k2),
                    (&mut *x3, k3),
                ] {
                    if xk == S::ZERO {
                        continue;
                    }
                    for i in k + 1..m {
                        xc[i] -= l_col[i] * xk;
                    }
                }
            }
        }
        j += 4;
    }
    while j < n {
        let x_col = &mut x[j * ldx..j * ldx + m];
        for k in 0..m {
            let xk = x_col[k] / l[k + k * ldl];
            x_col[k] = xk;
            if xk == S::ZERO {
                continue;
            }
            for i in k + 1..m {
                x_col[i] -= l[i + k * ldl] * xk;
            }
        }
        j += 1;
    }
}

/// `X ← L⁻ᵀ·X` where `L` is `m×m` lower-triangular and `X` is `m×n`:
/// backward substitution on a block.
pub fn trsm_lower_trans_left<S: FScalar>(
    l: &[S],
    ldl: usize,
    x: &mut [S],
    ldx: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(ldl >= m && ldx >= m);
    if n == 1 {
        // single-RHS fast path: sliced single-accumulator dot per row, the
        // exact summation order of the scalar remainder loop
        let x_col = &mut x[..m];
        for k in (0..m).rev() {
            let l_col = &l[k * ldl..k * ldl + m];
            let mut s = x_col[k];
            for (&xi, &lik) in x_col[k + 1..].iter().zip(&l_col[k + 1..]) {
                s -= lik * xi;
            }
            x_col[k] = s / l_col[k];
        }
        return;
    }
    let mut j = 0;
    // four-column register blocking: each L element is loaded once for
    // four simultaneous inner products
    while j + 4 <= n {
        let (x0, x1, x2, x3) = four_cols_mut(x, ldx, j, m);
        for k in (0..m).rev() {
            let l_col = &l[k * ldl..k * ldl + m];
            let mut s0 = x0[k];
            let mut s1 = x1[k];
            let mut s2 = x2[k];
            let mut s3 = x3[k];
            for i in k + 1..m {
                let lik = l_col[i];
                s0 -= lik * x0[i];
                s1 -= lik * x1[i];
                s2 -= lik * x2[i];
                s3 -= lik * x3[i];
            }
            let d = l_col[k];
            x0[k] = s0 / d;
            x1[k] = s1 / d;
            x2[k] = s2 / d;
            x3[k] = s3 / d;
        }
        j += 4;
    }
    while j < n {
        let x_col = &mut x[j * ldx..j * ldx + m];
        for k in (0..m).rev() {
            let mut s = x_col[k];
            for i in k + 1..m {
                s -= l[i + k * ldl] * x_col[i];
            }
            x_col[k] = s / l[k + k * ldl];
        }
        j += 1;
    }
}

/// `B ← B·L⁻ᵀ` where `L` is `n×n` lower-triangular and `B` is `m×n`: the
/// panel scaling step of a trapezoid factorization
/// (`L21 = A21·L11⁻ᵀ`).
pub fn trsm_right_lower_trans(
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(ldl >= n && ldb >= m);
    // Solve X Lᵀ = B column-block by column-block: column j of X depends on
    // columns 0..j (of X).
    for j in 0..n {
        // b_col_j -= X[:, 0..j] * L[j, 0..j]ᵀ  (already-computed columns)
        for k in 0..j {
            let ljk = l[j + k * ldl];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let x_col_k = &head[k * ldb..k * ldb + m];
            let b_col_j = &mut tail[..m];
            for i in 0..m {
                b_col_j[i] -= x_col_k[i] * ljk;
            }
        }
        let inv = 1.0 / l[j + j * ldl];
        for i in 0..m {
            b[i + j * ldb] *= inv;
        }
    }
}

/// In-place dense LDLᵀ factorization of the lower triangle (no square
/// roots): on success the strict lower triangle holds the unit-lower `L`
/// and the diagonal holds `D`. Fails on zero pivots (no pivoting — meant
/// for SPD or symmetric quasi-definite matrices).
pub fn ldlt_lower(a: &mut [f64], lda: usize, n: usize) -> Result<(), MatrixError> {
    for j in 0..n {
        // d_j = a_jj − Σ_{k<j} L_jk² d_k
        let mut dj = a[j + j * lda];
        for k in 0..j {
            let ljk = a[j + k * lda];
            dj -= ljk * ljk * a[k + k * lda];
        }
        if dj == 0.0 || !dj.is_finite() {
            return Err(MatrixError::NotPositiveDefinite {
                column: j,
                pivot: dj,
            });
        }
        a[j + j * lda] = dj;
        for i in j + 1..n {
            let mut v = a[i + j * lda];
            for k in 0..j {
                v -= a[i + k * lda] * a[j + k * lda] * a[k + k * lda];
            }
            a[i + j * lda] = v / dj;
        }
    }
    Ok(())
}

/// Solve `L·D·Lᵀ·x = b` given the packed output of [`ldlt_lower`]; `x` has
/// `n` rows and any number of columns (leading dimension `ldx`).
pub fn ldlt_solve(a: &[f64], lda: usize, x: &mut [f64], ldx: usize, n: usize, nrhs: usize) {
    for c in 0..nrhs {
        let col = &mut x[c * ldx..c * ldx + n];
        // forward: L y = b (unit diagonal)
        for k in 0..n {
            let yk = col[k];
            if yk != 0.0 {
                for i in k + 1..n {
                    col[i] -= a[i + k * lda] * yk;
                }
            }
        }
        // diagonal: D z = y
        for k in 0..n {
            col[k] /= a[k + k * lda];
        }
        // backward: Lᵀ x = z
        for k in (0..n).rev() {
            let mut s = col[k];
            for i in k + 1..n {
                s -= a[i + k * lda] * col[i];
            }
            col[k] = s;
        }
    }
}

/// Flop count of a `gemm_update`-style multiply (2·m·n·k).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Flop count of a dense Cholesky of order `n` (n³/3 + lower-order).
pub fn potrf_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 + n * n
}

/// Flop count of a triangular solve `m×m` against `n` columns (m²·n).
pub fn trsm_flops(m: usize, n: usize) -> u64 {
    m as u64 * m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::DenseMatrix;

    fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {:?}",
            a.max_abs_diff(b)
        );
    }

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        // A = M Mᵀ + n·I for a deterministic pseudo-random M
        let mut m = DenseMatrix::zeros(n, n);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        m.fill_with(|_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn gemm_update_matches_reference() {
        let a = spd(4, 1).sub_block(0, 4, 0, 3); // 4x3
        let b = spd(5, 2).sub_block(0, 3, 0, 5); // 3x5
        let mut c = spd(6, 3).sub_block(0, 4, 0, 5); // 4x5
        let reference = {
            let mut r = c.clone();
            let prod = a.matmul(&b).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_update(
            c.as_mut_slice(),
            4,
            a.as_slice(),
            4,
            b.as_slice(),
            3,
            4,
            5,
            3,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_nt_update_matches_reference() {
        let a = spd(4, 3).sub_block(0, 4, 0, 3); // 4x3
        let b = spd(5, 4).sub_block(0, 5, 0, 3); // 5x3
        let mut c = spd(6, 5).sub_block(0, 4, 0, 5); // 4x5
        let reference = {
            let mut r = c.clone();
            let prod = a.matmul(&b.transpose()).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_nt_update(
            c.as_mut_slice(),
            4,
            a.as_slice(),
            4,
            b.as_slice(),
            5,
            4,
            5,
            3,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_tn_update_matches_reference() {
        let a = spd(5, 6).sub_block(0, 5, 0, 3); // 5x3 (k=5, m=3)
        let b = spd(5, 7).sub_block(0, 5, 0, 4); // 5x4 (k=5, n=4)
        let mut c = spd(6, 8).sub_block(0, 3, 0, 4); // 3x4
        let reference = {
            let mut r = c.clone();
            let prod = a.transpose().matmul(&b).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_tn_update(
            c.as_mut_slice(),
            3,
            a.as_slice(),
            5,
            b.as_slice(),
            5,
            3,
            4,
            5,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_tn_update_respects_leading_dimensions() {
        // 2x2 result from 2-deep products embedded in taller buffers
        let a = [1.0, 2.0, 9.0, 3.0, 4.0, 9.0]; // 2x2 in lda=3
        let b = [5.0, 6.0, 9.0, 7.0, 8.0, 9.0]; // 2x2 in ldb=3
        let mut c = [0.0; 8]; // 2x2 in ldc=4
        gemm_tn_update(&mut c, 4, &a, 3, &b, 3, 2, 2, 2);
        // C = -Aᵀ·B; Aᵀ = [[1,2],[3,4]], B = [[5,7],[6,8]]
        assert_eq!(c[0], -(1.0 * 5.0 + 2.0 * 6.0));
        assert_eq!(c[1], -(3.0 * 5.0 + 4.0 * 6.0));
        assert_eq!(c[4], -(1.0 * 7.0 + 2.0 * 8.0));
        assert_eq!(c[5], -(3.0 * 7.0 + 4.0 * 8.0));
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn syrk_touches_lower_only() {
        let a = spd(4, 5).sub_block(0, 4, 0, 2); // 4x2
        let mut c = DenseMatrix::zeros(4, 4);
        c.fill_with(|i, j| if i == j { 100.0 } else { 0.0 });
        let before = c.clone();
        syrk_lower_update(c.as_mut_slice(), 4, a.as_slice(), 4, 4, 2);
        let full = a.matmul(&a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i >= j {
                    assert!((c[(i, j)] - (before[(i, j)] - full[(i, j)])).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], before[(i, j)], "upper entry touched");
                }
            }
        }
    }

    #[test]
    fn potrf_reconstructs() {
        let a = spd(6, 7);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 6, 6).unwrap();
        // zero out the strict upper triangle (not referenced by potrf)
        for j in 0..6 {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
        }
        let recon = l.matmul(&l.transpose()).unwrap();
        approx_eq(&recon, &a, 1e-10);
    }

    #[test]
    fn potrf_detects_indefinite() {
        let mut a = DenseMatrix::identity(3);
        a[(2, 2)] = -1.0;
        let err = potrf_lower(a.as_mut_slice(), 3, 3).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::NotPositiveDefinite { column: 2, .. }
        ));
    }

    #[test]
    fn potrf_reg_is_bit_identical_without_boosts() {
        let a = spd(6, 13);
        let mut plain = a.clone();
        potrf_lower(plain.as_mut_slice(), 6, 6).unwrap();
        let mut reg = a.clone();
        let mut perts = Vec::new();
        potrf_lower_reg(reg.as_mut_slice(), 6, 6, 1e-300, &mut perts).unwrap();
        assert!(perts.is_empty());
        assert_eq!(plain.as_slice(), reg.as_slice());
    }

    #[test]
    fn potrf_reg_boosts_bad_pivot_and_records_it() {
        let mut a = DenseMatrix::identity(3);
        a[(2, 2)] = -1.0;
        let floor = 0.5;
        let mut perts = Vec::new();
        potrf_lower_reg(a.as_mut_slice(), 3, 3, floor, &mut perts).unwrap();
        // pivot −1 flips to |−1| = 1 (larger than the floor): boost is 2
        assert_eq!(perts, vec![(2, 2.0)]);
        assert!((a[(2, 2)] - 1.0).abs() < 1e-15);
        // a tiny positive pivot is lifted to the floor itself
        let mut c = DenseMatrix::identity(2);
        c[(1, 1)] = 1e-40;
        let mut perts = Vec::new();
        potrf_lower_reg(c.as_mut_slice(), 2, 2, floor, &mut perts).unwrap();
        assert_eq!(perts, vec![(1, floor - 1e-40)]);
        assert!((c[(1, 1)] - floor.sqrt()).abs() < 1e-15);
        // a non-finite pivot still fails even with a floor
        let mut b = DenseMatrix::identity(2);
        b[(1, 1)] = f64::NAN;
        let mut perts = Vec::new();
        assert!(potrf_lower_reg(b.as_mut_slice(), 2, 2, floor, &mut perts).is_err());
    }

    #[test]
    fn trsm_lower_left_solves() {
        let a = spd(5, 9);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 5, 5).unwrap();
        let x_true = spd(5, 10).sub_block(0, 5, 0, 2);
        // b = L x
        let mut lc = l.clone();
        for j in 0..5 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let mut b = lc.matmul(&x_true).unwrap();
        trsm_lower_left(l.as_slice(), 5, b.as_mut_slice(), 5, 5, 2);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn trsm_lower_trans_left_solves() {
        let a = spd(5, 11);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 5, 5).unwrap();
        let mut lc = l.clone();
        for j in 0..5 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let x_true = spd(5, 12).sub_block(0, 5, 0, 3);
        let mut b = lc.transpose().matmul(&x_true).unwrap();
        trsm_lower_trans_left(l.as_slice(), 5, b.as_mut_slice(), 5, 5, 3);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn trsm_right_lower_trans_solves() {
        // X Lᵀ = B  =>  X = B L⁻ᵀ
        let a = spd(4, 13);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 4, 4).unwrap();
        let mut lc = l.clone();
        for j in 0..4 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let x_true = spd(6, 14).sub_block(0, 6, 0, 4); // 6x4
        let mut b = x_true.matmul(&lc.transpose()).unwrap();
        trsm_right_lower_trans(l.as_slice(), 4, b.as_mut_slice(), 6, 6, 4);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn ldlt_reconstructs_and_solves() {
        let a = spd(7, 21);
        let mut f = a.clone();
        ldlt_lower(f.as_mut_slice(), 7, 7).unwrap();
        // reconstruct L·D·Lᵀ
        let mut l = DenseMatrix::identity(7);
        let mut d = DenseMatrix::zeros(7, 7);
        for j in 0..7 {
            d[(j, j)] = f[(j, j)];
            for i in j + 1..7 {
                l[(i, j)] = f[(i, j)];
            }
        }
        let recon = l.matmul(&d).unwrap().matmul(&l.transpose()).unwrap();
        approx_eq(&recon, &a, 1e-9);
        // solve against a known solution
        let x_true = spd(7, 22).sub_block(0, 7, 0, 2);
        let mut b = a.matmul(&x_true).unwrap();
        ldlt_solve(f.as_slice(), 7, b.as_mut_slice(), 7, 7, 2);
        approx_eq(&b, &x_true, 1e-8);
    }

    #[test]
    fn ldlt_handles_quasi_definite() {
        // indefinite but factorable without pivoting: D gets a negative
        // entry, which plain Cholesky would reject
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 2.0, 0.0],
            vec![2.0, -3.0, 1.0],
            vec![0.0, 1.0, 5.0],
        ])
        .unwrap();
        assert!(potrf_lower(&mut a.clone().as_mut_slice().to_vec(), 3, 3).is_err());
        let mut f = a.clone();
        ldlt_lower(f.as_mut_slice(), 3, 3).unwrap();
        assert!(f[(1, 1)] < 0.0, "D must carry the negative pivot");
        let x_true = DenseMatrix::column_vector(&[1.0, -2.0, 0.5]);
        let mut b = a.matmul(&x_true).unwrap();
        ldlt_solve(f.as_slice(), 3, b.as_mut_slice(), 3, 3, 1);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn ldlt_rejects_zero_pivot() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(1, 0)] = 1.0;
        assert!(matches!(
            ldlt_lower(a.as_mut_slice(), 2, 2),
            Err(MatrixError::NotPositiveDefinite { column: 0, .. })
        ));
    }

    #[test]
    fn kernels_respect_leading_dimensions() {
        // embed a 2x2 gemm inside larger buffers with ld > m
        let a = [1.0, 2.0, 0.0, 3.0, 4.0, 0.0]; // 2x2 in ld=3
        let b = [5.0, 6.0, 0.0, 7.0, 8.0, 0.0]; // 2x2 in ld=3
        let mut c = [0.0; 8]; // 2x2 in ld=4
        gemm_update(&mut c, 4, &a, 3, &b, 3, 2, 2, 2);
        // C = -A*B ; A = [[1,3],[2,4]], B = [[5,7],[6,8]]
        assert_eq!(c[0], -(1.0 * 5.0 + 3.0 * 6.0));
        assert_eq!(c[1], -(2.0 * 5.0 + 4.0 * 6.0));
        assert_eq!(c[4], -(1.0 * 7.0 + 3.0 * 8.0));
        assert_eq!(c[5], -(2.0 * 7.0 + 4.0 * 8.0));
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn blocked_columns_bit_identical_to_single_column() {
        // The register-blocked multi-column paths must produce, column by
        // column, exactly the bits of the one-column kernels — the solve
        // service's batching layer relies on this for determinism.
        let m = 9;
        let k = 6;
        for n in [1usize, 3, 4, 5, 7, 8, 11] {
            let big = m.max(k).max(n) + 3;
            let a = spd(big, 31).sub_block(0, m, 0, k); // m×k
            let bmat = spd(big, 32).sub_block(0, k, 0, n); // k×n
            let c0 = spd(big, 33).sub_block(0, m, 0, n); // m×n
                                                         // blocked: all n columns at once
            let mut c_all = c0.clone();
            gemm_update(
                c_all.as_mut_slice(),
                m,
                a.as_slice(),
                m,
                bmat.as_slice(),
                k,
                m,
                n,
                k,
            );
            // reference: one column at a time (always the scalar path)
            let mut c_one = c0.clone();
            for j in 0..n {
                gemm_update(
                    &mut c_one.as_mut_slice()[j * m..(j + 1) * m],
                    m,
                    a.as_slice(),
                    m,
                    &bmat.as_slice()[j * k..(j + 1) * k],
                    k,
                    m,
                    1,
                    k,
                );
            }
            assert_eq!(c_all.as_slice(), c_one.as_slice(), "gemm n={n}");

            // same exercise for the transposed-A update
            let at = spd(big, 34).sub_block(0, k, 0, m); // k×m (A of tn)
            let bt = spd(big, 35).sub_block(0, k, 0, n); // k×n
            let mut c_all = c0.clone();
            gemm_tn_update(
                c_all.as_mut_slice(),
                m,
                at.as_slice(),
                k,
                bt.as_slice(),
                k,
                m,
                n,
                k,
            );
            let mut c_one = c0.clone();
            for j in 0..n {
                gemm_tn_update(
                    &mut c_one.as_mut_slice()[j * m..(j + 1) * m],
                    m,
                    at.as_slice(),
                    k,
                    &bt.as_slice()[j * k..(j + 1) * k],
                    k,
                    m,
                    1,
                    k,
                );
            }
            assert_eq!(c_all.as_slice(), c_one.as_slice(), "gemm_tn n={n}");

            // triangular solves, forward and transposed
            let aspd = spd(m, 36);
            let mut l = aspd.clone();
            potrf_lower(l.as_mut_slice(), m, m).unwrap();
            for trans in [false, true] {
                let x0 = spd(big, 37).sub_block(0, m, 0, n);
                let mut x_all = x0.clone();
                let mut x_one = x0.clone();
                if trans {
                    trsm_lower_trans_left(l.as_slice(), m, x_all.as_mut_slice(), m, m, n);
                } else {
                    trsm_lower_left(l.as_slice(), m, x_all.as_mut_slice(), m, m, n);
                }
                for j in 0..n {
                    let col = &mut x_one.as_mut_slice()[j * m..(j + 1) * m];
                    if trans {
                        trsm_lower_trans_left(l.as_slice(), m, col, m, m, 1);
                    } else {
                        trsm_lower_left(l.as_slice(), m, col, m, m, 1);
                    }
                }
                assert_eq!(
                    x_all.as_slice(),
                    x_one.as_slice(),
                    "trsm trans={trans} n={n}"
                );
            }
        }
    }

    #[test]
    fn single_column_fast_paths_bit_identical_to_scalar_reference() {
        // The n==1 gemv-shaped paths may interchange loops but must apply
        // each element's operations in exactly the scalar order. Compare
        // against naive in-test references for sizes hitting both the
        // quad-blocked body and the remainders.
        for m in [1usize, 3, 4, 5, 8, 11] {
            for k in [1usize, 2, 4, 6, 9] {
                let big = m.max(k) + 2;
                let a = spd(big, 51).sub_block(0, m, 0, k); // m×k
                let mut bvec = spd(big, 52).sub_block(0, k, 0, 1); // k×1
                if k > 2 {
                    bvec[(2, 0)] = 0.0; // exercise the zero-skip branch
                }
                let c0 = spd(big, 53).sub_block(0, m, 0, 1);

                let mut c_fast = c0.clone();
                gemm_update(
                    c_fast.as_mut_slice(),
                    m,
                    a.as_slice(),
                    m,
                    bvec.as_slice(),
                    k,
                    m,
                    1,
                    k,
                );
                let mut c_ref = c0.clone();
                for l in 0..k {
                    let bl = bvec[(l, 0)];
                    if bl == 0.0 {
                        continue;
                    }
                    for i in 0..m {
                        c_ref[(i, 0)] -= a[(i, l)] * bl;
                    }
                }
                assert_eq!(c_fast.as_slice(), c_ref.as_slice(), "gemv m={m} k={k}");

                let at = spd(big, 54).sub_block(0, k, 0, m); // k×m
                let mut c_fast = c0.clone();
                gemm_tn_update(
                    c_fast.as_mut_slice(),
                    m,
                    at.as_slice(),
                    k,
                    bvec.as_slice(),
                    k,
                    m,
                    1,
                    k,
                );
                let mut c_ref = c0.clone();
                for i in 0..m {
                    let mut sum = 0.0;
                    for l in 0..k {
                        sum += at[(l, i)] * bvec[(l, 0)];
                    }
                    c_ref[(i, 0)] -= sum;
                }
                assert_eq!(c_fast.as_slice(), c_ref.as_slice(), "gemv_t m={m} k={k}");
            }

            let aspd = spd(m, 55);
            let mut l = aspd.clone();
            potrf_lower(l.as_mut_slice(), m, m).unwrap();
            let x0 = spd(m + 2, 56).sub_block(0, m, 0, 1);

            let mut x_fast = x0.clone();
            trsm_lower_left(l.as_slice(), m, x_fast.as_mut_slice(), m, m, 1);
            let mut x_ref = x0.clone();
            for k in 0..m {
                let xk = x_ref[(k, 0)] / l[(k, k)];
                x_ref[(k, 0)] = xk;
                if xk == 0.0 {
                    continue;
                }
                for i in k + 1..m {
                    x_ref[(i, 0)] -= l[(i, k)] * xk;
                }
            }
            assert_eq!(x_fast.as_slice(), x_ref.as_slice(), "trsm m={m}");

            let mut x_fast = x0.clone();
            trsm_lower_trans_left(l.as_slice(), m, x_fast.as_mut_slice(), m, m, 1);
            let mut x_ref = x0.clone();
            for k in (0..m).rev() {
                let mut s = x_ref[(k, 0)];
                for i in k + 1..m {
                    s -= l[(i, k)] * x_ref[(i, 0)];
                }
                x_ref[(k, 0)] = s / l[(k, k)];
            }
            assert_eq!(x_fast.as_slice(), x_ref.as_slice(), "trsm_t m={m}");
        }
    }

    #[test]
    fn f32_kernels_blocked_bit_identical_to_single_column() {
        // The f32 monomorphization must satisfy the same contract as f64:
        // blocked multi-column execution matches the one-column kernel bit
        // for bit, per column. (The mixed-precision solve lane's
        // determinism rests on this.)
        let m = 9;
        let k = 6;
        let to32 =
            |d: &DenseMatrix| -> Vec<f32> { d.as_slice().iter().map(|&v| v as f32).collect() };
        for n in [1usize, 3, 5, 8] {
            let big = m.max(k).max(n) + 3;
            let a = to32(&spd(big, 61).sub_block(0, m, 0, k));
            let bmat = to32(&spd(big, 62).sub_block(0, k, 0, n));
            let c0 = to32(&spd(big, 63).sub_block(0, m, 0, n));
            let mut c_all = c0.clone();
            gemm_update(&mut c_all, m, &a, m, &bmat, k, m, n, k);
            let mut c_one = c0.clone();
            for j in 0..n {
                gemm_update(
                    &mut c_one[j * m..(j + 1) * m],
                    m,
                    &a,
                    m,
                    &bmat[j * k..(j + 1) * k],
                    k,
                    m,
                    1,
                    k,
                );
            }
            assert_eq!(c_all, c_one, "f32 gemm n={n}");

            let at = to32(&spd(big, 64).sub_block(0, k, 0, m));
            let mut c_all = c0.clone();
            gemm_tn_update(&mut c_all, m, &at, k, &bmat, k, m, n, k);
            let mut c_one = c0.clone();
            for j in 0..n {
                gemm_tn_update(
                    &mut c_one[j * m..(j + 1) * m],
                    m,
                    &at,
                    k,
                    &bmat[j * k..(j + 1) * k],
                    k,
                    m,
                    1,
                    k,
                );
            }
            assert_eq!(c_all, c_one, "f32 gemm_tn n={n}");

            let mut l64 = spd(m, 65);
            potrf_lower(l64.as_mut_slice(), m, m).unwrap();
            let l = to32(&l64);
            for trans in [false, true] {
                let x0 = to32(&spd(big, 66).sub_block(0, m, 0, n));
                let mut x_all = x0.clone();
                let mut x_one = x0.clone();
                if trans {
                    trsm_lower_trans_left(&l, m, &mut x_all, m, m, n);
                } else {
                    trsm_lower_left(&l, m, &mut x_all, m, m, n);
                }
                for j in 0..n {
                    let col = &mut x_one[j * m..(j + 1) * m];
                    if trans {
                        trsm_lower_trans_left(&l, m, col, m, m, 1);
                    } else {
                        trsm_lower_left(&l, m, col, m, m, 1);
                    }
                }
                assert_eq!(x_all, x_one, "f32 trsm trans={trans} n={n}");
            }
        }
    }

    #[test]
    fn f32_trsm_solves_close_to_f64() {
        // numeric sanity for the narrow lane: a demoted triangle still
        // solves its system to f32 accuracy
        let m = 8;
        let a = spd(m, 71);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), m, m).unwrap();
        let x_true = spd(m + 1, 72).sub_block(0, m, 0, 1);
        let mut lc = l.clone();
        for j in 0..m {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let b = lc.matmul(&x_true).unwrap();
        let l32: Vec<f32> = l.as_slice().iter().map(|&v| v as f32).collect();
        let mut x32: Vec<f32> = b.as_slice().iter().map(|&v| v as f32).collect();
        trsm_lower_left(&l32, m, &mut x32, m, m, 1);
        for i in 0..m {
            let err = (f64::from(x32[i]) - x_true[(i, 0)]).abs();
            assert!(err < 1e-4, "row {i}: err {err}");
        }
    }

    #[test]
    fn blocked_gemm_handles_zero_multipliers() {
        // zero entries in B must take the per-column skip path and still
        // match the one-column kernel bitwise
        let m = 5;
        let k = 3;
        let n = 6;
        let a = spd(m, 41).sub_block(0, m, 0, k);
        let mut bmat = spd(n, 42).sub_block(0, k, 0, n);
        bmat[(1, 0)] = 0.0;
        bmat[(0, 3)] = 0.0;
        bmat[(2, 5)] = 0.0;
        let c0 = spd(n, 43).sub_block(0, m, 0, n);
        let mut c_all = c0.clone();
        gemm_update(
            c_all.as_mut_slice(),
            m,
            a.as_slice(),
            m,
            bmat.as_slice(),
            k,
            m,
            n,
            k,
        );
        let mut c_one = c0.clone();
        for j in 0..n {
            gemm_update(
                &mut c_one.as_mut_slice()[j * m..(j + 1) * m],
                m,
                a.as_slice(),
                m,
                &bmat.as_slice()[j * k..(j + 1) * k],
                k,
                m,
                1,
                k,
            );
        }
        assert_eq!(c_all.as_slice(), c_one.as_slice());
    }

    #[test]
    fn flop_counters() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert!(potrf_flops(10) >= 10 * 10 * 10 / 3);
        assert_eq!(trsm_flops(4, 2), 32);
    }
}
