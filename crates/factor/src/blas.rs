//! Dense BLAS-like kernels on column-major storage.
//!
//! All kernels take raw slices with explicit leading dimensions so they can
//! operate on sub-blocks of larger matrices without copies. Entry `(i, j)`
//! of an operand lives at `buf[i + j * ld]`. Kernels are written with the
//! inner loop running down a column (unit stride) per the perf-book
//! guidance; no allocation happens inside any kernel.

use trisolv_matrix::MatrixError;

/// `C ← C − A·B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_update(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= m && ldb >= k);
    for j in 0..n {
        for l in 0..k {
            let blj = b[l + j * ldb];
            if blj == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] -= a_col[i] * blj;
            }
        }
    }
}

/// `C ← C − A·Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
pub fn gemm_nt_update(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= m && ldb >= n);
    for j in 0..n {
        for l in 0..k {
            let bjl = b[j + l * ldb];
            if bjl == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] -= a_col[i] * bjl;
            }
        }
    }
}

/// `C ← C − Aᵀ·B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// This is the back-substitution rectangle apply: with `A = L21`
/// (`k = n_s − t` below-rows, `m = t` columns) and `B = x_below`, it
/// subtracts `L21ᵀ·x_below` from the top block in one blocked pass. Both
/// inner products run down columns of `A` and `B` (unit stride).
pub fn gemm_tn_update(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(ldc >= m && lda >= k && ldb >= k);
    for j in 0..n {
        let b_col = &b[j * ldb..j * ldb + k];
        for i in 0..m {
            let a_col = &a[i * lda..i * lda + k];
            let mut sum = 0.0;
            for l in 0..k {
                sum += a_col[l] * b_col[l];
            }
            c[i + j * ldc] -= sum;
        }
    }
}

/// Symmetric rank-k update on the lower triangle:
/// `C ← C − A·Aᵀ` for `C` `n×n` (only entries `i ≥ j` touched), `A` `n×k`.
pub fn syrk_lower_update(c: &mut [f64], ldc: usize, a: &[f64], lda: usize, n: usize, k: usize) {
    debug_assert!(ldc >= n && lda >= n);
    for j in 0..n {
        for l in 0..k {
            let ajl = a[j + l * lda];
            if ajl == 0.0 {
                continue;
            }
            let a_col = &a[l * lda..l * lda + n];
            let c_col = &mut c[j * ldc..j * ldc + n];
            for i in j..n {
                c_col[i] -= a_col[i] * ajl;
            }
        }
    }
}

/// In-place dense Cholesky of the lower triangle: `A = L·Lᵀ`, `A` `n×n`
/// with leading dimension `lda`; on success the lower triangle holds `L`.
/// The strict upper triangle is not referenced.
pub fn potrf_lower(a: &mut [f64], lda: usize, n: usize) -> Result<(), MatrixError> {
    for j in 0..n {
        // update column j with columns 0..j
        for k in 0..j {
            let ajk = a[j + k * lda];
            if ajk == 0.0 {
                continue;
            }
            for i in j..n {
                a[i + j * lda] -= a[i + k * lda] * ajk;
            }
        }
        let pivot = a[j + j * lda];
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { column: j, pivot });
        }
        let d = pivot.sqrt();
        a[j + j * lda] = d;
        let inv = 1.0 / d;
        for i in j + 1..n {
            a[i + j * lda] *= inv;
        }
    }
    Ok(())
}

/// `X ← L⁻¹·X` where `L` is `m×m` lower-triangular (leading dim `ldl`) and
/// `X` is `m×n` (leading dim `ldx`): forward substitution on a block.
pub fn trsm_lower_left(l: &[f64], ldl: usize, x: &mut [f64], ldx: usize, m: usize, n: usize) {
    debug_assert!(ldl >= m && ldx >= m);
    for j in 0..n {
        let x_col = &mut x[j * ldx..j * ldx + m];
        for k in 0..m {
            let xk = x_col[k] / l[k + k * ldl];
            x_col[k] = xk;
            if xk == 0.0 {
                continue;
            }
            for i in k + 1..m {
                x_col[i] -= l[i + k * ldl] * xk;
            }
        }
    }
}

/// `X ← L⁻ᵀ·X` where `L` is `m×m` lower-triangular and `X` is `m×n`:
/// backward substitution on a block.
pub fn trsm_lower_trans_left(l: &[f64], ldl: usize, x: &mut [f64], ldx: usize, m: usize, n: usize) {
    debug_assert!(ldl >= m && ldx >= m);
    for j in 0..n {
        let x_col = &mut x[j * ldx..j * ldx + m];
        for k in (0..m).rev() {
            let mut s = x_col[k];
            for i in k + 1..m {
                s -= l[i + k * ldl] * x_col[i];
            }
            x_col[k] = s / l[k + k * ldl];
        }
    }
}

/// `B ← B·L⁻ᵀ` where `L` is `n×n` lower-triangular and `B` is `m×n`: the
/// panel scaling step of a trapezoid factorization
/// (`L21 = A21·L11⁻ᵀ`).
pub fn trsm_right_lower_trans(
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(ldl >= n && ldb >= m);
    // Solve X Lᵀ = B column-block by column-block: column j of X depends on
    // columns 0..j (of X).
    for j in 0..n {
        // b_col_j -= X[:, 0..j] * L[j, 0..j]ᵀ  (already-computed columns)
        for k in 0..j {
            let ljk = l[j + k * ldl];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let x_col_k = &head[k * ldb..k * ldb + m];
            let b_col_j = &mut tail[..m];
            for i in 0..m {
                b_col_j[i] -= x_col_k[i] * ljk;
            }
        }
        let inv = 1.0 / l[j + j * ldl];
        for i in 0..m {
            b[i + j * ldb] *= inv;
        }
    }
}

/// In-place dense LDLᵀ factorization of the lower triangle (no square
/// roots): on success the strict lower triangle holds the unit-lower `L`
/// and the diagonal holds `D`. Fails on zero pivots (no pivoting — meant
/// for SPD or symmetric quasi-definite matrices).
pub fn ldlt_lower(a: &mut [f64], lda: usize, n: usize) -> Result<(), MatrixError> {
    for j in 0..n {
        // d_j = a_jj − Σ_{k<j} L_jk² d_k
        let mut dj = a[j + j * lda];
        for k in 0..j {
            let ljk = a[j + k * lda];
            dj -= ljk * ljk * a[k + k * lda];
        }
        if dj == 0.0 || !dj.is_finite() {
            return Err(MatrixError::NotPositiveDefinite {
                column: j,
                pivot: dj,
            });
        }
        a[j + j * lda] = dj;
        for i in j + 1..n {
            let mut v = a[i + j * lda];
            for k in 0..j {
                v -= a[i + k * lda] * a[j + k * lda] * a[k + k * lda];
            }
            a[i + j * lda] = v / dj;
        }
    }
    Ok(())
}

/// Solve `L·D·Lᵀ·x = b` given the packed output of [`ldlt_lower`]; `x` has
/// `n` rows and any number of columns (leading dimension `ldx`).
pub fn ldlt_solve(a: &[f64], lda: usize, x: &mut [f64], ldx: usize, n: usize, nrhs: usize) {
    for c in 0..nrhs {
        let col = &mut x[c * ldx..c * ldx + n];
        // forward: L y = b (unit diagonal)
        for k in 0..n {
            let yk = col[k];
            if yk != 0.0 {
                for i in k + 1..n {
                    col[i] -= a[i + k * lda] * yk;
                }
            }
        }
        // diagonal: D z = y
        for k in 0..n {
            col[k] /= a[k + k * lda];
        }
        // backward: Lᵀ x = z
        for k in (0..n).rev() {
            let mut s = col[k];
            for i in k + 1..n {
                s -= a[i + k * lda] * col[i];
            }
            col[k] = s;
        }
    }
}

/// Flop count of a `gemm_update`-style multiply (2·m·n·k).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Flop count of a dense Cholesky of order `n` (n³/3 + lower-order).
pub fn potrf_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 + n * n
}

/// Flop count of a triangular solve `m×m` against `n` columns (m²·n).
pub fn trsm_flops(m: usize, n: usize) -> u64 {
    m as u64 * m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::DenseMatrix;

    fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {:?}",
            a.max_abs_diff(b)
        );
    }

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        // A = M Mᵀ + n·I for a deterministic pseudo-random M
        let mut m = DenseMatrix::zeros(n, n);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        m.fill_with(|_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = m.matmul(&m.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn gemm_update_matches_reference() {
        let a = spd(4, 1).sub_block(0, 4, 0, 3); // 4x3
        let b = spd(5, 2).sub_block(0, 3, 0, 5); // 3x5
        let mut c = spd(6, 3).sub_block(0, 4, 0, 5); // 4x5
        let reference = {
            let mut r = c.clone();
            let prod = a.matmul(&b).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_update(
            c.as_mut_slice(),
            4,
            a.as_slice(),
            4,
            b.as_slice(),
            3,
            4,
            5,
            3,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_nt_update_matches_reference() {
        let a = spd(4, 3).sub_block(0, 4, 0, 3); // 4x3
        let b = spd(5, 4).sub_block(0, 5, 0, 3); // 5x3
        let mut c = spd(6, 5).sub_block(0, 4, 0, 5); // 4x5
        let reference = {
            let mut r = c.clone();
            let prod = a.matmul(&b.transpose()).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_nt_update(
            c.as_mut_slice(),
            4,
            a.as_slice(),
            4,
            b.as_slice(),
            5,
            4,
            5,
            3,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_tn_update_matches_reference() {
        let a = spd(5, 6).sub_block(0, 5, 0, 3); // 5x3 (k=5, m=3)
        let b = spd(5, 7).sub_block(0, 5, 0, 4); // 5x4 (k=5, n=4)
        let mut c = spd(6, 8).sub_block(0, 3, 0, 4); // 3x4
        let reference = {
            let mut r = c.clone();
            let prod = a.transpose().matmul(&b).unwrap();
            r.axpy(-1.0, &prod).unwrap();
            r
        };
        gemm_tn_update(
            c.as_mut_slice(),
            3,
            a.as_slice(),
            5,
            b.as_slice(),
            5,
            3,
            4,
            5,
        );
        approx_eq(&c, &reference, 1e-12);
    }

    #[test]
    fn gemm_tn_update_respects_leading_dimensions() {
        // 2x2 result from 2-deep products embedded in taller buffers
        let a = [1.0, 2.0, 9.0, 3.0, 4.0, 9.0]; // 2x2 in lda=3
        let b = [5.0, 6.0, 9.0, 7.0, 8.0, 9.0]; // 2x2 in ldb=3
        let mut c = [0.0; 8]; // 2x2 in ldc=4
        gemm_tn_update(&mut c, 4, &a, 3, &b, 3, 2, 2, 2);
        // C = -Aᵀ·B; Aᵀ = [[1,2],[3,4]], B = [[5,7],[6,8]]
        assert_eq!(c[0], -(1.0 * 5.0 + 2.0 * 6.0));
        assert_eq!(c[1], -(3.0 * 5.0 + 4.0 * 6.0));
        assert_eq!(c[4], -(1.0 * 7.0 + 2.0 * 8.0));
        assert_eq!(c[5], -(3.0 * 7.0 + 4.0 * 8.0));
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn syrk_touches_lower_only() {
        let a = spd(4, 5).sub_block(0, 4, 0, 2); // 4x2
        let mut c = DenseMatrix::zeros(4, 4);
        c.fill_with(|i, j| if i == j { 100.0 } else { 0.0 });
        let before = c.clone();
        syrk_lower_update(c.as_mut_slice(), 4, a.as_slice(), 4, 4, 2);
        let full = a.matmul(&a.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i >= j {
                    assert!((c[(i, j)] - (before[(i, j)] - full[(i, j)])).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], before[(i, j)], "upper entry touched");
                }
            }
        }
    }

    #[test]
    fn potrf_reconstructs() {
        let a = spd(6, 7);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 6, 6).unwrap();
        // zero out the strict upper triangle (not referenced by potrf)
        for j in 0..6 {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
        }
        let recon = l.matmul(&l.transpose()).unwrap();
        approx_eq(&recon, &a, 1e-10);
    }

    #[test]
    fn potrf_detects_indefinite() {
        let mut a = DenseMatrix::identity(3);
        a[(2, 2)] = -1.0;
        let err = potrf_lower(a.as_mut_slice(), 3, 3).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::NotPositiveDefinite { column: 2, .. }
        ));
    }

    #[test]
    fn trsm_lower_left_solves() {
        let a = spd(5, 9);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 5, 5).unwrap();
        let x_true = spd(5, 10).sub_block(0, 5, 0, 2);
        // b = L x
        let mut lc = l.clone();
        for j in 0..5 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let mut b = lc.matmul(&x_true).unwrap();
        trsm_lower_left(l.as_slice(), 5, b.as_mut_slice(), 5, 5, 2);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn trsm_lower_trans_left_solves() {
        let a = spd(5, 11);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 5, 5).unwrap();
        let mut lc = l.clone();
        for j in 0..5 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let x_true = spd(5, 12).sub_block(0, 5, 0, 3);
        let mut b = lc.transpose().matmul(&x_true).unwrap();
        trsm_lower_trans_left(l.as_slice(), 5, b.as_mut_slice(), 5, 5, 3);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn trsm_right_lower_trans_solves() {
        // X Lᵀ = B  =>  X = B L⁻ᵀ
        let a = spd(4, 13);
        let mut l = a.clone();
        potrf_lower(l.as_mut_slice(), 4, 4).unwrap();
        let mut lc = l.clone();
        for j in 0..4 {
            for i in 0..j {
                lc[(i, j)] = 0.0;
            }
        }
        let x_true = spd(6, 14).sub_block(0, 6, 0, 4); // 6x4
        let mut b = x_true.matmul(&lc.transpose()).unwrap();
        trsm_right_lower_trans(l.as_slice(), 4, b.as_mut_slice(), 6, 6, 4);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn ldlt_reconstructs_and_solves() {
        let a = spd(7, 21);
        let mut f = a.clone();
        ldlt_lower(f.as_mut_slice(), 7, 7).unwrap();
        // reconstruct L·D·Lᵀ
        let mut l = DenseMatrix::identity(7);
        let mut d = DenseMatrix::zeros(7, 7);
        for j in 0..7 {
            d[(j, j)] = f[(j, j)];
            for i in j + 1..7 {
                l[(i, j)] = f[(i, j)];
            }
        }
        let recon = l.matmul(&d).unwrap().matmul(&l.transpose()).unwrap();
        approx_eq(&recon, &a, 1e-9);
        // solve against a known solution
        let x_true = spd(7, 22).sub_block(0, 7, 0, 2);
        let mut b = a.matmul(&x_true).unwrap();
        ldlt_solve(f.as_slice(), 7, b.as_mut_slice(), 7, 7, 2);
        approx_eq(&b, &x_true, 1e-8);
    }

    #[test]
    fn ldlt_handles_quasi_definite() {
        // indefinite but factorable without pivoting: D gets a negative
        // entry, which plain Cholesky would reject
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 2.0, 0.0],
            vec![2.0, -3.0, 1.0],
            vec![0.0, 1.0, 5.0],
        ])
        .unwrap();
        assert!(potrf_lower(&mut a.clone().as_mut_slice().to_vec(), 3, 3).is_err());
        let mut f = a.clone();
        ldlt_lower(f.as_mut_slice(), 3, 3).unwrap();
        assert!(f[(1, 1)] < 0.0, "D must carry the negative pivot");
        let x_true = DenseMatrix::column_vector(&[1.0, -2.0, 0.5]);
        let mut b = a.matmul(&x_true).unwrap();
        ldlt_solve(f.as_slice(), 3, b.as_mut_slice(), 3, 3, 1);
        approx_eq(&b, &x_true, 1e-10);
    }

    #[test]
    fn ldlt_rejects_zero_pivot() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(1, 0)] = 1.0;
        assert!(matches!(
            ldlt_lower(a.as_mut_slice(), 2, 2),
            Err(MatrixError::NotPositiveDefinite { column: 0, .. })
        ));
    }

    #[test]
    fn kernels_respect_leading_dimensions() {
        // embed a 2x2 gemm inside larger buffers with ld > m
        let a = [1.0, 2.0, 0.0, 3.0, 4.0, 0.0]; // 2x2 in ld=3
        let b = [5.0, 6.0, 0.0, 7.0, 8.0, 0.0]; // 2x2 in ld=3
        let mut c = [0.0; 8]; // 2x2 in ld=4
        gemm_update(&mut c, 4, &a, 3, &b, 3, 2, 2, 2);
        // C = -A*B ; A = [[1,3],[2,4]], B = [[5,7],[6,8]]
        assert_eq!(c[0], -(1.0 * 5.0 + 3.0 * 6.0));
        assert_eq!(c[1], -(2.0 * 5.0 + 4.0 * 6.0));
        assert_eq!(c[4], -(1.0 * 7.0 + 3.0 * 8.0));
        assert_eq!(c[5], -(2.0 * 7.0 + 4.0 * 8.0));
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn flop_counters() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert!(potrf_flops(10) >= 10 * 10 * 10 / 3);
        assert_eq!(trsm_flops(4, 2), 32);
    }
}
