//! Dense Cholesky factorization and triangular solution.
//!
//! Reference numerics for small systems and the sequential baseline for the
//! dense triangular-solver comparison of the paper's Figure 5 table.

use crate::blas;
use trisolv_matrix::{DenseMatrix, MatrixError};

/// A dense Cholesky factor (lower triangle; the strict upper triangle of
/// the backing storage is zeroed).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCholesky {
    l: DenseMatrix,
}

impl DenseCholesky {
    /// Factor a dense SPD matrix (only its lower triangle is read).
    pub fn factor(a: &DenseMatrix) -> Result<Self, MatrixError> {
        let (n, m) = a.shape();
        if n != m {
            return Err(MatrixError::DimensionMismatch {
                op: "cholesky",
                lhs: (n, m),
                rhs: (n, n),
            });
        }
        let mut l = a.clone();
        blas::potrf_lower(l.as_mut_slice(), n, n)?;
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
        }
        Ok(DenseCholesky { l })
    }

    /// The factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Order of the system.
    pub fn n(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `L·Y = B` (forward substitution), in place.
    pub fn forward(&self, b: &mut DenseMatrix) {
        let n = self.n();
        assert_eq!(b.nrows(), n);
        let nrhs = b.ncols();
        blas::trsm_lower_left(self.l.as_slice(), n, b.as_mut_slice(), n, n, nrhs);
    }

    /// Solve `Lᵀ·X = Y` (backward substitution), in place.
    pub fn backward(&self, y: &mut DenseMatrix) {
        let n = self.n();
        assert_eq!(y.nrows(), n);
        let nrhs = y.ncols();
        blas::trsm_lower_trans_left(self.l.as_slice(), n, y.as_mut_slice(), n, n, nrhs);
    }

    /// Solve `A·X = B` via forward + backward substitution.
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut x = b.clone();
        self.forward(&mut x);
        self.backward(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    fn dense_spd(n: usize, seed: u64) -> DenseMatrix {
        gen::random_spd(n, 3, seed).sym_expand().unwrap().to_dense()
    }

    #[test]
    fn factor_and_reconstruct() {
        let a = dense_spd(8, 1);
        let ch = DenseCholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = dense_spd(10, 2);
        let x_true = gen::random_rhs(10, 4, 3);
        let b = a.matmul(&x_true).unwrap();
        let ch = DenseCholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn forward_then_backward_composes() {
        let a = dense_spd(6, 4);
        let ch = DenseCholesky::factor(&a).unwrap();
        let x_true = gen::random_rhs(6, 1, 5);
        let mut y = ch.l().matmul(&x_true).unwrap();
        ch.forward(&mut y);
        assert!(y.max_abs_diff(&x_true).unwrap() < 1e-9);
        let mut z = ch.l().transpose().matmul(&x_true).unwrap();
        ch.backward(&mut z);
        assert!(z.max_abs_diff(&x_true).unwrap() < 1e-9);
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(3, 4);
        assert!(DenseCholesky::factor(&a).is_err());
    }

    #[test]
    fn indefinite_rejected() {
        let mut a = DenseMatrix::identity(4);
        a[(1, 1)] = -2.0;
        assert!(matches!(
            DenseCholesky::factor(&a),
            Err(MatrixError::NotPositiveDefinite { column: 1, .. })
        ));
    }
}
