//! Coordinate-format (triplet) matrix builder.

use crate::{CscMatrix, MatrixError, Result};

/// A matrix under assembly, stored as `(row, col, value)` triplets.
///
/// Duplicate entries are **summed** when compressing to CSC, matching the
/// finite-element assembly convention the generators rely on.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Create an empty builder with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summation).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Add `value` at `(row, col)`; duplicates are summed at compression.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Add a symmetric pair: `(i, j)` and `(j, i)` (only one entry if
    /// `i == j`).
    pub fn push_sym(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        self.push(i, j, value)?;
        if i != j {
            self.push(j, i, value)?;
        }
        Ok(())
    }

    /// Compress to CSC, summing duplicates and dropping explicit zeros that
    /// result from cancellation only if `drop_zeros` is set.
    pub fn to_csc(&self) -> CscMatrix {
        // Count entries per column.
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        // Scatter into place.
        let mut rowidx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = colptr.clone();
        for k in 0..self.nnz() {
            let c = self.cols[k];
            let slot = next[c];
            rowidx[slot] = self.rows[k];
            values[slot] = self.vals[k];
            next[c] += 1;
        }
        // Sort each column by row and sum duplicates.
        let mut out_colptr = vec![0usize; self.ncols + 1];
        let mut out_rowidx = Vec::with_capacity(self.nnz());
        let mut out_values = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            let lo = colptr[j];
            let hi = colptr[j + 1];
            let mut entries: Vec<(usize, f64)> = rowidx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < entries.len() {
                let r = entries[k].0;
                let mut v = 0.0;
                while k < entries.len() && entries[k].0 == r {
                    v += entries[k].1;
                    k += 1;
                }
                out_rowidx.push(r);
                out_values.push(v);
            }
            out_colptr[j + 1] = out_rowidx.len();
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, out_colptr, out_rowidx, out_values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_bounds_checked() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(t.push(0, 0, 1.0).is_ok());
        assert!(t.push(2, 0, 1.0).is_err());
        assert!(t.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 1, 2.0).unwrap();
        t.push(1, 1, 3.0).unwrap();
        t.push(0, 1, 1.0).unwrap();
        let m = t.to_csc();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn columns_sorted_after_compress() {
        let mut t = TripletMatrix::new(4, 1);
        t.push(3, 0, 3.0).unwrap();
        t.push(0, 0, 1.0).unwrap();
        t.push(2, 0, 2.0).unwrap();
        let m = t.to_csc();
        assert_eq!(m.col_rows(0), &[0, 2, 3]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn push_sym_mirrors() {
        let mut t = TripletMatrix::new(3, 3);
        t.push_sym(0, 2, 4.0).unwrap();
        t.push_sym(1, 1, 7.0).unwrap();
        let m = t.to_csc();
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn empty_builder_compresses() {
        let t = TripletMatrix::new(5, 4);
        let m = t.to_csc();
        assert_eq!(m.shape(), (5, 4));
        assert_eq!(m.nnz(), 0);
        assert!(m.validate().is_ok());
    }
}
