//! Symmetric diagonal equilibration.
//!
//! Badly scaled inputs (structural models mixing stiffness units, graded
//! meshes) can defeat both the Cholesky pivots and iterative refinement:
//! the componentwise backward error is scale-invariant, but the *rate* at
//! which refinement converges degrades with the scaling-induced part of
//! the condition number. Symmetric equilibration `Ã = D·A·D` with
//! `d_i = 1/√|a_ii|` makes every diagonal entry of `Ã` exactly ±1, which
//! removes the diagonal-scaling component of the condition number while
//! preserving symmetry and definiteness. The solve then runs on the
//! scaled system: `Ã·x̃ = D·b`, `x = D·x̃`.

use crate::{CscMatrix, DenseMatrix, MatrixError, Result};

/// The outcome of [`equilibrate_sym`]: the scaled matrix plus the
/// diagonal scale factors needed to transform right-hand sides and
/// recover solutions.
#[derive(Debug, Clone)]
pub struct SymScaling {
    /// The scaled lower-triangular matrix `D·A·D`.
    pub scaled: CscMatrix,
    /// Diagonal scale factors `d_i = 1/√|a_ii|` (`1.0` where the diagonal
    /// entry is absent or zero).
    pub d: Vec<f64>,
    /// Largest scale factor applied (`max_i d_i`).
    pub dmax: f64,
    /// Smallest scale factor applied (`min_i d_i`).
    pub dmin: f64,
}

impl SymScaling {
    /// How far from unit scaling the input was: `dmax / dmin` (1.0 for an
    /// already-equilibrated matrix). This is the number worth reporting.
    pub fn ratio(&self) -> f64 {
        if self.dmin > 0.0 {
            self.dmax / self.dmin
        } else {
            f64::INFINITY
        }
    }

    /// Transform a right-hand side of the original system into the scaled
    /// system: `b̃ = D·b`.
    pub fn scale_rhs(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply(b, "scale_rhs")
    }

    /// Recover the original-system solution from the scaled one:
    /// `x = D·x̃`.
    pub fn unscale_solution(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        self.apply(x, "unscale_solution")
    }

    fn apply(&self, v: &DenseMatrix, op: &'static str) -> Result<DenseMatrix> {
        if v.nrows() != self.d.len() {
            return Err(MatrixError::DimensionMismatch {
                op,
                lhs: (self.d.len(), self.d.len()),
                rhs: v.shape(),
            });
        }
        let mut out = v.clone();
        for c in 0..out.ncols() {
            let col = out.col_mut(c);
            for (i, x) in col.iter_mut().enumerate() {
                *x *= self.d[i];
            }
        }
        Ok(out)
    }
}

/// Symmetric diagonal equilibration of a lower-triangular symmetric
/// matrix: returns `D·A·D` with `d_i = 1/√|a_ii|`, so every nonzero
/// diagonal entry of the result is ±1.
///
/// Rows whose diagonal entry is absent or exactly zero keep `d_i = 1`
/// (nothing sensible to scale by; regularization or refinement deals with
/// them downstream). Rejects non-square matrices and non-finite values.
pub fn equilibrate_sym(a: &CscMatrix) -> Result<SymScaling> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::InvalidStructure(
            "equilibrate_sym requires a square matrix".to_string(),
        ));
    }
    crate::error::validate_finite("matrix values", a.values())?;
    let n = a.ncols();
    let mut d = vec![1.0f64; n];
    for (j, dj) in d.iter_mut().enumerate() {
        let ajj = a.get(j, j);
        if ajj != 0.0 {
            *dj = 1.0 / ajj.abs().sqrt();
        }
    }
    let mut scaled = a.clone();
    {
        let colptr = a.colptr().to_vec();
        let rowidx = a.rowidx().to_vec();
        let values = scaled.values_mut();
        for j in 0..n {
            for k in colptr[j]..colptr[j + 1] {
                values[k] *= d[rowidx[k]] * d[j];
            }
        }
    }
    let (mut dmin, mut dmax) = (f64::INFINITY, 0.0f64);
    for &v in &d {
        dmin = dmin.min(v);
        dmax = dmax.max(v);
    }
    if n == 0 {
        (dmin, dmax) = (1.0, 1.0);
    }
    Ok(SymScaling {
        scaled,
        d,
        dmax,
        dmin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn unit_diagonal_after_scaling() {
        let a = gen::random_spd(40, 4, 11);
        let s = equilibrate_sym(&a).unwrap();
        for j in 0..40 {
            assert!((s.scaled.get(j, j) - 1.0).abs() < 1e-14, "diag at {j}");
        }
        assert!(s.ratio() >= 1.0);
    }

    #[test]
    fn scaled_solve_recovers_original_solution() {
        // Build a badly scaled SPD matrix: D·A·D with huge D applied to a
        // Laplacian, then check that solving through the scaling round
        // trips: x == D_s · solve(scaled, D_s·b) numerically.
        let a = gen::grid2d_laplacian(6, 6);
        let s = equilibrate_sym(&a).unwrap();
        let x = gen::random_rhs(36, 2, 3);
        // b = A·x; scaled rhs must equal (DAD)·(D^{-1}x)
        let b = a.spmv_sym_lower(&x).unwrap();
        let sb = s.scale_rhs(&b).unwrap();
        // D^{-1} x
        let mut xs = x.clone();
        for c in 0..xs.ncols() {
            let col = xs.col_mut(c);
            for (i, v) in col.iter_mut().enumerate() {
                *v /= s.d[i];
            }
        }
        let lhs = s.scaled.spmv_sym_lower(&xs).unwrap();
        assert!(lhs.max_abs_diff(&sb).unwrap() < 1e-12);
        // and unscale_solution inverts the substitution
        let back = s.unscale_solution(&xs).unwrap();
        assert!(back.max_abs_diff(&x).unwrap() < 1e-12);
    }

    #[test]
    fn extreme_scaling_is_reported() {
        // diag entries 1 and 1e12 → ratio ~1e6 (sqrt scale)
        let mut t = crate::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(1, 0, 10.0).unwrap();
        t.push(1, 1, 1e12).unwrap();
        let a = t.to_csc();
        let s = equilibrate_sym(&a).unwrap();
        assert!((s.ratio() - 1e6).abs() / 1e6 < 1e-10);
        assert!((s.scaled.get(1, 1) - 1.0).abs() < 1e-14);
        // off-diagonal scaled by both factors
        assert!((s.scaled.get(1, 0) - 10.0 * 1e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_diagonal_keeps_unit_scale() {
        let mut t = crate::TripletMatrix::new(2, 2);
        t.push(1, 0, 3.0).unwrap();
        t.push(1, 1, 4.0).unwrap();
        let a = t.to_csc(); // row 0 has no diagonal entry
        let s = equilibrate_sym(&a).unwrap();
        assert_eq!(s.d[0], 1.0);
        assert_eq!(s.scaled.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_non_finite_and_non_square() {
        let mut t = crate::TripletMatrix::new(2, 2);
        t.push(0, 0, f64::NAN).unwrap();
        t.push(1, 1, 1.0).unwrap();
        assert!(matches!(
            equilibrate_sym(&t.to_csc()),
            Err(MatrixError::NonFinite { .. })
        ));
        let rect = CscMatrix::zeros(3, 2);
        assert!(equilibrate_sym(&rect).is_err());
    }
}
