//! Dense and sparse matrix types for the `trisolv` workspace.
//!
//! This crate provides the numerical substrate of the Gupta & Kumar (SC'95)
//! reproduction:
//!
//! * [`DenseMatrix`] — a column-major dense matrix used for supernode blocks,
//!   frontal matrices, and multi-right-hand-side vectors.
//! * [`CscMatrix`] — compressed sparse column storage used for the assembled
//!   symmetric coefficient matrices `A` and simplicial factors `L`.
//! * [`TripletMatrix`] — a coordinate-format builder for assembling matrices
//!   entry by entry before compressing to CSC.
//! * [`gen`] — problem generators for the matrix classes the paper analyzes:
//!   2-D and 3-D neighborhood-graph (finite-difference / finite-element)
//!   problems, with optional multi-DOF node blocks, plus random SPD matrices
//!   for testing.
//! * [`io`] — a minimal Matrix-Market-style text reader/writer so experiment
//!   inputs and outputs can be inspected and exchanged.
//! * [`scale`] — symmetric diagonal equilibration for badly scaled
//!   inputs, feeding the certified-solve pipeline in `trisolv-core`.
//! * [`rng`] — the in-tree deterministic PRNG used by the generators and
//!   the randomized tests (keeps the workspace free of external
//!   dependencies so it builds offline).
//!
//! All numerics are `f64`; all index types are `usize`. Matrices from the
//! symmetric generators store the **lower triangle only** (including the
//! diagonal), which is the convention every downstream crate assumes.

pub mod csc;
pub mod dense;
pub mod error;
pub mod gen;
pub mod hb;
pub mod io;
pub mod rng;
pub mod scale;
pub mod triplet;

pub use csc::CscMatrix;
pub use dense::DenseMatrix;
pub use error::{validate_finite, MatrixError};
pub use scale::{equilibrate_sym, SymScaling};
pub use triplet::TripletMatrix;

/// Convenient result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;
