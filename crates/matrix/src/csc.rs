//! Compressed sparse column (CSC) matrices.

use crate::{DenseMatrix, MatrixError, Result};

/// A compressed-sparse-column matrix of `f64` values.
///
/// Invariants (checked by [`CscMatrix::validate`]):
/// * `colptr.len() == ncols + 1`, `colptr[0] == 0`, non-decreasing,
///   `colptr[ncols] == rowidx.len() == values.len()`;
/// * within each column, row indices are strictly increasing and `< nrows`.
///
/// Symmetric matrices in this workspace are stored **lower-triangular**
/// (diagonal included); helpers that need both triangles expand on the fly.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from raw parts, validating the structure.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = Self::from_parts_unchecked(nrows, ncols, colptr, rowidx, values);
        m.validate()?;
        Ok(m)
    }

    /// Build from raw parts without validation (used by trusted builders).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Check all structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.colptr.len() != self.ncols + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "colptr length {} != ncols+1 = {}",
                self.colptr.len(),
                self.ncols + 1
            )));
        }
        if self.colptr[0] != 0 {
            return Err(MatrixError::InvalidStructure("colptr[0] != 0".to_string()));
        }
        if *self.colptr.last().unwrap() != self.rowidx.len()
            || self.rowidx.len() != self.values.len()
        {
            return Err(MatrixError::InvalidStructure(
                "colptr end / rowidx / values length mismatch".to_string(),
            ));
        }
        for j in 0..self.ncols {
            if self.colptr[j] > self.colptr[j + 1] {
                return Err(MatrixError::InvalidStructure(format!(
                    "colptr decreases at column {j}"
                )));
            }
            let rows = &self.rowidx[self.colptr[j]..self.colptr[j + 1]];
            for w in rows.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "rows not strictly increasing in column {j}"
                    )));
                }
            }
            if let Some(&last) = rows.last() {
                if last >= self.nrows {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row index {last} out of bounds in column {j}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// The column pointer array (length `ncols + 1`).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row index array (length `nnz`).
    #[inline]
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// The value array (length `nnz`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowidx[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Value at `(i, j)`, zero if not stored. O(log nnz(col)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let rows = self.col_rows(j);
        match rows.binary_search(&i) {
            Ok(k) => self.values[self.colptr[j] + k],
            Err(_) => 0.0,
        }
    }

    /// Transpose (also converts CSC ↔ CSR views).
    pub fn transpose(&self) -> CscMatrix {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            colptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut rowidx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = colptr.clone();
        for j in 0..self.ncols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                let r = self.rowidx[k];
                let slot = next[r];
                rowidx[slot] = j;
                values[slot] = self.values[k];
                next[r] += 1;
            }
        }
        CscMatrix::from_parts_unchecked(self.ncols, self.nrows, colptr, rowidx, values)
    }

    /// Expand a lower-triangular symmetric matrix into its full (both
    /// triangles) form.
    ///
    /// Returns an error if the matrix is not square or stores
    /// super-diagonal entries.
    pub fn sym_expand(&self) -> Result<CscMatrix> {
        if self.nrows != self.ncols {
            return Err(MatrixError::InvalidStructure(
                "sym_expand requires a square matrix".to_string(),
            ));
        }
        let mut t = crate::TripletMatrix::new(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for (k, &i) in self.col_rows(j).iter().enumerate() {
                if i < j {
                    return Err(MatrixError::InvalidStructure(format!(
                        "entry ({i}, {j}) above the diagonal in lower-triangular matrix"
                    )));
                }
                let v = self.col_values(j)[k];
                t.push(i, j, v)?;
                if i != j {
                    t.push(j, i, v)?;
                }
            }
        }
        Ok(t.to_csc())
    }

    /// `y = A * x` for a general (full-storage) matrix; `x` has one column
    /// per right-hand side.
    pub fn spmv(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if x.nrows() != self.ncols {
            return Err(MatrixError::DimensionMismatch {
                op: "spmv",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let mut y = DenseMatrix::zeros(self.nrows, x.ncols());
        for rhs in 0..x.ncols() {
            let xc = x.col(rhs);
            let yc = y.col_mut(rhs);
            for j in 0..self.ncols {
                let xj = xc[j];
                if xj == 0.0 {
                    continue;
                }
                for k in self.colptr[j]..self.colptr[j + 1] {
                    yc[self.rowidx[k]] += self.values[k] * xj;
                }
            }
        }
        Ok(y)
    }

    /// `y = A * x` where `self` stores only the lower triangle of a
    /// symmetric `A` — the implicit upper triangle is applied too.
    pub fn spmv_sym_lower(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != self.ncols || x.nrows() != self.ncols {
            return Err(MatrixError::DimensionMismatch {
                op: "spmv_sym_lower",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let mut y = DenseMatrix::zeros(self.nrows, x.ncols());
        for rhs in 0..x.ncols() {
            let xc = x.col(rhs);
            let yc = y.col_mut(rhs);
            for j in 0..self.ncols {
                let xj = xc[j];
                for k in self.colptr[j]..self.colptr[j + 1] {
                    let i = self.rowidx[k];
                    let v = self.values[k];
                    yc[i] += v * xj;
                    if i != j {
                        yc[j] += v * xc[i];
                    }
                }
            }
        }
        Ok(y)
    }

    /// Residual `r = b − A·x` for a lower-triangular symmetric `A`, fused
    /// in one sweep: `r` starts as a copy of `b` and the symmetric
    /// product is subtracted in place, so iterative refinement pays no
    /// intermediate `A·x` allocation per step.
    pub fn residual_sym_lower(&self, x: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != self.ncols || x.nrows() != self.ncols {
            return Err(MatrixError::DimensionMismatch {
                op: "residual_sym_lower",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        if b.shape() != x.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "residual_sym_lower",
                lhs: b.shape(),
                rhs: x.shape(),
            });
        }
        let mut r = b.clone();
        for rhs in 0..x.ncols() {
            let xc = x.col(rhs);
            let rc = r.col_mut(rhs);
            for j in 0..self.ncols {
                let xj = xc[j];
                for k in self.colptr[j]..self.colptr[j + 1] {
                    let i = self.rowidx[k];
                    let v = self.values[k];
                    rc[i] -= v * xj;
                    if i != j {
                        rc[j] -= v * xc[i];
                    }
                }
            }
        }
        Ok(r)
    }

    /// `y = |A| · |x|` for a lower-triangular symmetric `A`: the
    /// componentwise scale `(|A|·|x| + |b|)` used by the Oettli–Prager
    /// backward-error test in iterative refinement.
    pub fn spmv_sym_lower_abs(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != self.ncols || x.nrows() != self.ncols {
            return Err(MatrixError::DimensionMismatch {
                op: "spmv_sym_lower_abs",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let mut y = DenseMatrix::zeros(self.nrows, x.ncols());
        for rhs in 0..x.ncols() {
            let xc = x.col(rhs);
            let yc = y.col_mut(rhs);
            for j in 0..self.ncols {
                let xj = xc[j].abs();
                for k in self.colptr[j]..self.colptr[j + 1] {
                    let i = self.rowidx[k];
                    let v = self.values[k].abs();
                    yc[i] += v * xj;
                    if i != j {
                        yc[j] += v * xc[i].abs();
                    }
                }
            }
        }
        Ok(y)
    }

    /// Symmetric permutation `P A Pᵀ` of a lower-triangular symmetric
    /// matrix, returning the result again in lower-triangular form.
    ///
    /// `perm` maps old index → new index (i.e. `new[perm[i]] = old[i]`).
    pub fn permute_sym_lower(&self, perm: &[usize]) -> Result<CscMatrix> {
        if self.nrows != self.ncols || perm.len() != self.ncols {
            return Err(MatrixError::InvalidStructure(
                "permute_sym_lower: matrix must be square and perm must have length n".to_string(),
            ));
        }
        let mut t = crate::TripletMatrix::new(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for (k, &i) in self.col_rows(j).iter().enumerate() {
                let v = self.col_values(j)[k];
                let (pi, pj) = (perm[i], perm[j]);
                let (lo, hi) = if pi >= pj { (pi, pj) } else { (pj, pi) };
                t.push(lo, hi, v)?;
            }
        }
        Ok(t.to_csc())
    }

    /// Densify (for tests and small examples).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for k in self.colptr[j]..self.colptr[j + 1] {
                d[(self.rowidx[k], j)] = self.values[k];
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample_lower() -> CscMatrix {
        // [ 4 . . ]
        // [ 1 5 . ]
        // [ 2 3 6 ]   (lower triangle of a symmetric matrix)
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 4.0).unwrap();
        t.push(1, 0, 1.0).unwrap();
        t.push(2, 0, 2.0).unwrap();
        t.push(1, 1, 5.0).unwrap();
        t.push(2, 1, 3.0).unwrap();
        t.push(2, 2, 6.0).unwrap();
        t.to_csc()
    }

    #[test]
    fn validate_catches_unsorted_rows() {
        let m = CscMatrix::from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]);
        assert!(m.is_err());
    }

    #[test]
    fn validate_catches_bad_colptr() {
        let m = CscMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(m.is_err());
        let m = CscMatrix::from_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(m.is_err());
    }

    #[test]
    fn validate_catches_out_of_bounds_row() {
        let m = CscMatrix::from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]);
        assert!(m.is_err());
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = sample_lower();
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 6);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample_lower();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().get(1, 2), 3.0);
    }

    #[test]
    fn sym_expand_fills_upper() {
        let m = sample_lower();
        let f = m.sym_expand().unwrap();
        assert_eq!(f.get(0, 2), 2.0);
        assert_eq!(f.get(2, 0), 2.0);
        assert_eq!(f.nnz(), 9);
    }

    #[test]
    fn sym_expand_rejects_upper_entries() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0).unwrap();
        assert!(t.to_csc().sym_expand().is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample_lower().sym_expand().unwrap();
        let x = DenseMatrix::column_vector(&[1.0, 2.0, 3.0]);
        let y = m.spmv(&x).unwrap();
        let yd = m.to_dense().matmul(&x).unwrap();
        assert!(y.max_abs_diff(&yd).unwrap() < 1e-14);
    }

    #[test]
    fn spmv_sym_lower_equals_expanded_spmv() {
        let m = sample_lower();
        let f = m.sym_expand().unwrap();
        let x = DenseMatrix::column_vector(&[0.5, -1.0, 2.0]);
        let a = m.spmv_sym_lower(&x).unwrap();
        let b = f.spmv(&x).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-14);
    }

    #[test]
    fn residual_sym_lower_matches_two_step() {
        let m = sample_lower();
        let x = DenseMatrix::column_vector(&[0.5, -1.0, 2.0]);
        let b = DenseMatrix::column_vector(&[3.0, -4.0, 5.0]);
        let r = m.residual_sym_lower(&x, &b).unwrap();
        let ax = m.spmv_sym_lower(&x).unwrap();
        for i in 0..3 {
            assert_eq!(r[(i, 0)], b[(i, 0)] - ax[(i, 0)]);
        }
        // shape mismatches are structured errors
        let short = DenseMatrix::column_vector(&[1.0, 2.0]);
        assert!(m.residual_sym_lower(&short, &b).is_err());
        assert!(m.residual_sym_lower(&x, &short).is_err());
    }

    #[test]
    fn spmv_sym_lower_abs_bounds_the_product() {
        let m = sample_lower();
        let x = DenseMatrix::column_vector(&[0.5, -1.0, 2.0]);
        let y = m.spmv_sym_lower(&x).unwrap();
        let ya = m.spmv_sym_lower_abs(&x).unwrap();
        for i in 0..3 {
            assert!(ya[(i, 0)] >= y[(i, 0)].abs() - 1e-14);
            assert!(ya[(i, 0)] >= 0.0);
        }
        // on an all-nonnegative problem the two agree exactly
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 2.0).unwrap();
        t.push(1, 0, 1.0).unwrap();
        t.push(1, 1, 3.0).unwrap();
        let pos = t.to_csc();
        let xq = DenseMatrix::column_vector(&[1.0, 2.0]);
        assert_eq!(
            pos.spmv_sym_lower(&xq).unwrap(),
            pos.spmv_sym_lower_abs(&xq).unwrap()
        );
    }

    #[test]
    fn permute_sym_lower_preserves_values() {
        let m = sample_lower();
        // perm: old -> new (reverse order)
        let perm = vec![2, 1, 0];
        let pm = m.permute_sym_lower(&perm).unwrap();
        // A[2][0]=2 maps to new (perm[2], perm[0]) = (0, 2) -> stored as (2, 0)
        assert_eq!(pm.get(2, 0), 2.0);
        // diagonal follows the permutation
        assert_eq!(pm.get(0, 0), 6.0);
        assert_eq!(pm.get(2, 2), 4.0);
        assert!(pm.validate().is_ok());
        // full expansions agree after dense permutation
        let fd = m.sym_expand().unwrap().to_dense();
        let pd = pm.sym_expand().unwrap().to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(pd[(perm[i], perm[j])], fd[(i, j)]);
            }
        }
    }

    #[test]
    fn to_dense_round_trips_values() {
        let m = sample_lower();
        let d = m.to_dense();
        assert_eq!(d[(2, 1)], 3.0);
        assert_eq!(d[(1, 2)], 0.0);
    }

    #[test]
    fn zeros_is_valid_and_empty() {
        let m = CscMatrix::zeros(4, 3);
        assert!(m.validate().is_ok());
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (4, 3));
    }
}
