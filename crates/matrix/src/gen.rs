//! Problem generators.
//!
//! The Gupta & Kumar analysis is parameterized by the *class* of the
//! coefficient matrix: sparse SPD matrices whose graphs are two- or
//! three-dimensional neighborhood graphs (finite-difference and
//! finite-element discretizations). These generators produce exactly those
//! classes:
//!
//! * [`grid2d_laplacian`] / [`grid3d_laplacian`] — 5-point and 7-point
//!   finite-difference stencils (the canonical 2-D / 3-D model problems);
//! * [`grid2d_9pt`] / [`grid3d_27pt`] — denser stencils corresponding to
//!   bilinear/trilinear finite elements;
//! * [`fem2d`] / [`fem3d`] — multi-degree-of-freedom variants that couple
//!   `dof` unknowns per mesh node, producing the block-dense structure of
//!   structural-mechanics matrices such as the BCSSTK series used in the
//!   paper's experiments;
//! * [`random_spd`] — random symmetric diagonally-dominant matrices for
//!   property-based testing.
//!
//! All generators return the **lower triangle** of the symmetric matrix.

use crate::rng::Rng;
use crate::{CscMatrix, DenseMatrix, TripletMatrix};

/// Linear index of grid node `(x, y)` in a `kx × ky` grid.
#[inline]
fn idx2(x: usize, y: usize, kx: usize) -> usize {
    y * kx + x
}

/// Linear index of grid node `(x, y, z)` in a `kx × ky × kz` grid.
#[inline]
fn idx3(x: usize, y: usize, z: usize, kx: usize, ky: usize) -> usize {
    (z * ky + y) * kx + x
}

/// 5-point Laplacian on a `kx × ky` grid: the classic 2-D model problem.
///
/// Diagonal 4, off-diagonals −1; SPD with Dirichlet boundary. `N = kx·ky`.
pub fn grid2d_laplacian(kx: usize, ky: usize) -> CscMatrix {
    let n = kx * ky;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..ky {
        for x in 0..kx {
            let i = idx2(x, y, kx);
            t.push(i, i, 4.0).unwrap();
            if x + 1 < kx {
                t.push(idx2(x + 1, y, kx), i, -1.0).unwrap();
            }
            if y + 1 < ky {
                t.push(idx2(x, y + 1, kx), i, -1.0).unwrap();
            }
        }
    }
    t.to_csc()
}

/// 9-point stencil on a `kx × ky` grid (bilinear quadrilateral elements).
///
/// Diagonal 8, edge neighbours −1, diagonal neighbours −0.5; diagonally
/// dominant, hence SPD.
pub fn grid2d_9pt(kx: usize, ky: usize) -> CscMatrix {
    let n = kx * ky;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..ky {
        for x in 0..kx {
            let i = idx2(x, y, kx);
            t.push(i, i, 8.0).unwrap();
            // lower-triangle neighbours only (larger linear index).
            for (dx, dy, w) in [
                (1isize, 0isize, -1.0),
                (-1, 1, -0.5),
                (0, 1, -1.0),
                (1, 1, -0.5),
            ] {
                let nx = x as isize + dx;
                let ny = y as isize + dy;
                if nx >= 0 && (nx as usize) < kx && ny >= 0 && (ny as usize) < ky {
                    let j = idx2(nx as usize, ny as usize, kx);
                    debug_assert!(j > i);
                    t.push(j, i, w).unwrap();
                }
            }
        }
    }
    t.to_csc()
}

/// 7-point Laplacian on a `kx × ky × kz` grid: the classic 3-D model
/// problem. Diagonal 6, off-diagonals −1. `N = kx·ky·kz`.
pub fn grid3d_laplacian(kx: usize, ky: usize, kz: usize) -> CscMatrix {
    let n = kx * ky * kz;
    let mut t = TripletMatrix::new(n, n);
    for z in 0..kz {
        for y in 0..ky {
            for x in 0..kx {
                let i = idx3(x, y, z, kx, ky);
                t.push(i, i, 6.0).unwrap();
                if x + 1 < kx {
                    t.push(idx3(x + 1, y, z, kx, ky), i, -1.0).unwrap();
                }
                if y + 1 < ky {
                    t.push(idx3(x, y + 1, z, kx, ky), i, -1.0).unwrap();
                }
                if z + 1 < kz {
                    t.push(idx3(x, y, z + 1, kx, ky), i, -1.0).unwrap();
                }
            }
        }
    }
    t.to_csc()
}

/// 27-point stencil on a `kx × ky × kz` grid (trilinear hexahedral
/// elements). Diagonally dominant, hence SPD.
pub fn grid3d_27pt(kx: usize, ky: usize, kz: usize) -> CscMatrix {
    let n = kx * ky * kz;
    let mut t = TripletMatrix::new(n, n);
    for z in 0..kz {
        for y in 0..ky {
            for x in 0..kx {
                let i = idx3(x, y, z, kx, ky);
                t.push(i, i, 27.0).unwrap();
                for dz in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let nx = x as isize + dx;
                            let ny = y as isize + dy;
                            let nz = z as isize + dz;
                            if nx < 0
                                || ny < 0
                                || nz < 0
                                || nx as usize >= kx
                                || ny as usize >= ky
                                || nz as usize >= kz
                            {
                                continue;
                            }
                            let j = idx3(nx as usize, ny as usize, nz as usize, kx, ky);
                            if j > i {
                                let dist = (dx.abs() + dy.abs() + dz.abs()) as f64;
                                t.push(j, i, -1.0 / dist).unwrap();
                            }
                        }
                    }
                }
            }
        }
    }
    t.to_csc()
}

/// Expand a scalar neighborhood matrix into a multi-DOF block matrix:
/// each node of `scalar` becomes a `dof × dof` dense coupling block.
///
/// This mimics the structure of structural-mechanics matrices (3–6 DOF per
/// finite-element node), which is what makes the BCSSTK/HSCT/COPTER
/// matrices in the paper substantially denser than pure Laplacians.
fn expand_dof(scalar: &CscMatrix, dof: usize) -> CscMatrix {
    assert!(dof >= 1);
    let n = scalar.nrows() * dof;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..scalar.ncols() {
        for (k, &i) in scalar.col_rows(j).iter().enumerate() {
            let v = scalar.col_values(j)[k];
            for a in 0..dof {
                for b in 0..dof {
                    let (bi, bj) = (i * dof + a, j * dof + b);
                    if bi < bj {
                        continue; // keep lower triangle
                    }
                    // Diagonal blocks get a dominant diagonal so the
                    // expanded matrix stays SPD; off-diagonal couplings are
                    // scaled down by distance within the block.
                    let w = if i == j {
                        if a == b {
                            v * dof as f64
                        } else {
                            v * 0.1 / (1.0 + (a as f64 - b as f64).abs())
                        }
                    } else {
                        v / (1.0 + (a as f64 - b as f64).abs())
                    };
                    t.push(bi, bj, w).unwrap();
                }
            }
        }
    }
    t.to_csc()
}

/// 2-D finite-element analogue with `dof` unknowns per node on a
/// `kx × ky` mesh (9-point connectivity). `N = kx·ky·dof`.
pub fn fem2d(kx: usize, ky: usize, dof: usize) -> CscMatrix {
    expand_dof(&grid2d_9pt(kx, ky), dof)
}

/// 3-D finite-element analogue with `dof` unknowns per node on a
/// `kx × ky × kz` mesh (27-point connectivity). `N = kx·ky·kz·dof`.
pub fn fem3d(kx: usize, ky: usize, kz: usize, dof: usize) -> CscMatrix {
    expand_dof(&grid3d_27pt(kx, ky, kz), dof)
}

/// Irregular 2-D mesh problem: points on a jittered grid connected to
/// geometric neighbours with randomized edge weights, assembled as a
/// weighted graph Laplacian (+ Dirichlet mass term ⇒ SPD).
///
/// This is still a 2-D neighborhood graph in the paper's sense (bounded
/// degree, geometric separators exist) but with the irregular degrees and
/// weights of unstructured FEM meshes. Returns the lower triangle and the
/// node coordinates (for geometric nested dissection).
pub fn mesh2d_irregular(k: usize, seed: u64) -> (CscMatrix, Vec<[f64; 3]>) {
    let mut rng = Rng::seed_from_u64(seed);
    let n = k * k;
    // jittered unit-grid points
    let mut pts = Vec::with_capacity(n);
    for y in 0..k {
        for x in 0..k {
            let jx: f64 = rng.range_f64(-0.35, 0.35);
            let jy: f64 = rng.range_f64(-0.35, 0.35);
            pts.push([x as f64 + jx, y as f64 + jy, 0.0]);
        }
    }
    let mut t = TripletMatrix::new(n, n);
    let mut degw = vec![0f64; n];
    for y in 0..k {
        for x in 0..k {
            let i = idx2(x, y, k);
            // candidate neighbours: the 8-cell neighbourhood with larger index
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let nx = x as isize + dx;
                let ny = y as isize + dy;
                if nx < 0 || ny < 0 || nx as usize >= k || ny as usize >= k {
                    continue;
                }
                let j = idx2(nx as usize, ny as usize, k);
                let d2 = (pts[i][0] - pts[j][0]).powi(2) + (pts[i][1] - pts[j][1]).powi(2);
                // drop long diagonals at random: irregular connectivity
                if d2 > 2.6 || (d2 > 1.6 && rng.bool(0.5)) {
                    continue;
                }
                let w: f64 = rng.range_f64(0.2, 2.0);
                t.push(j, i, -w).unwrap();
                degw[i] += w;
                degw[j] += w;
            }
        }
    }
    for (i, &dw) in degw.iter().enumerate() {
        t.push(i, i, dw + 1.0).unwrap(); // +1: Dirichlet mass ⇒ SPD
    }
    (t.to_csc(), pts)
}

/// Irregular 3-D mesh problem (see [`mesh2d_irregular`]); `N = k³`.
pub fn mesh3d_irregular(k: usize, seed: u64) -> (CscMatrix, Vec<[f64; 3]>) {
    let mut rng = Rng::seed_from_u64(seed);
    let n = k * k * k;
    let mut pts = Vec::with_capacity(n);
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                pts.push([
                    x as f64 + rng.range_f64(-0.3, 0.3),
                    y as f64 + rng.range_f64(-0.3, 0.3),
                    z as f64 + rng.range_f64(-0.3, 0.3),
                ]);
            }
        }
    }
    let mut t = TripletMatrix::new(n, n);
    let mut degw = vec![0f64; n];
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let i = idx3(x, y, z, k, k);
                for dz in 0..=1isize {
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            if (dz, dy, dx) <= (0, 0, 0) {
                                continue; // larger-index half-space only
                            }
                            let nx = x as isize + dx;
                            let ny = y as isize + dy;
                            let nz = z as isize + dz;
                            if nx < 0
                                || ny < 0
                                || nx as usize >= k
                                || ny as usize >= k
                                || nz as usize >= k
                            {
                                continue;
                            }
                            let j = idx3(nx as usize, ny as usize, nz as usize, k, k);
                            let d2: f64 = (0..3).map(|ax| (pts[i][ax] - pts[j][ax]).powi(2)).sum();
                            if d2 > 2.4 || (d2 > 1.4 && rng.bool(0.6)) {
                                continue;
                            }
                            let w: f64 = rng.range_f64(0.2, 2.0);
                            t.push(j, i, -w).unwrap();
                            degw[i] += w;
                            degw[j] += w;
                        }
                    }
                }
            }
        }
    }
    for (i, &dw) in degw.iter().enumerate() {
        t.push(i, i, dw + 1.0).unwrap();
    }
    (t.to_csc(), pts)
}

/// Graded-diagonal SPD matrix: a tridiagonal chain whose diagonal decays
/// geometrically over `decades` orders of magnitude, `d_i =
/// 10^(−decades·i/(n−1))`, with off-diagonal couplings at 0.45× the
/// smaller neighbouring diagonal (strict diagonal dominance keeps it SPD).
///
/// The condition number grows like `10^decades`, so large `decades`
/// produce *near-singular but still SPD* inputs — the canonical stress
/// test for dynamic regularization and iterative refinement.
pub fn graded_diagonal(n: usize, decades: u32) -> CscMatrix {
    assert!(n >= 1);
    let mut t = TripletMatrix::new(n, n);
    let diag = |i: usize| -> f64 {
        if n == 1 {
            return 1.0;
        }
        let exp = -(decades as f64) * i as f64 / (n - 1) as f64;
        10f64.powf(exp)
    };
    for i in 0..n {
        t.push(i, i, diag(i)).unwrap();
        if i + 1 < n {
            t.push(i + 1, i, -0.45 * diag(i).min(diag(i + 1))).unwrap();
        }
    }
    t.to_csc()
}

/// Rank-deficient-ε grid: the *Neumann* 5-point Laplacian on a `kx × ky`
/// grid — exactly singular, nullspace spanned by the constant vector —
/// shifted by `+ε` on every diagonal entry. The smallest eigenvalue is
/// exactly `ε`, so the condition number grows like `1/ε`: as `ε → 0` this
/// walks an SPD matrix arbitrarily close to singularity along a known
/// direction.
pub fn rank_deficient_grid(kx: usize, ky: usize, eps: f64) -> CscMatrix {
    assert!(eps >= 0.0 && eps.is_finite());
    let n = kx * ky;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..ky {
        for x in 0..kx {
            let i = idx2(x, y, kx);
            // Neumann: diagonal equals the number of incident edges.
            let mut deg = 0.0;
            if x + 1 < kx {
                t.push(idx2(x + 1, y, kx), i, -1.0).unwrap();
                deg += 1.0;
            }
            if x > 0 {
                deg += 1.0;
            }
            if y + 1 < ky {
                t.push(idx2(x, y + 1, kx), i, -1.0).unwrap();
                deg += 1.0;
            }
            if y > 0 {
                deg += 1.0;
            }
            t.push(i, i, deg + eps).unwrap();
        }
    }
    t.to_csc()
}

/// Random symmetric positive-definite matrix (lower triangle) with ~`avg_nnz`
/// off-diagonal entries per column, made SPD by diagonal dominance.
pub fn random_spd(n: usize, avg_nnz: usize, seed: u64) -> CscMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(n, n);
    let mut row_sums = vec![0f64; n];
    for j in 0..n {
        for _ in 0..avg_nnz {
            if j + 1 >= n {
                break;
            }
            let i = rng.range_usize(j + 1, n);
            let v: f64 = rng.range_f64(-1.0, 1.0);
            t.push(i, j, v).unwrap();
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for (i, row_sum) in row_sums.iter().enumerate() {
        // duplicates are summed by to_csc, so use a dominance margin of 2x
        // the accumulated absolute mass plus 1.
        t.push(i, i, 2.0 * row_sum + 1.0).unwrap();
    }
    t.to_csc()
}

/// Largest node count [`from_spec`] will generate (2²⁶ ≈ 67M): generous
/// for every experiment in the workspace, but small enough that an
/// overflow-sized or typo'd spec is rejected up front rather than
/// attempting a multi-terabyte allocation.
pub const MAX_GEN_NODES: usize = 1 << 26;

/// Overflow-checked product of spec dimension factors, capped at
/// [`MAX_GEN_NODES`].
fn checked_nodes(factors: &[usize], what: &str) -> Result<usize, String> {
    let mut prod = 1usize;
    for &f in factors {
        prod = prod
            .checked_mul(f)
            .filter(|&p| p <= MAX_GEN_NODES)
            .ok_or_else(|| {
                format!("{what}: problem size exceeds the {MAX_GEN_NODES}-node generator cap")
            })?;
    }
    Ok(prod)
}

/// Build a test matrix from a compact generator spec string, so tools can
/// run without external matrix files (`trisolv gen`, the solve service's
/// load generator, CI smoke jobs).
///
/// Grammar (sizes are positive decimal integers; `x`-separated dimensions
/// default to the first one when omitted):
///
/// * `grid2d:KX[xKY]` — 5-point Laplacian ([`grid2d_laplacian`]);
/// * `grid2d9:KX[xKY]` — 9-point stencil ([`grid2d_9pt`]);
/// * `grid3d:KX[xKYxKZ]` — 7-point Laplacian ([`grid3d_laplacian`]);
/// * `grid3d27:KX[xKYxKZ]` — 27-point stencil ([`grid3d_27pt`]);
/// * `fem2d:KX[xKY][:DOF]` — multi-DOF 2-D FEM ([`fem2d`], DOF default 3);
/// * `fem3d:KX[xKYxKZ][:DOF]` — multi-DOF 3-D FEM ([`fem3d`]);
/// * `mesh2d:K[:SEED]` / `mesh3d:K[:SEED]` — irregular meshes;
/// * `random:N[:AVG_NNZ[:SEED]]` — [`random_spd`] (defaults 4, 42);
/// * `graded:N[:DECADES]` — near-singular graded diagonal
///   ([`graded_diagonal`], default 12 decades);
/// * `rankdef:KX[xKY][:EPS]` — rank-deficient-ε Neumann grid
///   ([`rank_deficient_grid`], default ε = 1e-8);
/// * a paper-matrix name (`bcsstk15`, `bcsstk31`, `hsct21954`, `cube35`,
///   `copter2`, case-insensitive) — the synthetic analogue.
///
/// Problem sizes are capped at [`MAX_GEN_NODES`] nodes (and `N·AVG_NNZ`
/// entries for `random`): a typo'd or hostile spec fails with a
/// structured error instead of attempting an absurd allocation.
pub fn from_spec(spec: &str) -> Result<CscMatrix, String> {
    fn dims(s: &str, want: usize, what: &str) -> Result<Vec<usize>, String> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.is_empty() || parts.len() > want {
            return Err(format!(
                "{what}: expected 1..={want} 'x'-separated sizes, got {s:?}"
            ));
        }
        let mut out = Vec::with_capacity(want);
        for p in &parts {
            let v: usize = p
                .parse()
                .map_err(|e| format!("{what}: bad size {p:?} ({e})"))?;
            if v == 0 {
                return Err(format!("{what}: sizes must be positive"));
            }
            out.push(v);
        }
        while out.len() < want {
            out.push(out[0]);
        }
        checked_nodes(&out, what)?;
        Ok(out)
    }
    let mut it = spec.splitn(2, ':');
    let kind = it.next().unwrap_or_default().to_ascii_lowercase();
    let rest = it.next();
    let need =
        |what: &str| rest.ok_or_else(|| format!("{what}: missing size argument (e.g. {what}:32)"));
    match kind.as_str() {
        "grid2d" => {
            let d = dims(need("grid2d")?, 2, "grid2d")?;
            Ok(grid2d_laplacian(d[0], d[1]))
        }
        "grid2d9" => {
            let d = dims(need("grid2d9")?, 2, "grid2d9")?;
            Ok(grid2d_9pt(d[0], d[1]))
        }
        "grid3d" => {
            let d = dims(need("grid3d")?, 3, "grid3d")?;
            Ok(grid3d_laplacian(d[0], d[1], d[2]))
        }
        "grid3d27" => {
            let d = dims(need("grid3d27")?, 3, "grid3d27")?;
            Ok(grid3d_27pt(d[0], d[1], d[2]))
        }
        "fem2d" | "fem3d" => {
            let rest = need(&kind)?;
            let mut parts = rest.splitn(2, ':');
            let sizes = parts.next().unwrap_or_default();
            let dof = match parts.next() {
                None => 3usize,
                Some(d) => d
                    .parse()
                    .map_err(|e| format!("{kind}: bad dof {d:?} ({e})"))?,
            };
            if dof == 0 {
                return Err(format!("{kind}: dof must be positive"));
            }
            if kind == "fem2d" {
                let d = dims(sizes, 2, "fem2d")?;
                checked_nodes(&[d[0], d[1], dof], "fem2d")?;
                Ok(fem2d(d[0], d[1], dof))
            } else {
                let d = dims(sizes, 3, "fem3d")?;
                checked_nodes(&[d[0], d[1], d[2], dof], "fem3d")?;
                Ok(fem3d(d[0], d[1], d[2], dof))
            }
        }
        "mesh2d" | "mesh3d" => {
            let rest = need(&kind)?;
            let mut parts = rest.splitn(2, ':');
            let k = dims(parts.next().unwrap_or_default(), 1, &kind)?[0];
            if kind == "mesh2d" {
                checked_nodes(&[k, k], &kind)?;
            } else {
                checked_nodes(&[k, k, k], &kind)?;
            }
            let seed = match parts.next() {
                None => 42u64,
                Some(s) => s
                    .parse()
                    .map_err(|e| format!("{kind}: bad seed {s:?} ({e})"))?,
            };
            if kind == "mesh2d" {
                Ok(mesh2d_irregular(k, seed).0)
            } else {
                Ok(mesh3d_irregular(k, seed).0)
            }
        }
        "random" => {
            let rest = need("random")?;
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() > 3 {
                return Err("random: expected random:N[:AVG_NNZ[:SEED]]".to_string());
            }
            let n: usize = parts[0]
                .parse()
                .map_err(|e| format!("random: bad N {:?} ({e})", parts[0]))?;
            if n == 0 {
                return Err("random: N must be positive".to_string());
            }
            let avg: usize = match parts.get(1) {
                None => 4,
                Some(s) => s
                    .parse()
                    .map_err(|e| format!("random: bad avg nnz ({e})"))?,
            };
            let seed: u64 = match parts.get(2) {
                None => 42,
                Some(s) => s.parse().map_err(|e| format!("random: bad seed ({e})"))?,
            };
            checked_nodes(&[n, avg.max(1)], "random")?;
            Ok(random_spd(n, avg, seed))
        }
        "graded" => {
            let rest = need("graded")?;
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() > 2 {
                return Err("graded: expected graded:N[:DECADES]".to_string());
            }
            let n = dims(parts[0], 1, "graded")?[0];
            let decades: u32 = match parts.get(1) {
                None => 12,
                Some(s) => s
                    .parse()
                    .map_err(|e| format!("graded: bad decades ({e})"))?,
            };
            if decades > 300 {
                return Err("graded: decades must be <= 300 (f64 range)".to_string());
            }
            Ok(graded_diagonal(n, decades))
        }
        "rankdef" => {
            let rest = need("rankdef")?;
            let mut parts = rest.splitn(2, ':');
            let d = dims(parts.next().unwrap_or_default(), 2, "rankdef")?;
            let eps: f64 = match parts.next() {
                None => 1e-8,
                Some(s) => s.parse().map_err(|e| format!("rankdef: bad eps ({e})"))?,
            };
            if !(eps.is_finite() && eps >= 0.0) {
                return Err("rankdef: eps must be finite and non-negative".to_string());
            }
            Ok(rank_deficient_grid(d[0], d[1], eps))
        }
        _ => {
            for pm in PaperMatrix::ALL {
                if pm.name().trim_end_matches('*').eq_ignore_ascii_case(&kind) {
                    return Ok(pm.build());
                }
            }
            Err(format!(
                "unknown generator {kind:?}; expected grid2d, grid2d9, grid3d, grid3d27, \
                 fem2d, fem3d, mesh2d, mesh3d, random, graded, rankdef, or a paper matrix \
                 name"
            ))
        }
    }
}

/// A random multi-RHS solution block with entries in `[-1, 1)`.
pub fn random_rhs(n: usize, nrhs: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(n, nrhs);
    for v in x.as_mut_slice() {
        *v = rng.range_f64(-1.0, 1.0);
    }
    x
}

/// Named analogue of one of the paper's test matrices (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperMatrix {
    /// BCSSTK15-like: 2-D structural problem (module of an offshore
    /// platform); modelled as a 2-D FEM mesh with 3 DOF per node.
    Bcsstk15,
    /// BCSSTK31-like: 3-D structural problem (automobile component);
    /// modelled as a 3-D FEM mesh with 3 DOF per node.
    Bcsstk31,
    /// HSCT21954-like: high-speed civil transport 3-D FEM model.
    Hsct21954,
    /// CUBE35-like: 35³ regular 3-D grid (we use a smaller cube whose
    /// factor fits laptop-scale runtimes; side recorded in EXPERIMENTS.md).
    Cube35,
    /// COPTER2-like: helicopter rotor 3-D FEM model.
    Copter2,
}

impl PaperMatrix {
    /// All five test matrices in the paper's order.
    pub const ALL: [PaperMatrix; 5] = [
        PaperMatrix::Bcsstk15,
        PaperMatrix::Bcsstk31,
        PaperMatrix::Hsct21954,
        PaperMatrix::Cube35,
        PaperMatrix::Copter2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PaperMatrix::Bcsstk15 => "BCSSTK15*",
            PaperMatrix::Bcsstk31 => "BCSSTK31*",
            PaperMatrix::Hsct21954 => "HSCT21954*",
            PaperMatrix::Cube35 => "CUBE35*",
            PaperMatrix::Copter2 => "COPTER2*",
        }
    }

    /// Build the synthetic analogue at the default (laptop-scale) size.
    pub fn build(self) -> CscMatrix {
        match self {
            // BCSSTK15: N=3948. 2-D-ish structural: 37x36 mesh, 3 dof.
            PaperMatrix::Bcsstk15 => fem2d(37, 36, 3),
            // BCSSTK31: N=35588 in the paper; scaled-down 3-D FEM.
            PaperMatrix::Bcsstk31 => fem3d(14, 13, 11, 3),
            // HSCT21954: N=21954; elongated 3-D FEM (airframe-like).
            PaperMatrix::Hsct21954 => fem3d(28, 10, 9, 3),
            // CUBE35: regular cube, pure 7-point Laplacian.
            PaperMatrix::Cube35 => grid3d_laplacian(25, 25, 25),
            // COPTER2: N=55476; scaled-down irregular-ish 3-D FEM.
            PaperMatrix::Copter2 => fem3d(16, 12, 10, 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spd_structure(m: &CscMatrix) {
        assert!(m.validate().is_ok());
        // lower triangular storage: every entry at or below diagonal
        for j in 0..m.ncols() {
            for &i in m.col_rows(j) {
                assert!(i >= j, "entry ({i},{j}) above diagonal");
            }
            // diagonal entry present and positive
            assert!(m.get(j, j) > 0.0, "missing/nonpositive diagonal at {j}");
        }
    }

    fn assert_diag_dominant(m: &CscMatrix) {
        // diagonal dominance of the full symmetric matrix => SPD
        let f = m.sym_expand().unwrap();
        for j in 0..f.ncols() {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (k, &i) in f.col_rows(j).iter().enumerate() {
                let v = f.col_values(j)[k];
                if i == j {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(
                diag >= off - 1e-9,
                "column {j} not diagonally dominant: diag={diag} off={off}"
            );
        }
    }

    #[test]
    fn grid2d_shape_and_stencil() {
        let m = grid2d_laplacian(3, 4);
        assert_eq!(m.nrows(), 12);
        assert_spd_structure(&m);
        assert_diag_dominant(&m);
        // interior node (1,1) = index 4: neighbours 3, 5 (x) and 1, 7 (y)
        let f = m.sym_expand().unwrap();
        assert_eq!(f.get(4, 4), 4.0);
        assert_eq!(f.get(4, 3), -1.0);
        assert_eq!(f.get(4, 7), -1.0);
        assert_eq!(f.get(4, 8), 0.0);
    }

    #[test]
    fn grid2d_nnz_count() {
        // k x k grid: k^2 diagonal + 2*k*(k-1) edges in lower triangle
        let k = 5;
        let m = grid2d_laplacian(k, k);
        assert_eq!(m.nnz(), k * k + 2 * k * (k - 1));
    }

    #[test]
    fn grid3d_shape_and_stencil() {
        let m = grid3d_laplacian(3, 3, 3);
        assert_eq!(m.nrows(), 27);
        assert_spd_structure(&m);
        assert_diag_dominant(&m);
        let f = m.sym_expand().unwrap();
        // center node 13 has 6 neighbours
        let deg = f.col_rows(13).len() - 1;
        assert_eq!(deg, 6);
    }

    #[test]
    fn grid2d_9pt_interior_degree() {
        let m = grid2d_9pt(4, 4).sym_expand().unwrap();
        // interior node (1,1) = 5 has 8 neighbours
        assert_eq!(m.col_rows(5).len() - 1, 8);
        assert_diag_dominant(&grid2d_9pt(4, 4));
    }

    #[test]
    fn grid3d_27pt_interior_degree() {
        let m = grid3d_27pt(3, 3, 3).sym_expand().unwrap();
        assert_eq!(m.col_rows(13).len() - 1, 26);
        assert_diag_dominant(&grid3d_27pt(3, 3, 3));
    }

    #[test]
    fn fem_expansion_scales_n_and_stays_spd() {
        let m = fem2d(3, 3, 3);
        assert_eq!(m.nrows(), 27);
        assert_spd_structure(&m);
        assert_diag_dominant(&m);
        let m3 = fem3d(2, 2, 2, 2);
        assert_eq!(m3.nrows(), 16);
        assert_spd_structure(&m3);
        assert_diag_dominant(&m3);
    }

    #[test]
    fn irregular_meshes_are_spd_and_deterministic() {
        let (a, pts) = mesh2d_irregular(8, 7);
        assert_eq!(a.nrows(), 64);
        assert_eq!(pts.len(), 64);
        assert_spd_structure(&a);
        assert_diag_dominant(&a);
        let (b, _) = mesh2d_irregular(8, 7);
        assert_eq!(a, b);
        let (c, _) = mesh2d_irregular(8, 8);
        assert_ne!(a, c, "different seeds give different meshes");
        let (a3, pts3) = mesh3d_irregular(4, 3);
        assert_eq!(a3.nrows(), 64);
        assert_eq!(pts3.len(), 64);
        assert_spd_structure(&a3);
        assert_diag_dominant(&a3);
    }

    #[test]
    fn irregular_mesh_has_varying_degrees() {
        let (a, _) = mesh2d_irregular(12, 1);
        let f = a.sym_expand().unwrap();
        let degs: Vec<usize> = (0..f.ncols()).map(|j| f.col_rows(j).len() - 1).collect();
        let min = *degs.iter().min().unwrap();
        let max = *degs.iter().max().unwrap();
        assert!(max > min, "degrees should vary: all {min}");
    }

    #[test]
    fn random_spd_is_dominant_and_deterministic() {
        let a = random_spd(50, 4, 42);
        let b = random_spd(50, 4, 42);
        assert_eq!(a, b);
        assert_spd_structure(&a);
        assert_diag_dominant(&a);
        let c = random_spd(50, 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_rhs_deterministic_and_bounded() {
        let x = random_rhs(10, 3, 7);
        let y = random_rhs(10, 3, 7);
        assert_eq!(x, y);
        assert!(x.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn paper_matrices_build_and_are_spd() {
        for pm in PaperMatrix::ALL {
            let m = pm.build();
            assert!(m.nrows() > 1000, "{} too small", pm.name());
            assert_spd_structure(&m);
        }
    }

    #[test]
    fn graded_diagonal_is_spd_and_spans_decades() {
        let m = graded_diagonal(32, 12);
        assert_spd_structure(&m);
        assert_diag_dominant(&m);
        let first = m.get(0, 0);
        let last = m.get(31, 31);
        assert_eq!(first, 1.0);
        assert!((last / first - 1e-12).abs() < 1e-24, "last diag {last}");
        // single-node edge case
        let one = graded_diagonal(1, 12);
        assert_eq!(one.get(0, 0), 1.0);
    }

    #[test]
    fn rank_deficient_grid_has_eps_smallest_eigenvalue_direction() {
        let eps = 1e-6;
        let m = rank_deficient_grid(5, 4, eps);
        assert_spd_structure(&m);
        // the constant vector is the exactly-known near-null direction:
        // A·1 = ε·1 (row sums of the Neumann Laplacian are zero)
        let ones = DenseMatrix::column_vector(&[1.0; 20]);
        let y = m.spmv_sym_lower(&ones).unwrap();
        for i in 0..20 {
            assert!((y[(i, 0)] - eps).abs() < 1e-12, "row {i}: {}", y[(i, 0)]);
        }
    }

    #[test]
    fn from_spec_matches_direct_generators() {
        assert_eq!(from_spec("grid2d:5x4").unwrap(), grid2d_laplacian(5, 4));
        assert_eq!(from_spec("grid2d:6").unwrap(), grid2d_laplacian(6, 6));
        assert_eq!(from_spec("grid2d9:4x3").unwrap(), grid2d_9pt(4, 3));
        assert_eq!(
            from_spec("grid3d:3x4x5").unwrap(),
            grid3d_laplacian(3, 4, 5)
        );
        assert_eq!(from_spec("grid3d:4").unwrap(), grid3d_laplacian(4, 4, 4));
        assert_eq!(from_spec("grid3d27:3").unwrap(), grid3d_27pt(3, 3, 3));
        assert_eq!(from_spec("fem2d:4x3").unwrap(), fem2d(4, 3, 3));
        assert_eq!(from_spec("fem2d:4x3:2").unwrap(), fem2d(4, 3, 2));
        assert_eq!(from_spec("fem3d:3x2x2:1").unwrap(), fem3d(3, 2, 2, 1));
        assert_eq!(from_spec("mesh2d:6:9").unwrap(), mesh2d_irregular(6, 9).0);
        assert_eq!(from_spec("mesh3d:3").unwrap(), mesh3d_irregular(3, 42).0);
        assert_eq!(from_spec("random:30").unwrap(), random_spd(30, 4, 42));
        assert_eq!(from_spec("random:30:6:7").unwrap(), random_spd(30, 6, 7));
        assert_eq!(from_spec("graded:20").unwrap(), graded_diagonal(20, 12));
        assert_eq!(from_spec("graded:20:6").unwrap(), graded_diagonal(20, 6));
        assert_eq!(
            from_spec("rankdef:5x4").unwrap(),
            rank_deficient_grid(5, 4, 1e-8)
        );
        assert_eq!(
            from_spec("rankdef:6:1e-4").unwrap(),
            rank_deficient_grid(6, 6, 1e-4)
        );
        assert_eq!(
            from_spec("bcsstk15").unwrap(),
            PaperMatrix::Bcsstk15.build()
        );
        assert_eq!(from_spec("CUBE35").unwrap(), PaperMatrix::Cube35.build());
    }

    #[test]
    fn from_spec_rejects_bad_input() {
        for bad in [
            "",
            "nosuch:4",
            "grid2d",
            "grid2d:",
            "grid2d:0",
            "grid2d:3x4x5",
            "grid2d:abc",
            "fem2d:3x3:0",
            "random:0",
            "random:4:2:1:9",
            "graded:0",
            "graded:10:999",
            "rankdef:4:-1.0",
            "rankdef:4:inf",
            "rankdef:4:nan",
        ] {
            assert!(from_spec(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn from_spec_caps_absurd_dimensions() {
        // every size-bearing branch must refuse overflow-scale requests
        // with a structured error, never attempt the allocation
        for bad in [
            "grid2d:100000x100000",
            "grid2d:18446744073709551615",
            "grid3d:3000000",
            "grid3d27:5000x5000x5000",
            "fem2d:10000x10000:100",
            "fem3d:3000:1000",
            "mesh2d:100000",
            "mesh3d:10000",
            "random:68000000",
            "random:1000000:1000000",
            "graded:100000000",
            "rankdef:100000x100000",
        ] {
            let err = from_spec(bad).unwrap_err();
            assert!(
                err.contains("cap") || err.contains("bad size"),
                "{bad:?}: unexpected error {err:?}"
            );
        }
        // the cap is not overly tight: realistic large specs still pass
        // the size check (we don't build them here — just check dims())
        assert!(from_spec("grid2d:0x4").is_err());
    }
}
