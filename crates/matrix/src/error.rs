//! Error type shared by the matrix crate.

use std::fmt;

/// Errors produced while constructing or operating on matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending (row, col) pair.
        index: (usize, usize),
        /// Matrix shape (rows, cols).
        shape: (usize, usize),
    },
    /// The matrix is structurally invalid (e.g. unsorted or duplicate CSC
    /// row indices).
    InvalidStructure(String),
    /// A numerically singular or non-positive-definite pivot was found.
    NotPositiveDefinite {
        /// Column at which the factorization broke down.
        column: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// A parse or I/O problem while reading matrix text formats.
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::InvalidStructure(msg) => write!(f, "invalid matrix structure: {msg}"),
            MatrixError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            MatrixError::Io(msg) => write!(f, "matrix I/O error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("3x4"));

        let e = MatrixError::IndexOutOfBounds {
            index: (9, 1),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));

        let e = MatrixError::NotPositiveDefinite {
            column: 7,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("column 7"));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: MatrixError = ioe.into();
        assert!(matches!(e, MatrixError::Io(_)));
    }
}
