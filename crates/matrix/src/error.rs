//! Error type shared by the matrix crate.

use std::fmt;

/// Errors produced while constructing or operating on matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending (row, col) pair.
        index: (usize, usize),
        /// Matrix shape (rows, cols).
        shape: (usize, usize),
    },
    /// The matrix is structurally invalid (e.g. unsorted or duplicate CSC
    /// row indices).
    InvalidStructure(String),
    /// A numerically singular or non-positive-definite pivot was found.
    NotPositiveDefinite {
        /// Column at which the factorization broke down.
        column: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// A non-finite value (NaN or ±Inf) where finite data is required.
    NonFinite {
        /// What was being validated (e.g. `"matrix values"`, `"rhs"`).
        what: &'static str,
        /// Index of the first offending entry.
        index: usize,
    },
    /// A parse or I/O problem while reading matrix text formats.
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::InvalidStructure(msg) => write!(f, "invalid matrix structure: {msg}"),
            MatrixError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            MatrixError::NonFinite { what, index } => {
                write!(f, "non-finite value in {what} at index {index}")
            }
            MatrixError::Io(msg) => write!(f, "matrix I/O error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Check that every element of `data` is finite, identifying the first
/// offender by index. This is the single choke point for NaN/Inf
/// rejection across the workspace: matrix ingest (Harwell-Boeing,
/// Matrix-Market), server request validation, and kernel output checks
/// all report the same structured [`MatrixError::NonFinite`].
pub fn validate_finite(what: &'static str, data: &[f64]) -> crate::Result<()> {
    match data.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(index) => Err(MatrixError::NonFinite { what, index }),
    }
}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("3x4"));

        let e = MatrixError::IndexOutOfBounds {
            index: (9, 1),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));

        let e = MatrixError::NotPositiveDefinite {
            column: 7,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("column 7"));
    }

    #[test]
    fn validate_finite_finds_first_offender() {
        assert!(validate_finite("data", &[1.0, 2.0, 3.0]).is_ok());
        assert!(validate_finite("data", &[]).is_ok());
        let e = validate_finite("rhs", &[1.0, f64::NAN, f64::INFINITY]).unwrap_err();
        assert_eq!(
            e,
            MatrixError::NonFinite {
                what: "rhs",
                index: 1
            }
        );
        assert!(e.to_string().contains("rhs"));
        assert!(e.to_string().contains("index 1"));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: MatrixError = ioe.into();
        assert!(matches!(e, MatrixError::Io(_)));
    }
}
