//! Minimal Matrix-Market-style text I/O.
//!
//! Supports the `%%MatrixMarket matrix coordinate real {general|symmetric}`
//! header, 1-based indices, and comment lines — enough to exchange the
//! workspace's matrices with standard tools. Symmetric files are read into
//! lower-triangular storage (the workspace convention).

use crate::{CscMatrix, MatrixError, Result, TripletMatrix};
use std::io::{BufRead, Write};

/// Symmetry declared in a Matrix-Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; the upper triangle is implied.
    Symmetric,
}

/// Read a coordinate-format real matrix from a reader.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<(CscMatrix, Symmetry)> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Io("empty file".to_string()))??;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(MatrixError::Io("missing %%MatrixMarket header".to_string()));
    }
    let sym = if header_lc.contains("symmetric") {
        Symmetry::Symmetric
    } else if header_lc.contains("general") {
        Symmetry::General
    } else {
        return Err(MatrixError::Io(
            "header must declare general or symmetric".to_string(),
        ));
    };
    if !header_lc.contains("coordinate") || !header_lc.contains("real") {
        return Err(MatrixError::Io(
            "only `coordinate real` matrices are supported".to_string(),
        ));
    }

    // Skip comments, read size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| MatrixError::Io("missing size line".to_string()))?;
    let mut it = size_line.split_whitespace();
    let parse = |s: Option<&str>| -> Result<usize> {
        s.ok_or_else(|| MatrixError::Io("short size line".to_string()))?
            .parse()
            .map_err(|e| MatrixError::Io(format!("bad size field: {e}")))
    };
    let nrows = parse(it.next())?;
    let ncols = parse(it.next())?;
    let nnz = parse(it.next())?;

    let mut t = TripletMatrix::new(nrows, ncols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = parse(it.next())?;
        let j: usize = parse(it.next())?;
        let v: f64 = it
            .next()
            .ok_or_else(|| MatrixError::Io("missing value field".to_string()))?
            .parse()
            .map_err(|e| MatrixError::Io(format!("bad value: {e}")))?;
        if !v.is_finite() {
            // reject NaN/Inf at ingest with the same structured error the
            // rest of the workspace uses (see `validate_finite`)
            return Err(MatrixError::NonFinite {
                what: "Matrix-Market values",
                index: seen,
            });
        }
        if i == 0 || j == 0 {
            return Err(MatrixError::Io("indices are 1-based".to_string()));
        }
        let (i, j) = (i - 1, j - 1);
        if sym == Symmetry::Symmetric && i < j {
            return Err(MatrixError::Io(format!(
                "symmetric file stores upper-triangle entry ({}, {})",
                i + 1,
                j + 1
            )));
        }
        t.push(i, j, v)?;
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixError::Io(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok((t.to_csc(), sym))
}

/// Write a matrix in coordinate format. If `sym` is `Symmetric` the matrix
/// must already be lower-triangular.
pub fn write_matrix_market<W: Write>(writer: &mut W, m: &CscMatrix, sym: Symmetry) -> Result<()> {
    let kind = match sym {
        Symmetry::General => "general",
        Symmetry::Symmetric => "symmetric",
    };
    writeln!(writer, "%%MatrixMarket matrix coordinate real {kind}")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for j in 0..m.ncols() {
        for (k, &i) in m.col_rows(j).iter().enumerate() {
            if sym == Symmetry::Symmetric && i < j {
                return Err(MatrixError::InvalidStructure(
                    "symmetric write requires lower-triangular storage".to_string(),
                ));
            }
            writeln!(writer, "{} {} {:.17e}", i + 1, j + 1, m.col_values(j)[k])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::BufReader;

    #[test]
    fn round_trip_symmetric() {
        let m = gen::grid2d_laplacian(4, 3);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m, Symmetry::Symmetric).unwrap();
        let (m2, sym) = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(sym, Symmetry::Symmetric);
        assert_eq!(m, m2);
    }

    #[test]
    fn round_trip_general() {
        let m = gen::random_spd(20, 3, 1).sym_expand().unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m, Symmetry::General).unwrap();
        let (m2, sym) = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(sym, Symmetry::General);
        assert!(m.to_dense().max_abs_diff(&m2.to_dense()).unwrap() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    \n\
                    2 2 2\n\
                    % another\n\
                    1 1 1.5\n\
                    2 2 2.5\n";
        let (m, _) = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 2.5);
    }

    #[test]
    fn rejects_bad_header() {
        let text = "not a matrix\n1 1 0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_upper_entry_in_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn symmetric_write_rejects_full_matrix() {
        let m = gen::grid2d_laplacian(3, 3).sym_expand().unwrap();
        let mut buf = Vec::new();
        assert!(write_matrix_market(&mut buf, &m, Symmetry::Symmetric).is_err());
    }
}
