//! Column-major dense matrices.
//!
//! [`DenseMatrix`] is the workhorse container for supernode blocks, frontal
//! matrices, and (multi-)right-hand-side vectors throughout the workspace.
//! Storage is column-major (Fortran order) because every dense kernel in
//! `trisolv-factor` walks columns, and because supernode trapezoids are
//! naturally built one column at a time.

use crate::{MatrixError, Result};

/// A column-major dense `f64` matrix.
///
/// Element `(i, j)` lives at `data[i + j * nrows]`. An `n x m` right-hand
/// side / solution block is represented as a `DenseMatrix` with `m` columns;
/// a plain vector is the `m == 1` case.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero-filled matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a column-major data vector.
    ///
    /// Returns an error if `data.len() != nrows * ncols`.
    pub fn from_column_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(MatrixError::InvalidStructure(format!(
                "column-major data length {} does not match {}x{}",
                data.len(),
                nrows,
                ncols
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Create a matrix from rows of data (row-major input, converted).
    ///
    /// Returns an error if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        for r in rows {
            if r.len() != ncols {
                return Err(MatrixError::InvalidStructure(
                    "ragged rows in from_rows".to_string(),
                ));
            }
        }
        let mut m = Self::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        Ok(m)
    }

    /// Build a single-column matrix (a vector) from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        DenseMatrix {
            nrows: v.len(),
            ncols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Borrow the raw column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw column-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return the raw column-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.nrows || j >= self.ncols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i + j * self.nrows])
    }

    /// Copy a rectangular sub-block `[r0..r1) x [c0..c1)` into a new matrix.
    pub fn sub_block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Self {
        assert!(r0 <= r1 && r1 <= self.nrows && c0 <= c1 && c1 <= self.ncols);
        let mut out = Self::zeros(r1 - r0, c1 - c0);
        for j in c0..c1 {
            let src = &self.col(j)[r0..r1];
            out.col_mut(j - c0).copy_from_slice(src);
        }
        out
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max-absolute-entry norm.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |a, &v| a.max(v.abs()))
    }

    /// `self += alpha * other`, elementwise.
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Dense matrix-matrix product `self * other` (naive reference kernel;
    /// the tuned kernels live in `trisolv-factor::blas`).
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let b = other[(k, j)];
                if b == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let o_col = out.col_mut(j);
                for i in 0..self.nrows {
                    o_col[i] += a_col[i] * b;
                }
            }
        }
        Ok(out)
    }

    /// Fill with values from an iterator in column-major order, for tests.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> f64) {
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                self.data[i + j * self.nrows] = f(i, j);
            }
        }
    }

    /// Maximum elementwise absolute difference between two equal-shaped
    /// matrices; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .fold(0.0f64, |a, (x, y)| a.max((x - y).abs())),
        )
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = DenseMatrix::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        m[(2, 1)] = 5.0;
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m.get(2, 1).unwrap(), 5.0);
        assert!(m.get(3, 0).is_err());
    }

    #[test]
    fn column_major_layout() {
        let m = DenseMatrix::from_column_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // data = [a00, a10, a01, a11]
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_column_major_rejects_bad_length() {
        assert!(DenseMatrix::from_column_major(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn sub_block_extracts() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.fill_with(|i, j| (i * 10 + j) as f64);
        let s = m.sub_block(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 12.0);
        assert_eq!(s[(1, 1)], 23.0);
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!((m.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn axpy_adds() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::identity(2);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 0.0);
        let c = DenseMatrix::zeros(3, 2);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn max_abs_diff_detects() {
        let a = DenseMatrix::identity(2);
        let mut b = DenseMatrix::identity(2);
        b[(1, 0)] = 0.5;
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        assert_eq!(a.max_abs_diff(&DenseMatrix::zeros(3, 3)), None);
    }
}
