//! Harwell-Boeing (HB) sparse-matrix file format.
//!
//! The paper's test matrices (BCSSTK15, BCSSTK31, …) are distributed in
//! this fixed-width FORTRAN format. This module reads and writes the
//! assembled real subset (`RSA` symmetric / `RUA` unsymmetric): header
//! card, pointer/index/value cards with FORTRAN format descriptors like
//! `(10I8)` or `(5E16.8)`. Right-hand-side blocks are skipped on read.

use crate::{CscMatrix, MatrixError, Result};
use std::io::{BufRead, Write};

/// Largest dimension or entry count the reader accepts from an HB header
/// (2²⁸ ≈ 268M — far beyond any matrix this workspace can factor, but
/// small enough that a corrupt or hostile header cannot size an
/// allocation measured in terabytes).
const MAX_HB_DIM: usize = 1 << 28;

/// A parsed FORTRAN edit descriptor: `count` fields of `width` characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Format {
    count: usize,
    width: usize,
}

/// Parse descriptors such as `(10I8)`, `(5E16.8)`, `(1P,4D20.12)`,
/// `(4E20.12E3)` — extract the field count and width; the kind letter and
/// precision are irrelevant for fixed-width slicing.
fn parse_format(s: &str) -> Result<Format> {
    let inner = s
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .trim();
    // drop scale factors like "1P," or "1P"
    match inner.find(|c: char| "IEDFG".contains(c.to_ascii_uppercase())) {
        Some(pos) => {
            // find the start of the repeat count before the kind letter
            let head = &inner[..pos];
            let count_start = head
                .rfind(|c: char| !c.is_ascii_digit())
                .map_or(0, |i| i + 1);
            let count: usize = if head[count_start..].is_empty() {
                1
            } else {
                head[count_start..]
                    .parse()
                    .map_err(|e| MatrixError::Io(format!("bad repeat count in {s:?}: {e}")))?
            };
            let tail = &inner[pos + 1..];
            let wend = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            let width: usize = tail[..wend]
                .parse()
                .map_err(|e| MatrixError::Io(format!("bad width in {s:?}: {e}")))?;
            Ok(Format { count, width })
        }
        None => Err(MatrixError::Io(format!("unrecognized format {s:?}"))),
    }
}

/// Read `n` fixed-width fields from `lines`, parsing each with `parse`.
fn read_fields<R: BufRead, T>(
    lines: &mut std::io::Lines<R>,
    fmt: Format,
    n: usize,
    mut parse: impl FnMut(&str) -> Result<T>,
) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let line = lines
            .next()
            .ok_or_else(|| MatrixError::Io("unexpected end of HB file".to_string()))?
            .map_err(MatrixError::from)?;
        for k in 0..fmt.count {
            if out.len() == n {
                break;
            }
            let start = k * fmt.width;
            if start >= line.len() {
                break;
            }
            let end = (start + fmt.width).min(line.len());
            let field = line[start..end].trim();
            if field.is_empty() {
                continue;
            }
            out.push(parse(field)?);
        }
    }
    Ok(out)
}

/// Read an assembled real Harwell-Boeing matrix (`RSA`/`RUA`/`PSA`/`PUA`).
///
/// Symmetric (`?SA`) files produce lower-triangular storage (this
/// workspace's convention); pattern files (`P??`) get unit values. Returns
/// the matrix and the title string.
pub fn read_harwell_boeing<R: BufRead>(reader: R) -> Result<(CscMatrix, String)> {
    let mut lines = reader.lines();
    let next_line = |lines: &mut std::io::Lines<R>| -> Result<String> {
        lines
            .next()
            .ok_or_else(|| MatrixError::Io("truncated HB header".to_string()))?
            .map_err(MatrixError::from)
    };
    // card 1: title + key
    let l1 = next_line(&mut lines)?;
    let title = l1.get(..72.min(l1.len())).unwrap_or("").trim().to_string();
    // card 2: card counts
    let l2 = next_line(&mut lines)?;
    let counts: Vec<i64> = l2
        .split_whitespace()
        .map(|f| {
            f.parse()
                .map_err(|e| MatrixError::Io(format!("bad count: {e}")))
        })
        .collect::<Result<_>>()?;
    if counts.len() < 4 {
        return Err(MatrixError::Io("short card-count line".to_string()));
    }
    let rhscrd = counts.get(4).copied().unwrap_or(0);
    // card 3: type + dimensions
    let l3 = next_line(&mut lines)?;
    let mxtype = l3.get(..3).unwrap_or("").to_ascii_uppercase();
    let dims: Vec<i64> = l3
        .get(3..)
        .unwrap_or("")
        .split_whitespace()
        .map(|f| {
            f.parse()
                .map_err(|e| MatrixError::Io(format!("bad dim: {e}")))
        })
        .collect::<Result<_>>()?;
    if dims.len() < 3 {
        return Err(MatrixError::Io("short dimension line".to_string()));
    }
    // Reject negative and overflow-sized headers before any allocation is
    // sized from them: a negative i64 cast to usize wraps to ~2^64 and an
    // absurd nnz would drive `Vec::with_capacity` into the allocator.
    let checked_dim = |v: i64, what: &str| -> Result<usize> {
        if v < 0 {
            return Err(MatrixError::Io(format!(
                "negative {what} in HB header: {v}"
            )));
        }
        if v as u64 > MAX_HB_DIM as u64 {
            return Err(MatrixError::Io(format!(
                "{what} {v} exceeds the {MAX_HB_DIM} HB reader cap"
            )));
        }
        Ok(v as usize)
    };
    let nrow = checked_dim(dims[0], "row count")?;
    let ncol = checked_dim(dims[1], "column count")?;
    let nnz = checked_dim(dims[2], "entry count")?;
    match nrow.checked_mul(ncol) {
        Some(cells) if nnz <= cells => {}
        _ => {
            return Err(MatrixError::Io(format!(
                "HB header claims {nnz} entries for a {nrow}x{ncol} matrix"
            )));
        }
    }
    let kind = mxtype.chars().next().unwrap_or(' ');
    let sym = mxtype.chars().nth(1).unwrap_or(' ');
    let assembled = mxtype.chars().nth(2).unwrap_or(' ');
    if assembled != 'A' {
        return Err(MatrixError::Io(format!(
            "unsupported HB storage {mxtype:?} (only assembled)"
        )));
    }
    if kind != 'R' && kind != 'P' {
        return Err(MatrixError::Io(format!(
            "unsupported HB value type {mxtype:?} (only real/pattern)"
        )));
    }
    // card 4: formats (clamp column ranges — writers often drop trailing
    // blanks)
    let l4 = next_line(&mut lines)?;
    let clamp = |a: usize, b: usize| -> &str {
        let len = l4.len();
        &l4[a.min(len)..b.min(len)]
    };
    let ptrfmt = parse_format(clamp(0, 16))?;
    let indfmt = parse_format(clamp(16, 32))?;
    let valfmt = if kind == 'R' {
        Some(parse_format(clamp(32, 52))?)
    } else {
        None
    };
    // card 5 (optional): RHS descriptor — skipped
    if rhscrd > 0 {
        let _ = next_line(&mut lines)?;
    }

    let parse_usize = |f: &str| -> Result<usize> {
        f.parse()
            .map_err(|e| MatrixError::Io(format!("bad index {f:?}: {e}")))
    };
    let parse_f64 = |f: &str| -> Result<f64> {
        let normalized = f.replace(['D', 'd'], "E");
        normalized
            .parse()
            .map_err(|e| MatrixError::Io(format!("bad value {f:?}: {e}")))
    };

    let colptr_raw = read_fields(&mut lines, ptrfmt, ncol + 1, parse_usize)?;
    let rowidx_raw = read_fields(&mut lines, indfmt, nnz, parse_usize)?;
    let values = match valfmt {
        Some(f) => read_fields(&mut lines, f, nnz, parse_f64)?,
        None => vec![1.0; nnz],
    };
    // Reject NaN/Inf at ingest (overflowing exponents parse to Inf), so
    // bad data fails here with a structured error, not at solve time.
    crate::error::validate_finite("HB matrix values", &values)?;
    // 1-based → 0-based
    let colptr: Vec<usize> = colptr_raw
        .iter()
        .map(|&p| {
            p.checked_sub(1)
                .ok_or_else(|| MatrixError::Io("zero column pointer".to_string()))
        })
        .collect::<Result<_>>()?;
    let rowidx: Vec<usize> = rowidx_raw
        .iter()
        .map(|&i| {
            i.checked_sub(1)
                .ok_or_else(|| MatrixError::Io("zero row index".to_string()))
        })
        .collect::<Result<_>>()?;
    let m = CscMatrix::from_parts(nrow, ncol, colptr, rowidx, values)?;
    if sym == 'S' {
        // verify lower-triangular storage
        for j in 0..m.ncols() {
            if m.col_rows(j).iter().any(|&i| i < j) {
                return Err(MatrixError::Io(
                    "symmetric HB file stores upper-triangle entries".to_string(),
                ));
            }
        }
    }
    Ok((m, title))
}

/// Write a matrix in Harwell-Boeing format. `symmetric` selects `RSA`
/// (matrix must be lower-triangular) vs `RUA`.
pub fn write_harwell_boeing<W: Write>(
    writer: &mut W,
    m: &CscMatrix,
    title: &str,
    key: &str,
    symmetric: bool,
) -> Result<()> {
    if symmetric {
        for j in 0..m.ncols() {
            if m.col_rows(j).iter().any(|&i| i < j) {
                return Err(MatrixError::InvalidStructure(
                    "RSA write requires lower-triangular storage".to_string(),
                ));
            }
        }
    }
    let ncol = m.ncols();
    let nnz = m.nnz();
    let per_ptr = 8usize;
    let per_ind = 8usize;
    let per_val = 3usize;
    let ptrcrd = (ncol + 1).div_ceil(per_ptr);
    let indcrd = nnz.div_ceil(per_ind).max(1);
    let valcrd = nnz.div_ceil(per_val).max(1);
    let totcrd = ptrcrd + indcrd + valcrd;
    writeln!(
        writer,
        "{:<72}{:<8}",
        title.chars().take(72).collect::<String>(),
        key
    )?;
    writeln!(
        writer,
        "{totcrd:14}{ptrcrd:14}{indcrd:14}{valcrd:14}{:14}",
        0
    )?;
    let mxtype = if symmetric { "RSA" } else { "RUA" };
    writeln!(
        writer,
        "{mxtype}           {:14}{:14}{:14}{:14}",
        m.nrows(),
        ncol,
        nnz,
        0
    )?;
    writeln!(
        writer,
        "{:<16}{:<16}{:<20}{:<20}",
        format!("({per_ptr}I12)"),
        format!("({per_ind}I12)"),
        format!("({per_val}E25.16)"),
        ""
    )?;
    // pointers (1-based)
    let mut field = 0;
    for j in 0..=ncol {
        write!(writer, "{:12}", m.colptr()[j] + 1)?;
        field += 1;
        if field == per_ptr {
            writeln!(writer)?;
            field = 0;
        }
    }
    if field != 0 {
        writeln!(writer)?;
    }
    // row indices (1-based)
    field = 0;
    for &i in m.rowidx() {
        write!(writer, "{:12}", i + 1)?;
        field += 1;
        if field == per_ind {
            writeln!(writer)?;
            field = 0;
        }
    }
    if field != 0 {
        writeln!(writer)?;
    }
    // values
    field = 0;
    for &v in m.values() {
        write!(writer, "{:25.16E}", v)?;
        field += 1;
        if field == per_val {
            writeln!(writer)?;
            field = 0;
        }
    }
    if field != 0 {
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::BufReader;

    #[test]
    fn parse_format_variants() {
        assert_eq!(
            parse_format("(10I8)").unwrap(),
            Format {
                count: 10,
                width: 8
            }
        );
        assert_eq!(
            parse_format("(5E16.8)").unwrap(),
            Format {
                count: 5,
                width: 16
            }
        );
        assert_eq!(
            parse_format("(1P,4D20.12)").unwrap(),
            Format {
                count: 4,
                width: 20
            }
        );
        assert_eq!(
            parse_format(" (16I5) ").unwrap(),
            Format {
                count: 16,
                width: 5
            }
        );
        assert_eq!(
            parse_format("(I10)").unwrap(),
            Format {
                count: 1,
                width: 10
            }
        );
        assert!(parse_format("(XYZ)").is_err());
    }

    #[test]
    fn round_trip_symmetric() {
        let m = gen::grid2d_laplacian(5, 4);
        let mut buf = Vec::new();
        write_harwell_boeing(&mut buf, &m, "grid 5x4 laplacian", "GRID54", true).unwrap();
        let (m2, title) = read_harwell_boeing(BufReader::new(&buf[..])).unwrap();
        assert_eq!(title, "grid 5x4 laplacian");
        assert_eq!(m, m2);
    }

    #[test]
    fn round_trip_unsymmetric() {
        let m = gen::random_spd(15, 3, 1).sym_expand().unwrap();
        let mut buf = Vec::new();
        write_harwell_boeing(&mut buf, &m, "full random", "RND15", false).unwrap();
        let (m2, _) = read_harwell_boeing(BufReader::new(&buf[..])).unwrap();
        assert!(m.to_dense().max_abs_diff(&m2.to_dense()).unwrap() < 1e-12);
    }

    #[test]
    fn reads_hand_written_rsa() {
        // 3x3 symmetric: diag 4, subdiag -1 — written in classic packed
        // fixed-width fields with D exponents
        let text = "\
tiny test matrix                                                        TINY
             3             1             1             1
RSA                        3             3             5             0
(6I3)           (6I3)           (5D12.4)            \n\
  1  3  5  6
  1  2  2  3  3
  0.4000D+01 -0.1000D+01  0.4000D+01 -0.1000D+01  0.4000D+01
";
        let (m, title) = read_harwell_boeing(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(title, "tiny test matrix");
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(2, 2), 4.0);
    }

    #[test]
    fn pattern_matrix_gets_unit_values() {
        let text = "\
pattern only                                                            PAT
             2             1             1             0
PSA                        2             2             2             0
(6I3)           (6I3)
  1  2  3
  1  2
";
        let (m, _) = read_harwell_boeing(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_unsupported_types() {
        let text = "\
complex                                                                 CPLX
             2             1             1             0
CSA                        2             2             1             0
(6I3)           (6I3)           (5D12.4)
  1  2
  1
  0.1D+01
";
        assert!(read_harwell_boeing(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_negative_and_absurd_headers() {
        // negative dimension: must not wrap through `as usize`
        let neg = "\
bad                                                                     BAD
             3             1             1             1
RSA                       -3             3             5             0
(6I3)           (6I3)           (5D12.4)
";
        let e = read_harwell_boeing(BufReader::new(neg.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("negative"), "{e}");
        // overflow-sized entry count: rejected before allocation
        let huge = "\
bad                                                                     BAD
             3             1             1             1
RSA                 99999999      99999999 99999999999999             0
(6I3)           (6I3)           (5D12.4)
";
        assert!(read_harwell_boeing(BufReader::new(huge.as_bytes())).is_err());
        // nnz larger than nrow*ncol is structurally impossible
        let toomany = "\
bad                                                                     BAD
             3             1             1             1
RSA                        2             2             9             0
(6I3)           (6I3)           (5D12.4)
";
        let e = read_harwell_boeing(BufReader::new(toomany.as_bytes())).unwrap_err();
        assert!(e.to_string().contains("claims"), "{e}");
    }

    #[test]
    fn rejects_non_finite_values_at_ingest() {
        // 0.4D+999 overflows f64 and parses to +Inf
        let text = "\
tiny test matrix                                                        TINY
             3             1             1             1
RSA                        3             3             5             0
(6I3)           (6I3)           (5D12.4)            \n\
  1  3  5  6
  1  2  2  3  3
 0.4000D+999 -0.1000D+01 0.40000D+01 -0.1000D+01 0.40000D+01
";
        let e = read_harwell_boeing(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(
            matches!(e, MatrixError::NonFinite { .. }),
            "expected NonFinite, got {e}"
        );
    }

    #[test]
    fn rejects_upper_entries_in_rsa() {
        let m = gen::grid2d_laplacian(3, 3).sym_expand().unwrap();
        let mut buf = Vec::new();
        assert!(write_harwell_boeing(&mut buf, &m, "bad", "BAD", true).is_err());
    }

    #[test]
    fn solves_after_round_trip() {
        let m = gen::fem2d(4, 4, 2);
        let mut buf = Vec::new();
        write_harwell_boeing(&mut buf, &m, "fem", "FEM", true).unwrap();
        let (m2, _) = read_harwell_boeing(BufReader::new(&buf[..])).unwrap();
        // values survive exactly enough for numerics
        assert!(m.to_dense().max_abs_diff(&m2.to_dense()).unwrap() < 1e-12);
        assert!(m2.validate().is_ok());
    }
}
