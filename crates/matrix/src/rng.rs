//! A small deterministic pseudo-random number generator.
//!
//! The workspace must build in offline environments where no external
//! registry is reachable, so the generators and tests use this in-tree
//! PRNG instead of the `rand` crate. It is a splitmix64-seeded
//! xorshift64* generator: statistically solid for test-data purposes,
//! trivially reproducible, and emphatically **not** cryptographic.

/// Deterministic xorshift64* generator seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Equal seeds produce equal streams on every
    /// platform; the seed is whitened through splitmix64 so small seeds
    /// (0, 1, 2, …) still start from well-mixed states.
    pub fn seed_from_u64(seed: u64) -> Self {
        // one splitmix64 step; avoids the all-zero xorshift fixed point
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        Rng {
            state: z | 1, // never zero
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let width = (hi - lo) as u64;
        // multiply-shift mapping; bias is < 2⁻⁶⁴·width, irrelevant here
        lo + ((self.next_u64() as u128 * width as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_usize_covers_and_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_usize(2, 7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.range_f64(-0.35, 0.35);
            assert!((-0.35..0.35).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} of 10000");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Rng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
