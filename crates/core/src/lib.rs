//! Parallel sparse forward elimination and back substitution — the primary
//! contribution of Gupta & Kumar (SC 1995).
//!
//! Given the supernodal Cholesky factor `L` of a permuted SPD matrix, this
//! crate solves `L·Y = B` (forward elimination) and `Lᵀ·X = Y` (back
//! substitution):
//!
//! * [`seq`] — sequential supernodal solvers (the single-processor
//!   baseline of every speedup figure) and the end-to-end
//!   [`seq::SparseCholeskySolver`] driver;
//! * [`mapping`] — the **subtree-to-subcube** assignment of the supernodal
//!   elimination tree to processor groups;
//! * [`pipeline`] — the pipelined block-cyclic trapezoid kernels
//!   (column-priority and row-priority forward elimination, column-priority
//!   back substitution) plus closed-form schedule generators reproducing
//!   the paper's Figures 3 and 4;
//! * [`tree`] — the full simulated-parallel solvers over the elimination
//!   tree (sequential subtrees below `log p`, pipelined kernels above);
//! * [`redistribute`] — conversion of a supernode between 2-D and 1-D
//!   block-cyclic layouts (all-to-all personalized transposes), the
//!   factorization→solve handoff the paper's Section 4 analyzes;
//! * [`dense`] — Heath–Romine style parallel *dense* triangular solvers
//!   (1-D pipelined, and the unscalable 2-D variant) used as the
//!   scalability yardstick in the paper's Figure 5 table;
//! * [`refine`] — certified solves: iterative refinement with a
//!   componentwise backward-error certificate, plus the end-to-end
//!   equilibrate→regularize→factor→refine pipeline
//!   ([`refine::certified_solve`]) (extension);
//! * [`plan`] — precomputed solve schedules ([`plan::SolvePlan`]): the
//!   topological level ordering of the supernodal tree, static dependency
//!   counts, and child→parent scatter index maps shared by the
//!   shared-memory executor;
//! * [`threaded`] — a modern shared-memory **level-scheduled task-pool**
//!   solver built on [`plan::SolvePlan`], with reusable
//!   [`threaded::SolveWorkspace`] buffers and blocked multi-RHS kernels
//!   (extension; not part of the paper reproduction path).

pub mod dense;
pub mod driver;
pub mod estimate;
/// Re-export of the subtree-to-subcube mapping (shared with the
/// factorization phase, hence defined in `trisolv-factor`).
pub mod mapping {
    pub use trisolv_factor::mapping::*;
}
pub mod pipeline;
pub mod plan;
pub mod redistribute;
pub mod refine;
pub mod seq;
pub mod threaded;
pub mod tree;

pub use driver::{ParallelSolver, ParallelSolverOptions};
pub use mapping::SubcubeMapping;
pub use plan::{PlanError, SolvePlan, SubtreeSchedule};
pub use refine::{
    certified_solve, certified_solve_mixed, CertifiedSolve, CertifyOptions, MixedSolve,
    RefineOptions, SolveReport,
};
pub use seq::{SparseCholeskySolver, SparseCholeskySolverF32};
pub use threaded::{default_threads, SolveWorkspace, ThreadedSolver};
