//! Shared-memory parallel triangular solves (extension, not part of the
//! paper reproduction path).
//!
//! A modern counterpart to the paper's distributed-memory algorithms.
//! The paper's core observation — triangular solves perform so few flops
//! that scheduling and memory overhead dominate — drives the design, and
//! its remedy (subtree-to-subcube mapping) has a direct thread-level
//! analogue implemented here:
//!
//! * a [`SubtreeSchedule`] cuts the elimination forest at a cost-balanced
//!   frontier and bin-packs the disjoint subtrees below the cut onto the
//!   worker slots; each subtree executes as ONE sequential task with no
//!   atomics, queue operations, or wakeups inside it, writing into a
//!   per-slot arena that no other thread touches;
//! * only the few supernodes *above* the cut go through fine-grained
//!   dependency dispatch: per-thread ready lists fed by atomic dependency
//!   counters, with spin-then-park idling instead of a global
//!   mutex + condvar round-trip per supernode;
//! * numerical work per supernode is blocked over all right-hand sides
//!   through the dense kernels in [`trisolv_factor::blas`];
//! * every intermediate lives in a reusable [`SolveWorkspace`], so
//!   repeated solves against one factor allocate only their output.
//!
//! Every supernode performs bit-identical arithmetic regardless of thread
//! count or which buffer it lands in (gather, children extend-added in
//! ascending order, triangle, rectangle — always in that order), so
//! results are bit-identical to [`crate::seq`] for any `nthreads`.

use std::borrow::Cow;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use trisolv_factor::{blas, FScalar, FactorBlocks, SupernodalFactor};
use trisolv_matrix::DenseMatrix;

pub use crate::plan::{PlanError, SolvePlan, SubtreeSchedule};

/// Sentinel for "not assigned to any slot arena".
const NONE: usize = usize::MAX;

/// Consecutive empty scans before a worker parks instead of spinning.
const SPIN_ROUNDS: u32 = 64;

/// Lock a workspace mutex, recovering from poison. Every task starts by
/// clearing and resizing its buffer, so data left behind by a panicked
/// task is never observed — inheriting a poisoned guard is safe, and it
/// keeps a pooled workspace usable after a caught panic instead of
/// cascading `unwrap` failures through every later solve.
fn lock_ws<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Widen a solved column of storage-scalar values into an `f64` output
/// slice. Identity (a plain copy) for `f64`; exact widening for `f32`.
#[inline]
fn publish_col<S: FScalar>(dst: &mut [f64], src: &[S]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f64();
    }
}

/// One slot's private working storage: a contiguous arena holding the
/// working vectors of every supernode in the slot's subtree tasks, plus a
/// scratch block for the widest top-copy / below-gather either pass needs.
/// Only the owning worker thread ever touches it. Stored in the factor's
/// scalar — the narrow lane's intermediates stay narrow.
struct Arena<S: FScalar> {
    buf: Vec<S>,
    rows: usize,
    scratch: Vec<S>,
    max_h: usize,
}

/// A dispatch unit: a whole subtree task, or one supernode above the cut.
#[derive(Clone, Copy)]
enum Unit {
    Task(usize),
    Top(usize),
}

/// Reusable per-factor solve buffers. Subtree-task supernodes live in
/// per-slot arenas (no locks); supernodes above the cut — and subtree
/// roots handing their update across threads — use mutex-guarded shared
/// buffers, uncontended except for brief child reads at gather time.
/// Repeated solves through one workspace do not allocate.
///
/// Generic over the factor's storage scalar (default `f64`); an `f32`
/// factor's workspace holds `f32` buffers — the whole solve's working set
/// halves along with the factor.
pub struct SolveWorkspace<S: FScalar = f64> {
    nrhs: usize,
    /// Thread count of the schedule the arena layout was built for
    /// (`0` = not built yet). Schedules are deterministic per
    /// `(plan, nthreads)`, so this is the only cache key needed.
    sched_threads: usize,
    bufs: Vec<Mutex<Vec<S>>>,
    /// Dependency counters for dispatch units (subtree tasks first, then
    /// top supernodes).
    deps: Vec<AtomicUsize>,
    /// Per-slot ready lists for subtree tasks: anyone may push, only the
    /// owning worker pops (its arena is single-owner).
    task_ready: Vec<Mutex<Vec<usize>>>,
    /// Per-worker ready lists for top units; idle workers steal from any.
    top_ready: Vec<Mutex<Vec<usize>>>,
    arenas: Vec<Arena<S>>,
    /// Row offset of each supernode inside its slot arena (`NONE` on top).
    arena_off: Vec<usize>,
    /// Slot owning each supernode's arena region (`NONE` on top).
    arena_slot: Vec<usize>,
    /// Compact work buffer for the serial backward path (`max_h` rows per
    /// right-hand side), grown lazily on first use.
    serial_work: Vec<S>,
}

impl<S: FScalar> SolveWorkspace<S> {
    /// Build a workspace for solves with up to `nrhs` right-hand sides.
    /// Arena layout is derived from the solver's schedule on first use.
    pub fn new(plan: &SolvePlan, nrhs: usize) -> SolveWorkspace<S> {
        SolveWorkspace {
            nrhs,
            sched_threads: 0,
            bufs: (0..plan.nsup()).map(|_| Mutex::new(Vec::new())).collect(),
            deps: Vec::new(),
            task_ready: Vec::new(),
            top_ready: Vec::new(),
            arenas: Vec::new(),
            arena_off: Vec::new(),
            arena_slot: Vec::new(),
            serial_work: Vec::new(),
        }
    }

    /// Grow the workspace if `nrhs` exceeds the constructed width (the
    /// only case where a solve through this workspace reallocates).
    fn ensure(&mut self, plan: &SolvePlan, nrhs: usize) {
        assert_eq!(self.bufs.len(), plan.nsup(), "workspace/plan mismatch");
        if nrhs <= self.nrhs {
            return;
        }
        self.nrhs = nrhs;
        for a in &mut self.arenas {
            a.buf.clear();
            a.buf.resize(a.rows * nrhs, S::ZERO);
            a.scratch.clear();
            a.scratch.resize(a.max_h * nrhs, S::ZERO);
        }
    }

    /// (Re)build the arena layout for `sched`. Cached on the schedule's
    /// thread count — schedules are deterministic, so two solvers over the
    /// same plan with the same thread count share one layout.
    fn ensure_schedule(&mut self, plan: &SolvePlan, sched: &SubtreeSchedule) {
        let t = sched.nthreads();
        if self.sched_threads == t {
            return;
        }
        let nsup = plan.nsup();
        self.arena_off = vec![NONE; nsup];
        self.arena_slot = vec![NONE; nsup];
        self.arenas.clear();
        for i in 0..t {
            let mut rows = 0usize;
            let mut max_h = 0usize;
            for &task in sched.slot(i) {
                for &s in sched.task(task) {
                    self.arena_off[s] = rows;
                    self.arena_slot[s] = i;
                    rows += plan.height(s);
                    max_h = max_h.max(plan.height(s));
                }
            }
            self.arenas.push(Arena {
                buf: vec![S::ZERO; rows * self.nrhs],
                rows,
                scratch: vec![S::ZERO; max_h * self.nrhs],
                max_h,
            });
        }
        let units = sched.n_tasks() + sched.top().len();
        self.deps = (0..units).map(|_| AtomicUsize::new(0)).collect();
        self.task_ready = (0..t).map(|_| Mutex::new(Vec::new())).collect();
        self.top_ready = (0..t).map(|_| Mutex::new(Vec::new())).collect();
        self.sched_threads = t;
    }
}

/// The default executor width: `std::thread::available_parallelism`,
/// falling back to 1 when the parallelism cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Subtree-mapped shared-memory solver over one supernodal factor.
///
/// Construction validates the factor's structure and precomputes both the
/// [`SolvePlan`] and the [`SubtreeSchedule`];
/// [`forward`](ThreadedSolver::forward) /
/// [`backward`](ThreadedSolver::backward) then run allocation-free
/// (modulo their output) through a caller-held [`SolveWorkspace`].
///
/// Generic over the factor representation (default: the `f64`
/// [`SupernodalFactor`]); instantiating with `SupernodalFactorF32` gives
/// the mixed-precision solve lane the same subtree-mapped executor with
/// `f32` arenas. Per-supernode operation order is precision-independent,
/// so each lane stays bit-identical to its sequential counterpart at any
/// thread count.
pub struct ThreadedSolver<'f, F: FactorBlocks = SupernodalFactor> {
    factor: &'f F,
    plan: Cow<'f, SolvePlan>,
    schedule: Cow<'f, SubtreeSchedule>,
}

impl<'f, F: FactorBlocks> ThreadedSolver<'f, F> {
    /// Plan solves over `factor`. Fails with a structured error if a
    /// child supernode's below-rows do not nest in its parent's pattern
    /// (the old fork-join solver walked off the end of an array instead).
    pub fn new(factor: &'f F) -> Result<ThreadedSolver<'f, F>, PlanError> {
        let plan = SolvePlan::new(factor.partition())?;
        let schedule = plan.subtree_schedule(default_threads());
        Ok(ThreadedSolver {
            factor,
            plan: Cow::Owned(plan),
            schedule: Cow::Owned(schedule),
        })
    }

    /// Reuse a plan built earlier for this same factor (e.g. one held in a
    /// factor cache) instead of rebuilding it. Plan construction is
    /// `O(|L| pattern)`, so long-lived services that keep a factor
    /// resident should build the plan once and borrow it per solve.
    ///
    /// # Panics
    /// If `plan` was built from a different partition (order or supernode
    /// count mismatch).
    pub fn with_plan(factor: &'f F, plan: &'f SolvePlan) -> ThreadedSolver<'f, F> {
        assert_eq!(plan.n(), factor.n(), "plan/factor order mismatch");
        assert_eq!(
            plan.nsup(),
            factor.nsup(),
            "plan/factor supernode count mismatch"
        );
        let schedule = plan.subtree_schedule(default_threads());
        ThreadedSolver {
            factor,
            plan: Cow::Borrowed(plan),
            schedule: Cow::Owned(schedule),
        }
    }

    /// Reuse both a plan and a schedule built earlier for this factor.
    /// Building the schedule is `O(nsup log nsup)`, so services that solve
    /// against a cached factor should build it once per (factor, thread
    /// count) and borrow it per solve.
    ///
    /// # Panics
    /// If `plan` or `schedule` were built for a different partition.
    pub fn with_plan_schedule(
        factor: &'f F,
        plan: &'f SolvePlan,
        schedule: &'f SubtreeSchedule,
    ) -> ThreadedSolver<'f, F> {
        assert_eq!(plan.n(), factor.n(), "plan/factor order mismatch");
        assert_eq!(
            plan.nsup(),
            factor.nsup(),
            "plan/factor supernode count mismatch"
        );
        assert_eq!(
            schedule.n_snodes(),
            plan.nsup(),
            "schedule/plan supernode count mismatch"
        );
        ThreadedSolver {
            factor,
            plan: Cow::Borrowed(plan),
            schedule: Cow::Borrowed(schedule),
        }
    }

    /// Override the worker-pool width (default: available parallelism).
    /// `1` yields a single whole-forest task: fully sequential, zero
    /// synchronization. Rebuilds the subtree schedule if the width
    /// changes.
    pub fn with_threads(mut self, nthreads: usize) -> ThreadedSolver<'f, F> {
        let nthreads = nthreads.max(1);
        if self.schedule.nthreads() != nthreads {
            self.schedule = Cow::Owned(self.plan.subtree_schedule(nthreads));
        }
        self
    }

    /// The precomputed schedule.
    pub fn plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// The subtree-to-thread mapping in effect.
    pub fn schedule(&self) -> &SubtreeSchedule {
        &self.schedule
    }

    /// Worker-pool width in effect.
    pub fn nthreads(&self) -> usize {
        self.schedule.nthreads()
    }

    /// A workspace sized for `nrhs` right-hand sides, with the arena
    /// layout for this solver's schedule already built.
    pub fn workspace(&self, nrhs: usize) -> SolveWorkspace<F::S> {
        let mut ws = SolveWorkspace::new(&self.plan, nrhs);
        ws.ensure_schedule(&self.plan, &self.schedule);
        ws
    }

    /// Whether supernode `s`'s forward result goes to its shared buffer:
    /// top supernodes, plus subtree roots whose parent is above the cut
    /// (the cross-thread handoff edge).
    fn publishes_forward(&self, s: usize) -> bool {
        self.schedule.task_of(s).is_none()
            || matches!(self.plan.parent(s), Some(p) if self.schedule.task_of(p).is_none())
    }

    /// Solve `L·Y = B` into `y` through `ws`, allocation-free.
    pub fn forward_into(
        &self,
        b: &DenseMatrix,
        ws: &mut SolveWorkspace<F::S>,
        y: &mut DenseMatrix,
    ) {
        let n = self.plan.n();
        let nrhs = b.ncols();
        assert_eq!(b.nrows(), n, "rhs must have n rows");
        assert_eq!(y.shape(), (n, nrhs), "output shape mismatch");
        ws.ensure(&self.plan, nrhs);
        ws.ensure_schedule(&self.plan, &self.schedule);
        if nrhs == 0 || n == 0 {
            return;
        }
        self.run(ws, true, b, nrhs, None);
        // solved top blocks → output rows (each supernode owns its columns)
        for s in 0..self.plan.nsup() {
            let ns = self.plan.height(s);
            let cols = self.plan.cols(s);
            let t = cols.len();
            if self.publishes_forward(s) {
                let buf = lock_ws(&ws.bufs[s]);
                for r in 0..nrhs {
                    publish_col(&mut y.col_mut(r)[cols.clone()], &buf[r * ns..r * ns + t]);
                }
            } else {
                let w = &ws.arenas[ws.arena_slot[s]].buf[ws.arena_off[s] * nrhs..];
                for r in 0..nrhs {
                    publish_col(&mut y.col_mut(r)[cols.clone()], &w[r * ns..r * ns + t]);
                }
            }
        }
    }

    /// Solve `Lᵀ·X = Y` into `x` through `ws`, allocation-free.
    pub fn backward_into(
        &self,
        y: &DenseMatrix,
        ws: &mut SolveWorkspace<F::S>,
        x: &mut DenseMatrix,
    ) {
        let n = self.plan.n();
        let nrhs = y.ncols();
        assert_eq!(y.nrows(), n, "rhs must have n rows");
        assert_eq!(x.shape(), (n, nrhs), "output shape mismatch");
        ws.ensure(&self.plan, nrhs);
        ws.ensure_schedule(&self.plan, &self.schedule);
        if nrhs == 0 || n == 0 {
            return;
        }
        let units = self.schedule.n_tasks() + self.schedule.top().len();
        if self.schedule.nthreads() == 1 || units <= 1 {
            // Effectively serial: solve straight into `x` through one
            // compact work buffer instead of staging full-height vectors
            // across the arena and publishing afterwards.
            let max_h = (0..self.plan.nsup())
                .map(|s| self.plan.height(s))
                .max()
                .unwrap_or(0);
            // first max_h·nrhs is the per-supernode work panel, the rest is
            // a gather buffer for solved below-rows (height − width ≤ max_h)
            if ws.serial_work.len() < 2 * max_h * nrhs {
                ws.serial_work.resize(2 * max_h * nrhs, F::S::ZERO);
            }
            self.backward_serial(y, nrhs, max_h, &mut ws.serial_work, x);
            return;
        }
        self.run(ws, false, y, nrhs, None);
        for s in 0..self.plan.nsup() {
            let ns = self.plan.height(s);
            let cols = self.plan.cols(s);
            let t = cols.len();
            if self.schedule.task_of(s).is_none() {
                let buf = lock_ws(&ws.bufs[s]);
                for r in 0..nrhs {
                    publish_col(&mut x.col_mut(r)[cols.clone()], &buf[r * ns..r * ns + t]);
                }
            } else {
                let w = &ws.arenas[ws.arena_slot[s]].buf[ws.arena_off[s] * nrhs..];
                for r in 0..nrhs {
                    publish_col(&mut x.col_mut(r)[cols.clone()], &w[r * ns..r * ns + t]);
                }
            }
        }
    }

    /// Solve `L·Y = B` through `ws`, allocating only the output.
    pub fn forward_with(&self, b: &DenseMatrix, ws: &mut SolveWorkspace<F::S>) -> DenseMatrix {
        let mut y = DenseMatrix::zeros(self.plan.n(), b.ncols());
        self.forward_into(b, ws, &mut y);
        y
    }

    /// Solve `Lᵀ·X = Y` through `ws`, allocating only the output.
    pub fn backward_with(&self, y: &DenseMatrix, ws: &mut SolveWorkspace<F::S>) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(self.plan.n(), y.ncols());
        self.backward_into(y, ws, &mut x);
        x
    }

    /// Solve `L·Y = B` with a one-shot workspace.
    pub fn forward(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut ws = self.workspace(b.ncols());
        self.forward_with(b, &mut ws)
    }

    /// Solve `Lᵀ·X = Y` with a one-shot workspace.
    pub fn backward(&self, y: &DenseMatrix) -> DenseMatrix {
        let mut ws = self.workspace(y.ncols());
        self.backward_with(y, &mut ws)
    }

    /// Forward + backward through one workspace.
    pub fn forward_backward_with(
        &self,
        b: &DenseMatrix,
        ws: &mut SolveWorkspace<F::S>,
    ) -> DenseMatrix {
        let y = self.forward_with(b, ws);
        self.backward_with(&y, ws)
    }

    /// Gather supernode `s`'s own rows of `b` into `w`'s top block and
    /// zero the below block (the extend-add target). Narrows per element
    /// when the storage scalar is narrower than `f64` (exact round-trip
    /// for values that originated in the narrow lane).
    fn gather_b(&self, s: usize, b: &DenseMatrix, nrhs: usize, w: &mut [F::S]) {
        let ns = self.plan.height(s);
        let cols = self.plan.cols(s);
        let t = cols.len();
        for r in 0..nrhs {
            let bc = &b.col(r)[cols.clone()];
            for (k, &bv) in bc.iter().enumerate() {
                w[r * ns + k] = F::S::from_f64(bv);
            }
            w[r * ns + t..(r + 1) * ns].fill(F::S::ZERO);
        }
    }

    /// Extend-add child `c`'s below block (`cbuf` is its full working
    /// buffer) into parent working vector `w` (leading dimension `ns`)
    /// through the precomputed scatter map.
    fn extend_add(&self, c: usize, nrhs: usize, w: &mut [F::S], ns: usize, cbuf: &[F::S]) {
        let nsc = self.plan.height(c);
        let tc = self.plan.width(c);
        let scat = self.plan.scatter(c);
        for r in 0..nrhs {
            let src = &cbuf[r * nsc + tc..r * nsc + nsc];
            let dst = &mut w[r * ns..(r + 1) * ns];
            for (i, &pos) in scat.iter().enumerate() {
                dst[pos] += src[i];
            }
        }
    }

    /// Dense triangle + rectangle update for one supernode over all
    /// right-hand sides: `w_top ← L11⁻¹·w_top`, then
    /// `w_below −= L21·w_top` (top copied out so the GEMM sees disjoint
    /// operand slices).
    fn forward_body(&self, s: usize, nrhs: usize, w: &mut [F::S], top_copy: &mut [F::S]) {
        let ns = self.plan.height(s);
        let t = self.plan.width(s);
        let blk = self.factor.values(s);
        blas::trsm_lower_left(blk, ns, w, ns, t, nrhs);
        if ns > t {
            for r in 0..nrhs {
                top_copy[r * t..(r + 1) * t].copy_from_slice(&w[r * ns..r * ns + t]);
            }
            blas::gemm_update(
                &mut w[t..],
                ns,
                &blk[t..],
                ns,
                &top_copy[..t * nrhs],
                t,
                ns - t,
                nrhs,
                t,
            );
        }
    }

    /// One fine-grained forward unit: a supernode above the cut. All of
    /// its children are above the cut too or are publishing subtree
    /// roots, so every operand lives in a shared buffer.
    fn forward_top(&self, s: usize, b: &DenseMatrix, nrhs: usize, bufs: &[Mutex<Vec<F::S>>]) {
        let ns = self.plan.height(s);
        let t = self.plan.width(s);
        let mut buf = lock_ws(&bufs[s]);
        buf.clear();
        buf.resize(ns * nrhs + t * nrhs, F::S::ZERO);
        let (w, top_copy) = buf.split_at_mut(ns * nrhs);
        self.gather_b(s, b, nrhs, w);
        for &c in self.plan.children(s) {
            let cbuf = lock_ws(&bufs[c]);
            self.extend_add(c, nrhs, w, ns, &cbuf);
        }
        self.forward_body(s, nrhs, w, top_copy);
    }

    /// One forward subtree task: every member in ascending (topological)
    /// order, entirely inside the slot arena — no locks, no atomics — bar
    /// a root with a parent above the cut, which publishes into its
    /// shared buffer for the cross-thread handoff.
    fn forward_subtree(
        &self,
        task: usize,
        b: &DenseMatrix,
        nrhs: usize,
        arena: &mut Arena<F::S>,
        arena_off: &[usize],
        bufs: &[Mutex<Vec<F::S>>],
        hook: Option<&(dyn Fn(usize) + Sync)>,
    ) {
        let plan = &*self.plan;
        let Arena { buf, scratch, .. } = arena;
        for &s in self.schedule.task(task) {
            if let Some(h) = hook {
                h(s);
            }
            let ns = plan.height(s);
            let t = plan.width(s);
            let off = arena_off[s] * nrhs;
            if self.publishes_forward(s) {
                let mut sb = lock_ws(&bufs[s]);
                sb.clear();
                sb.resize(ns * nrhs + t * nrhs, F::S::ZERO);
                let (w, top_copy) = sb.split_at_mut(ns * nrhs);
                self.gather_b(s, b, nrhs, w);
                for &c in plan.children(s) {
                    let coff = arena_off[c] * nrhs;
                    let nsc = plan.height(c);
                    self.extend_add(c, nrhs, w, ns, &buf[coff..coff + nsc * nrhs]);
                }
                self.forward_body(s, nrhs, w, top_copy);
            } else {
                let (done, rest) = buf.split_at_mut(off);
                let w = &mut rest[..ns * nrhs];
                self.gather_b(s, b, nrhs, w);
                for &c in plan.children(s) {
                    let coff = arena_off[c] * nrhs;
                    let nsc = plan.height(c);
                    self.extend_add(c, nrhs, w, ns, &done[coff..coff + nsc * nrhs]);
                }
                self.forward_body(s, nrhs, w, &mut scratch[..t * nrhs]);
            }
        }
    }

    /// One fine-grained backward unit: gather solved ancestor values from
    /// the parent's shared buffer, apply the transposed rectangle, solve
    /// the transposed triangle, republish full height for the children.
    fn backward_top(&self, s: usize, y: &DenseMatrix, nrhs: usize, bufs: &[Mutex<Vec<F::S>>]) {
        let plan = &*self.plan;
        let ns = plan.height(s);
        let cols = plan.cols(s);
        let t = cols.len();
        let nb = ns - t;
        let blk = self.factor.values(s);
        let mut buf = lock_ws(&bufs[s]);
        buf.clear();
        buf.resize(ns * nrhs + nb * nrhs, F::S::ZERO);
        let (w, below) = buf.split_at_mut(ns * nrhs);
        for r in 0..nrhs {
            let yc = &y.col(r)[cols.clone()];
            for (k, &yv) in yc.iter().enumerate() {
                w[r * ns + k] = F::S::from_f64(yv);
            }
        }
        if nb > 0 {
            let p = plan.parent(s).expect("validated: non-roots only");
            {
                let pbuf = lock_ws(&bufs[p]);
                let nsp = plan.height(p);
                let scat = plan.scatter(s);
                for r in 0..nrhs {
                    let src = &pbuf[r * nsp..(r + 1) * nsp];
                    let dst = &mut below[r * nb..(r + 1) * nb];
                    for (i, &pos) in scat.iter().enumerate() {
                        dst[i] = src[pos];
                    }
                }
            }
            blas::gemm_tn_update(w, ns, &blk[t..], ns, below, nb, t, nrhs, nb);
        }
        blas::trsm_lower_trans_left(blk, ns, w, ns, t, nrhs);
        for r in 0..nrhs {
            w[r * ns + t..(r + 1) * ns].copy_from_slice(&below[r * nb..(r + 1) * nb]);
        }
    }

    /// One backward subtree task: every member in descending
    /// (reverse-topological) order inside the slot arena. The root reads
    /// its parent's shared buffer (the cross-thread edge); everyone else
    /// reads its parent's arena region.
    fn backward_subtree(
        &self,
        task: usize,
        y: &DenseMatrix,
        nrhs: usize,
        arena: &mut Arena<F::S>,
        arena_off: &[usize],
        bufs: &[Mutex<Vec<F::S>>],
        hook: Option<&(dyn Fn(usize) + Sync)>,
    ) {
        let plan = &*self.plan;
        let sched = &*self.schedule;
        let Arena { buf, scratch, .. } = arena;
        for &s in sched.task(task).iter().rev() {
            if let Some(h) = hook {
                h(s);
            }
            let ns = plan.height(s);
            let cols = plan.cols(s);
            let t = cols.len();
            let nb = ns - t;
            let blk = self.factor.values(s);
            let off = arena_off[s] * nrhs;
            let end = off + ns * nrhs;
            let (head, tail) = buf.split_at_mut(end);
            let w = &mut head[off..];
            for r in 0..nrhs {
                let yc = &y.col(r)[cols.clone()];
                for (k, &yv) in yc.iter().enumerate() {
                    w[r * ns + k] = F::S::from_f64(yv);
                }
            }
            let below = &mut scratch[..nb * nrhs];
            if nb > 0 {
                let p = plan.parent(s).expect("validated: non-roots only");
                let nsp = plan.height(p);
                let scat = plan.scatter(s);
                if sched.task_of(p).is_none() {
                    let pbuf = lock_ws(&bufs[p]);
                    for r in 0..nrhs {
                        let src = &pbuf[r * nsp..(r + 1) * nsp];
                        let dst = &mut below[r * nb..(r + 1) * nb];
                        for (i, &pos) in scat.iter().enumerate() {
                            dst[i] = src[pos];
                        }
                    }
                } else {
                    // parents sit at strictly larger arena offsets
                    let psrc = &tail[arena_off[p] * nrhs - end..];
                    for r in 0..nrhs {
                        let src = &psrc[r * nsp..(r + 1) * nsp];
                        let dst = &mut below[r * nb..(r + 1) * nb];
                        for (i, &pos) in scat.iter().enumerate() {
                            dst[i] = src[pos];
                        }
                    }
                }
                blas::gemm_tn_update(w, ns, &blk[t..], ns, below, nb, t, nrhs, nb);
            }
            blas::trsm_lower_trans_left(blk, ns, w, ns, t, nrhs);
            for r in 0..nrhs {
                w[r * ns + t..(r + 1) * ns].copy_from_slice(&below[r * nb..(r + 1) * nb]);
            }
        }
    }

    /// Compact serial backward pass, used when the schedule is effectively
    /// single-threaded. Per-supernode arithmetic is the exact operation
    /// order of [`Self::backward_subtree`] (single-accumulator dot per
    /// column, ascending rows, then one subtract), but solved values flow
    /// through one reusable `max_h`-row work buffer straight into `x` — no
    /// arena staging, no full-height republish, no final publish pass.
    /// That cuts the backward pass's memory traffic by roughly a third at
    /// small RHS widths.
    fn backward_serial(
        &self,
        y: &DenseMatrix,
        nrhs: usize,
        max_h: usize,
        work: &mut [F::S],
        x: &mut DenseMatrix,
    ) {
        let part = self.factor.partition();
        let (work, below) = work.split_at_mut(max_h * nrhs);
        for s in (0..part.nsup()).rev() {
            let rows = part.rows(s);
            let t = part.width(s);
            let ns = rows.len();
            let blk = self.factor.values(s);
            for r in 0..nrhs {
                let yc = y.col(r);
                let wc = &mut work[r * max_h..];
                for (k, &gi) in rows[..t].iter().enumerate() {
                    wc[k] = F::S::from_f64(yc[gi]);
                }
            }
            if ns > t {
                // ancestors sit later in postorder, so x[gi] is solved:
                // gather them once, then let the blocked kernel run the
                // same single-accumulator ascending-row dots with one
                // narrowing conversion per row instead of per (row, col)
                let nb = ns - t;
                for r in 0..nrhs {
                    let xc = x.col(r);
                    let bl = &mut below[r * nb..(r + 1) * nb];
                    for (i, &gi) in rows[t..].iter().enumerate() {
                        bl[i] = F::S::from_f64(xc[gi]);
                    }
                }
                blas::gemm_tn_update(
                    work,
                    max_h,
                    &blk[t..],
                    ns,
                    &below[..nb * nrhs],
                    nb,
                    t,
                    nrhs,
                    nb,
                );
            }
            blas::trsm_lower_trans_left(blk, ns, work, max_h, t, nrhs);
            for r in 0..nrhs {
                let xc = x.col_mut(r);
                let wc = &work[r * max_h..];
                for (k, &gi) in rows[..t].iter().enumerate() {
                    xc[gi] = wc[k].to_f64();
                }
            }
        }
    }

    /// Drain the two-phase task graph. `forward` selects the dependency
    /// direction. `hook`, when set, runs before each supernode's
    /// processing (test seam for panic containment).
    fn run(
        &self,
        ws: &mut SolveWorkspace<F::S>,
        forward: bool,
        rhs: &DenseMatrix,
        nrhs: usize,
        hook: Option<&(dyn Fn(usize) + Sync)>,
    ) {
        let plan = &*self.plan;
        let sched = &*self.schedule;
        let ntasks = sched.n_tasks();
        let top = sched.top();
        let units = ntasks + top.len();
        if units == 0 {
            return;
        }
        let nthreads = sched.nthreads();
        if nthreads == 1 || units == 1 {
            // Fully inline: no spawns, no atomics; the only mutexes touched
            // are the (uncontended) shared buffers of top supernodes.
            let arenas = &mut ws.arenas;
            let arena_off = &ws.arena_off;
            let bufs = &ws.bufs;
            if forward {
                for t in 0..ntasks {
                    self.forward_subtree(
                        t,
                        rhs,
                        nrhs,
                        &mut arenas[sched.slot_of(t)],
                        arena_off,
                        bufs,
                        hook,
                    );
                }
                for &s in top {
                    if let Some(h) = hook {
                        h(s);
                    }
                    self.forward_top(s, rhs, nrhs, bufs);
                }
            } else {
                for &s in top.iter().rev() {
                    if let Some(h) = hook {
                        h(s);
                    }
                    self.backward_top(s, rhs, nrhs, bufs);
                }
                for t in 0..ntasks {
                    self.backward_subtree(
                        t,
                        rhs,
                        nrhs,
                        &mut arenas[sched.slot_of(t)],
                        arena_off,
                        bufs,
                        hook,
                    );
                }
            }
            return;
        }

        // Dependency counters: unit ids are tasks 0..ntasks, then
        // ntasks + top_rank for supernodes above the cut.
        for t in 0..ntasks {
            let d = if forward {
                0
            } else {
                usize::from(plan.parent(sched.task_root(t)).is_some())
            };
            ws.deps[t].store(d, Ordering::Relaxed);
        }
        for (j, &s) in top.iter().enumerate() {
            let d = if forward {
                plan.n_children(s)
            } else {
                usize::from(plan.parent(s).is_some())
            };
            ws.deps[ntasks + j].store(d, Ordering::Relaxed);
        }
        // Initial ready sets (we hold &mut: no locking needed).
        for l in ws.task_ready.iter_mut() {
            l.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
        }
        for l in ws.top_ready.iter_mut() {
            l.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
        }
        let mut rr = 0usize;
        if forward {
            for i in 0..nthreads {
                // reversed so the worker's LIFO pop runs heaviest first
                let list = ws.task_ready[i]
                    .get_mut()
                    .unwrap_or_else(|e| e.into_inner());
                list.extend(sched.slot(i).iter().rev());
            }
            for (j, &s) in top.iter().enumerate() {
                if plan.n_children(s) == 0 {
                    let list = ws.top_ready[rr % nthreads]
                        .get_mut()
                        .unwrap_or_else(|e| e.into_inner());
                    list.push(ntasks + j);
                    rr += 1;
                }
            }
        } else {
            for t in 0..ntasks {
                if plan.parent(sched.task_root(t)).is_none() {
                    let list = ws.task_ready[sched.slot_of(t)]
                        .get_mut()
                        .unwrap_or_else(|e| e.into_inner());
                    list.push(t);
                }
            }
            for (j, &s) in top.iter().enumerate() {
                if plan.parent(s).is_none() {
                    let list = ws.top_ready[rr % nthreads]
                        .get_mut()
                        .unwrap_or_else(|e| e.into_inner());
                    list.push(ntasks + j);
                    rr += 1;
                }
            }
        }

        let bufs = &ws.bufs;
        let deps = &ws.deps;
        let task_ready = &ws.task_ready;
        let top_ready = &ws.top_ready;
        let arena_off = &ws.arena_off;
        let remaining = AtomicUsize::new(units);
        let remaining = &remaining;
        // Spin-then-park idling: a worker that finds every list empty spins
        // briefly, registers itself in `sleepers`, RE-CHECKS the lists (so a
        // push that raced its registration is never missed), and only then
        // parks. Producers wake a specific sleeper (the home slot of a
        // subtree task — nobody else may run it) or any sleeper (stealable
        // top units, termination).
        let sleepers: Mutex<Vec<(usize, std::thread::Thread)>> = Mutex::new(Vec::new());
        let sleepers = &sleepers;
        let n_sleep = AtomicUsize::new(0);
        let n_sleep = &n_sleep;
        // Panic containment: a task that panics must not leave the other
        // workers parked waiting for dependency decrements that will never
        // come. The first panic is stashed, the `aborted` flag drains every
        // worker, and the payload is re-thrown on the calling thread where
        // `catch_unwind` at the engine boundary can see it. `remaining` is
        // left alone — a sibling finishing concurrently still decrements
        // it, and forcing it to zero here would race that decrement into an
        // underflow.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let panicked = &panicked;
        let aborted = AtomicBool::new(false);
        let aborted = &aborted;

        let wake_all = move || {
            let mut sl = lock_ws(sleepers);
            n_sleep.store(0, Ordering::Release);
            for (_, th) in sl.drain(..) {
                th.unpark();
            }
        };
        let wake_one = move || {
            if n_sleep.load(Ordering::Acquire) > 0 {
                let mut sl = lock_ws(sleepers);
                if let Some((_, th)) = sl.pop() {
                    n_sleep.store(sl.len(), Ordering::Release);
                    th.unpark();
                }
            }
        };
        let wake_slot = move |i: usize| {
            if n_sleep.load(Ordering::Acquire) > 0 {
                let mut sl = lock_ws(sleepers);
                if let Some(k) = sl.iter().position(|e| e.0 == i) {
                    let (_, th) = sl.swap_remove(k);
                    n_sleep.store(sl.len(), Ordering::Release);
                    th.unpark();
                }
            }
        };

        std::thread::scope(|scope| {
            for (i, arena) in ws.arenas.iter_mut().enumerate() {
                scope.spawn(move || {
                    let mut spins = 0u32;
                    loop {
                        if aborted.load(Ordering::Acquire) || remaining.load(Ordering::Acquire) == 0
                        {
                            wake_all();
                            return;
                        }
                        // own subtree tasks first (bulk, lock-free inside),
                        // then own top units, then steal top units
                        let unit = lock_ws(&task_ready[i])
                            .pop()
                            .map(Unit::Task)
                            .or_else(|| lock_ws(&top_ready[i]).pop().map(|u| Unit::Top(u - ntasks)))
                            .or_else(|| {
                                (0..nthreads).filter(|&j| j != i).find_map(|j| {
                                    lock_ws(&top_ready[j]).pop().map(|u| Unit::Top(u - ntasks))
                                })
                            });
                        let Some(unit) = unit else {
                            spins += 1;
                            if spins < SPIN_ROUNDS {
                                std::hint::spin_loop();
                                continue;
                            }
                            {
                                let mut sl = lock_ws(sleepers);
                                sl.push((i, std::thread::current()));
                                n_sleep.store(sl.len(), Ordering::Release);
                            }
                            let visible = aborted.load(Ordering::Acquire)
                                || remaining.load(Ordering::Acquire) == 0
                                || !lock_ws(&task_ready[i]).is_empty()
                                || top_ready.iter().any(|l| !lock_ws(l).is_empty());
                            if !visible {
                                std::thread::park();
                            }
                            {
                                let mut sl = lock_ws(sleepers);
                                let before = sl.len();
                                sl.retain(|e| e.0 != i);
                                if sl.len() != before {
                                    n_sleep.store(sl.len(), Ordering::Release);
                                }
                            }
                            spins = 0;
                            continue;
                        };
                        spins = 0;
                        let res = panic::catch_unwind(AssertUnwindSafe(|| match unit {
                            Unit::Task(t) => {
                                if forward {
                                    self.forward_subtree(t, rhs, nrhs, arena, arena_off, bufs, hook)
                                } else {
                                    self.backward_subtree(
                                        t, rhs, nrhs, arena, arena_off, bufs, hook,
                                    )
                                }
                            }
                            Unit::Top(j) => {
                                let s = top[j];
                                if let Some(h) = hook {
                                    h(s);
                                }
                                if forward {
                                    self.forward_top(s, rhs, nrhs, bufs)
                                } else {
                                    self.backward_top(s, rhs, nrhs, bufs)
                                }
                            }
                        }));
                        if let Err(payload) = res {
                            if !aborted.swap(true, Ordering::SeqCst) {
                                *lock_ws(panicked) = Some(payload);
                            }
                            wake_all();
                            return;
                        }
                        // notify successors
                        let dec_top = |p: usize| {
                            let j = sched.top_rank(p).expect("cut parent is above the cut");
                            if deps[ntasks + j].fetch_sub(1, Ordering::AcqRel) == 1 {
                                lock_ws(&top_ready[i]).push(ntasks + j);
                                wake_one();
                            }
                        };
                        match unit {
                            Unit::Task(t) => {
                                if forward {
                                    if let Some(p) = plan.parent(sched.task_root(t)) {
                                        dec_top(p);
                                    }
                                }
                            }
                            Unit::Top(j) => {
                                let s = top[j];
                                if forward {
                                    if let Some(p) = plan.parent(s) {
                                        dec_top(p);
                                    }
                                } else {
                                    for &c in plan.children(s) {
                                        match sched.task_of(c) {
                                            Some(tc) => {
                                                if deps[tc].fetch_sub(1, Ordering::AcqRel) == 1 {
                                                    let home = sched.slot_of(tc);
                                                    lock_ws(&task_ready[home]).push(tc);
                                                    if home != i {
                                                        wake_slot(home);
                                                    }
                                                }
                                            }
                                            None => dec_top(c),
                                        }
                                    }
                                }
                            }
                        }
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            wake_all();
                            return;
                        }
                    }
                });
            }
        });
        let payload = lock_ws(panicked).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

/// Solve `L·Y = B` over the supernodal tree with the subtree-mapped
/// worker pool. Bit-identical to [`crate::seq::forward`]: every supernode
/// performs the same arithmetic in the same order regardless of which
/// thread or buffer it runs in.
///
/// Convenience wrapper that plans on every call; batch workloads should
/// hold a [`ThreadedSolver`] and a [`SolveWorkspace`] instead.
pub fn forward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    ThreadedSolver::new(f)
        .expect("factor partition is structurally valid")
        .forward(b)
}

/// Solve `Lᵀ·X = Y` with the subtree-mapped worker pool (see [`forward`]).
pub fn backward(f: &SupernodalFactor, y: &DenseMatrix) -> DenseMatrix {
    ThreadedSolver::new(f)
        .expect("factor partition is structurally valid")
        .backward(y)
}

/// Forward + backward with the threaded solvers.
pub fn forward_backward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let solver = ThreadedSolver::new(f).expect("factor partition is structurally valid");
    let mut ws = solver.workspace(b.ncols());
    solver.forward_backward_with(b, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn build(a: &trisolv_matrix::CscMatrix) -> SupernodalFactor {
        let g = Graph::from_sym_lower(a);
        let p = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = analyze_with_perm(a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    #[test]
    fn threaded_forward_matches_seq() {
        let a = gen::grid2d_laplacian(12, 12);
        let f = build(&a);
        let b = gen::random_rhs(f.n(), 3, 1);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_backward_matches_seq() {
        let a = gen::grid3d_laplacian(4, 4, 4);
        let f = build(&a);
        let y = gen::random_rhs(f.n(), 2, 2);
        let seq_x = seq::backward(&f, &y);
        let par_x = backward(&f, &y);
        assert!(par_x.max_abs_diff(&seq_x).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_roundtrip_solves() {
        let a = gen::fem2d(5, 5, 2);
        let f = build(&a);
        let x_true = gen::random_rhs(f.n(), 2, 3);
        let b = f.llt_times(&x_true);
        let x = forward_backward(&f, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn handles_forest_of_roots() {
        // block-diagonal matrix → multiple etree roots
        let mut t = trisolv_matrix::TripletMatrix::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4, 6] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let a = t.to_csc();
        let f = build(&a);
        let b = gen::random_rhs(8, 1, 4);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-13);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let a = gen::grid2d_laplacian(10, 9);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        let mut ws = solver.workspace(4);
        for seed in 0..4 {
            let b = gen::random_rhs(f.n(), 4, seed);
            let expect = seq::forward_backward(&f, &b);
            let got = solver.forward_backward_with(&b, &mut ws);
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-12, "seed {seed}");
        }
        // narrower and wider blocks through the same workspace
        for nrhs in [1usize, 2, 8] {
            let b = gen::random_rhs(f.n(), nrhs, 17 + nrhs as u64);
            let expect = seq::forward(&f, &b);
            let got = solver.forward_with(&b, &mut ws);
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-12, "nrhs {nrhs}");
        }
    }

    #[test]
    fn explicit_thread_counts_bit_identical() {
        let a = gen::fem2d(6, 5, 2);
        let f = build(&a);
        let b = gen::random_rhs(f.n(), 3, 9);
        let expect = seq::forward_backward(&f, &b);
        for nthreads in [1usize, 2, 3, 8] {
            let solver = ThreadedSolver::new(&f).unwrap().with_threads(nthreads);
            assert_eq!(solver.nthreads(), nthreads);
            let mut ws = solver.workspace(3);
            let got = solver.forward_backward_with(&b, &mut ws);
            // every supernode runs identical arithmetic regardless of
            // thread count → identical bits, not just close values
            assert_eq!(got.as_slice(), expect.as_slice(), "nthreads {nthreads}");
        }
    }

    #[test]
    fn f32_threaded_bit_identical_to_f32_seq_at_any_thread_count() {
        // the f32 lane keeps the bit-identity contract of the f64 lane:
        // every supernode runs identical arithmetic whether executed by
        // the sequential solver or any number of pool threads
        let a = gen::fem2d(6, 5, 2);
        let f = build(&a).demote();
        let plan = SolvePlan::new(f.partition()).unwrap();
        let b = gen::random_rhs(f.n(), 3, 9);
        let seq_y = seq::forward_with_plan_any(&f, &plan, &b);
        let seq_x = seq::backward_any(&f, &seq_y);
        for nthreads in [1usize, 2, 4] {
            let solver = ThreadedSolver::new(&f).unwrap().with_threads(nthreads);
            let mut ws = solver.workspace(3);
            let y = solver.forward_with(&b, &mut ws);
            assert_eq!(y.as_slice(), seq_y.as_slice(), "nthreads {nthreads}");
            let x = solver.backward_with(&y, &mut ws);
            assert_eq!(x.as_slice(), seq_x.as_slice(), "nthreads {nthreads}");
        }
    }

    #[test]
    fn f32_threaded_solve_reaches_f32_accuracy() {
        let a = gen::grid2d_laplacian(12, 12);
        let f64_factor = build(&a);
        let f = f64_factor.demote();
        let x_true = gen::random_rhs(f.n(), 2, 7);
        let b = f64_factor.llt_times(&x_true);
        let solver = ThreadedSolver::new(&f).unwrap().with_threads(2);
        let mut ws = solver.workspace(2);
        let x = solver.forward_backward_with(&b, &mut ws);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-3);
    }

    #[test]
    fn zero_rhs_block() {
        let a = gen::grid2d_laplacian(6, 6);
        let f = build(&a);
        let b = DenseMatrix::zeros(f.n(), 0);
        let y = forward(&f, &b);
        assert_eq!(y.shape(), (f.n(), 0));
        let x = backward(&f, &b);
        assert_eq!(x.shape(), (f.n(), 0));
    }

    #[test]
    fn single_supernode_factor() {
        // a fully dense SPD matrix collapses to one supernode
        let n = 12;
        let mut t = trisolv_matrix::TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = if i == j { 2.0 * n as f64 } else { -0.5 };
                t.push(i, j, v).unwrap();
            }
        }
        let a = t.to_csc();
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        assert_eq!(solver.plan().nlevels(), 1);
        let b = gen::random_rhs(n, 2, 5);
        let seq_y = seq::forward(&f, &b);
        let par_y = solver.forward(&b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
        let x = solver.backward(&par_y);
        assert!(x.max_abs_diff(&seq::backward(&f, &seq_y)).unwrap() < 1e-12);
    }

    #[test]
    fn borrowed_plan_matches_owned_plan() {
        let a = gen::grid2d_laplacian(11, 7);
        let f = build(&a);
        let plan = SolvePlan::new(f.partition()).unwrap();
        let owned = ThreadedSolver::new(&f).unwrap();
        let borrowed = ThreadedSolver::with_plan(&f, &plan);
        let b = gen::random_rhs(f.n(), 3, 11);
        let mut ws = SolveWorkspace::new(&plan, 3);
        let x1 = owned.forward_backward_with(&b, &mut ws);
        let x2 = borrowed.forward_backward_with(&b, &mut ws);
        // identical plan + identical kernels → identical bits
        assert_eq!(x1.as_slice(), x2.as_slice());
    }

    #[test]
    fn borrowed_schedule_matches_owned_schedule() {
        let a = gen::grid2d_laplacian(13, 9);
        let f = build(&a);
        let plan = SolvePlan::new(f.partition()).unwrap();
        let sched = plan.subtree_schedule(4);
        let cached = ThreadedSolver::with_plan_schedule(&f, &plan, &sched);
        assert_eq!(cached.nthreads(), 4);
        let owned = ThreadedSolver::with_plan(&f, &plan).with_threads(4);
        let b = gen::random_rhs(f.n(), 2, 23);
        let mut ws1 = cached.workspace(2);
        let mut ws2 = owned.workspace(2);
        let x1 = cached.forward_backward_with(&b, &mut ws1);
        let x2 = owned.forward_backward_with(&b, &mut ws2);
        assert_eq!(x1.as_slice(), x2.as_slice());
    }

    #[test]
    fn panicking_task_aborts_pool_without_hanging() {
        let a = gen::grid2d_laplacian(12, 12);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap().with_threads(4);
        let mut ws = solver.workspace(2);
        let b = gen::random_rhs(f.n(), 2, 19);
        // Every supernode panics via the test hook; pre-hardening this
        // deadlocked the pool (workers waited forever on dependency
        // decrements that never came). Now the panic must propagate out of
        // `run`...
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            solver.run(&mut ws, true, &b, 2, Some(&|_s| panic!("boom in task")));
        }));
        assert!(caught.is_err(), "task panic must propagate, not hang");
        // ...and the same (possibly poison-recovered) workspace must still
        // serve correct solves afterwards.
        let b = gen::random_rhs(f.n(), 2, 21);
        let expect = seq::forward_backward(&f, &b);
        let got = solver.forward_backward_with(&b, &mut ws);
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn plan_exposes_schedule_stats() {
        let a = gen::grid2d_laplacian(16, 16);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        let plan = solver.plan();
        assert!(plan.nlevels() >= 2, "grid tree must have depth");
        assert!(plan.max_level_width() >= 2, "grid tree must have breadth");
        let total: usize = (0..plan.nlevels()).map(|l| plan.level(l).len()).sum();
        assert_eq!(total, plan.nsup());
        // the subtree schedule is exposed for diagnostics too
        let sched = solver.schedule();
        let covered: usize = (0..sched.n_tasks())
            .map(|t| sched.task(t).len())
            .sum::<usize>()
            + sched.top().len();
        assert_eq!(covered, plan.nsup());
    }
}
