//! Shared-memory parallel triangular solves (extension, not part of the
//! paper reproduction path).
//!
//! A modern counterpart to the paper's distributed-memory algorithms.
//! The paper's core observation — triangular solves perform so few flops
//! that scheduling and memory overhead dominate — drives the design:
//!
//! * all scheduling state is precomputed once per factor in a
//!   [`SolvePlan`]: a topological level schedule of the supernodal tree,
//!   static dependency counts, and child→parent scatter index maps
//!   (no recursion, no searches in the hot path);
//! * a fixed pool of workers drains a ready queue; finishing a task
//!   decrements its successor's atomic dependency counter and enqueues it
//!   when the counter hits zero;
//! * numerical work per task is blocked over all right-hand sides through
//!   the dense kernels in [`trisolv_factor::blas`] (`trsm` triangles,
//!   `gemm`-shaped rectangle applies);
//! * every intermediate lives in a reusable [`SolveWorkspace`], so
//!   repeated solves against one factor allocate only their output.
//!
//! Siblings touch disjoint data and each supernode's arithmetic is
//! identical to [`crate::seq`], so results match the sequential solver to
//! rounding order (≤ 1e-12 on well-scaled problems).

use std::borrow::Cow;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use trisolv_factor::{blas, SupernodalFactor};
use trisolv_matrix::DenseMatrix;

pub use crate::plan::{PlanError, SolvePlan};

/// Lock a workspace mutex, recovering from poison. Every task starts by
/// clearing and resizing its buffer, so data left behind by a panicked
/// task is never observed — inheriting a poisoned guard is safe, and it
/// keeps a pooled workspace usable after a caught panic instead of
/// cascading `unwrap` failures through every later solve.
fn lock_ws<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Reusable per-factor solve buffers: one working vector per supernode
/// (sized for both passes at construction) plus the executor's dependency
/// counters and ready queue. Repeated solves through one workspace do not
/// allocate.
///
/// Buffers sit behind mutexes so safe Rust can hand each in-flight task
/// its own working vector; the dependency schedule guarantees every lock
/// is uncontended except for brief child reads at gather time.
pub struct SolveWorkspace {
    nrhs: usize,
    bufs: Vec<Mutex<Vec<f64>>>,
    deps: Vec<AtomicUsize>,
    queue: Mutex<VecDeque<usize>>,
    cond: Condvar,
}

impl SolveWorkspace {
    /// Build a workspace for solves with up to `nrhs` right-hand sides.
    pub fn new(plan: &SolvePlan, nrhs: usize) -> SolveWorkspace {
        let bufs = (0..plan.nsup())
            // 2·h·nrhs covers the working vector plus the widest scratch
            // block either pass needs (top copy ≤ t, below copy ≤ h − t)
            .map(|s| Mutex::new(Vec::with_capacity(2 * plan.height(s) * nrhs)))
            .collect();
        let deps = (0..plan.nsup()).map(|_| AtomicUsize::new(0)).collect();
        SolveWorkspace {
            nrhs,
            bufs,
            deps,
            queue: Mutex::new(VecDeque::with_capacity(plan.nsup())),
            cond: Condvar::new(),
        }
    }

    /// Grow the workspace if `nrhs` exceeds the constructed width (the
    /// only case where a solve through this workspace allocates).
    fn ensure(&mut self, plan: &SolvePlan, nrhs: usize) {
        assert_eq!(self.bufs.len(), plan.nsup(), "workspace/plan mismatch");
        if nrhs <= self.nrhs {
            return;
        }
        for (s, buf) in self.bufs.iter_mut().enumerate() {
            let buf = buf.get_mut().unwrap_or_else(|e| e.into_inner());
            let want = 2 * plan.height(s) * nrhs;
            if buf.capacity() < want {
                buf.reserve(want - buf.len());
            }
        }
        self.nrhs = nrhs;
    }
}

/// Level-scheduled shared-memory solver over one supernodal factor.
///
/// Construction validates the factor's structure and precomputes the
/// schedule; [`forward`](ThreadedSolver::forward) /
/// [`backward`](ThreadedSolver::backward) then run allocation-free
/// (modulo their output) through a caller-held [`SolveWorkspace`].
pub struct ThreadedSolver<'f> {
    factor: &'f SupernodalFactor,
    plan: Cow<'f, SolvePlan>,
    nthreads: usize,
}

impl<'f> ThreadedSolver<'f> {
    /// Plan solves over `factor`. Fails with a structured error if a
    /// child supernode's below-rows do not nest in its parent's pattern
    /// (the old fork-join solver walked off the end of an array instead).
    pub fn new(factor: &'f SupernodalFactor) -> Result<ThreadedSolver<'f>, PlanError> {
        let plan = SolvePlan::new(factor.partition())?;
        let nthreads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Ok(ThreadedSolver {
            factor,
            plan: Cow::Owned(plan),
            nthreads,
        })
    }

    /// Reuse a plan built earlier for this same factor (e.g. one held in a
    /// factor cache) instead of rebuilding it. Plan construction is
    /// `O(|L| pattern)`, so long-lived services that keep a factor
    /// resident should build the plan once and borrow it per solve.
    ///
    /// # Panics
    /// If `plan` was built from a different partition (order or supernode
    /// count mismatch).
    pub fn with_plan(factor: &'f SupernodalFactor, plan: &'f SolvePlan) -> ThreadedSolver<'f> {
        assert_eq!(plan.n(), factor.n(), "plan/factor order mismatch");
        assert_eq!(
            plan.nsup(),
            factor.nsup(),
            "plan/factor supernode count mismatch"
        );
        let nthreads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ThreadedSolver {
            factor,
            plan: Cow::Borrowed(plan),
            nthreads,
        }
    }

    /// Override the worker-pool width (default: available parallelism).
    /// `1` forces the sequential in-place schedule.
    pub fn with_threads(mut self, nthreads: usize) -> ThreadedSolver<'f> {
        self.nthreads = nthreads.max(1);
        self
    }

    /// The precomputed schedule.
    pub fn plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// A workspace sized for `nrhs` right-hand sides.
    pub fn workspace(&self, nrhs: usize) -> SolveWorkspace {
        SolveWorkspace::new(&self.plan, nrhs)
    }

    /// Solve `L·Y = B` into `y` through `ws`, allocation-free.
    pub fn forward_into(&self, b: &DenseMatrix, ws: &mut SolveWorkspace, y: &mut DenseMatrix) {
        let n = self.plan.n();
        let nrhs = b.ncols();
        assert_eq!(b.nrows(), n, "rhs must have n rows");
        assert_eq!(y.shape(), (n, nrhs), "output shape mismatch");
        ws.ensure(&self.plan, nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        self.run(ws, true, &|s, ws| self.forward_task(s, b, ws, nrhs));
        // solved top blocks → output rows (each supernode owns its columns)
        for s in 0..self.plan.nsup() {
            let buf = lock_ws(&ws.bufs[s]);
            let ns = self.plan.height(s);
            let cols = self.plan.cols(s);
            let t = cols.len();
            for r in 0..nrhs {
                y.col_mut(r)[cols.clone()].copy_from_slice(&buf[r * ns..r * ns + t]);
            }
        }
    }

    /// Solve `Lᵀ·X = Y` into `x` through `ws`, allocation-free.
    pub fn backward_into(&self, y: &DenseMatrix, ws: &mut SolveWorkspace, x: &mut DenseMatrix) {
        let n = self.plan.n();
        let nrhs = y.ncols();
        assert_eq!(y.nrows(), n, "rhs must have n rows");
        assert_eq!(x.shape(), (n, nrhs), "output shape mismatch");
        ws.ensure(&self.plan, nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        self.run(ws, false, &|s, ws| self.backward_task(s, y, ws, nrhs));
        for s in 0..self.plan.nsup() {
            let buf = lock_ws(&ws.bufs[s]);
            let ns = self.plan.height(s);
            let cols = self.plan.cols(s);
            let t = cols.len();
            for r in 0..nrhs {
                x.col_mut(r)[cols.clone()].copy_from_slice(&buf[r * ns..r * ns + t]);
            }
        }
    }

    /// Solve `L·Y = B` through `ws`, allocating only the output.
    pub fn forward_with(&self, b: &DenseMatrix, ws: &mut SolveWorkspace) -> DenseMatrix {
        let mut y = DenseMatrix::zeros(self.plan.n(), b.ncols());
        self.forward_into(b, ws, &mut y);
        y
    }

    /// Solve `Lᵀ·X = Y` through `ws`, allocating only the output.
    pub fn backward_with(&self, y: &DenseMatrix, ws: &mut SolveWorkspace) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(self.plan.n(), y.ncols());
        self.backward_into(y, ws, &mut x);
        x
    }

    /// Solve `L·Y = B` with a one-shot workspace.
    pub fn forward(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut ws = self.workspace(b.ncols());
        self.forward_with(b, &mut ws)
    }

    /// Solve `Lᵀ·X = Y` with a one-shot workspace.
    pub fn backward(&self, y: &DenseMatrix) -> DenseMatrix {
        let mut ws = self.workspace(y.ncols());
        self.backward_with(y, &mut ws)
    }

    /// Forward + backward through one workspace.
    pub fn forward_backward_with(&self, b: &DenseMatrix, ws: &mut SolveWorkspace) -> DenseMatrix {
        let y = self.forward_with(b, ws);
        self.backward_with(&y, ws)
    }

    /// One forward task: gather `b` and child updates, solve the dense
    /// triangle over all right-hand sides, push the rectangle update.
    fn forward_task(&self, s: usize, b: &DenseMatrix, ws: &SolveWorkspace, nrhs: usize) {
        let plan = &self.plan;
        let ns = plan.height(s);
        let cols = plan.cols(s);
        let t = cols.len();
        let blk = self.factor.block(s);
        let mut buf = lock_ws(&ws.bufs[s]);
        buf.clear();
        buf.resize(ns * nrhs + t * nrhs, 0.0);
        let (w, top_copy) = buf.split_at_mut(ns * nrhs);
        // gather: the supernode's own rows of B (its columns, contiguous)
        for r in 0..nrhs {
            w[r * ns..r * ns + t].copy_from_slice(&b.col(r)[cols.clone()]);
        }
        // extend-add child updates through the precomputed scatter maps
        for &c in plan.children(s) {
            let cbuf = lock_ws(&ws.bufs[c]);
            let nsc = plan.height(c);
            let tc = plan.width(c);
            let scat = plan.scatter(c);
            for r in 0..nrhs {
                let src = &cbuf[r * nsc + tc..r * nsc + nsc];
                let dst = &mut w[r * ns..(r + 1) * ns];
                for (i, &pos) in scat.iter().enumerate() {
                    dst[pos] += src[i];
                }
            }
        }
        // dense triangle over the whole RHS block
        blas::trsm_lower_left(blk.as_slice(), ns, w, ns, t, nrhs);
        // rectangle: w_below −= L21 · x_top (top copied out so the GEMM
        // sees disjoint operand slices)
        if ns > t {
            for r in 0..nrhs {
                top_copy[r * t..(r + 1) * t].copy_from_slice(&w[r * ns..r * ns + t]);
            }
            blas::gemm_update(
                &mut w[t..],
                ns,
                &blk.as_slice()[t..],
                ns,
                top_copy,
                t,
                ns - t,
                nrhs,
                t,
            );
        }
    }

    /// One backward task: gather solved ancestor values from the parent's
    /// buffer, apply the transposed rectangle, solve the transposed
    /// triangle, and republish the full-height solution for the children.
    fn backward_task(&self, s: usize, y: &DenseMatrix, ws: &SolveWorkspace, nrhs: usize) {
        let plan = &self.plan;
        let ns = plan.height(s);
        let cols = plan.cols(s);
        let t = cols.len();
        let nb = ns - t;
        let blk = self.factor.block(s);
        let mut buf = lock_ws(&ws.bufs[s]);
        buf.clear();
        buf.resize(ns * nrhs + nb * nrhs, 0.0);
        let (w, below) = buf.split_at_mut(ns * nrhs);
        for r in 0..nrhs {
            w[r * ns..r * ns + t].copy_from_slice(&y.col(r)[cols.clone()]);
        }
        if nb > 0 {
            // already-solved x values for our below rows, read from the
            // parent's full-height buffer through the scatter map
            let p = plan.parent(s).expect("validated: non-roots only");
            {
                let pbuf = lock_ws(&ws.bufs[p]);
                let nsp = plan.height(p);
                let scat = plan.scatter(s);
                for r in 0..nrhs {
                    let src = &pbuf[r * nsp..(r + 1) * nsp];
                    let dst = &mut below[r * nb..(r + 1) * nb];
                    for (i, &pos) in scat.iter().enumerate() {
                        dst[i] = src[pos];
                    }
                }
            }
            // w_top −= L21ᵀ · x_below
            blas::gemm_tn_update(w, ns, &blk.as_slice()[t..], ns, below, nb, t, nrhs, nb);
        }
        blas::trsm_lower_trans_left(blk.as_slice(), ns, w, ns, t, nrhs);
        // republish full-height x so our children can gather from it
        for r in 0..nrhs {
            w[r * ns + t..(r + 1) * ns].copy_from_slice(&below[r * nb..(r + 1) * nb]);
        }
    }

    /// Drain the task graph with a worker pool. `forward` selects the
    /// dependency direction: children-before-parents or the reverse.
    fn run(
        &self,
        ws: &SolveWorkspace,
        forward: bool,
        process: &(dyn Fn(usize, &SolveWorkspace) + Sync),
    ) {
        let plan = &self.plan;
        let nsup = plan.nsup();
        // cap the pool at the widest level: extra workers could never run
        let nthreads = self.nthreads.min(plan.max_level_width()).max(1);
        if nthreads == 1 || nsup <= 1 {
            // ascending supernode order is topological (the partition is
            // postordered); descending is the reverse
            if forward {
                (0..nsup).for_each(|s| process(s, ws));
            } else {
                (0..nsup).rev().for_each(|s| process(s, ws));
            }
            return;
        }
        for s in 0..nsup {
            let d = if forward {
                plan.n_children(s)
            } else {
                usize::from(plan.parent(s).is_some())
            };
            ws.deps[s].store(d, Ordering::Relaxed);
        }
        {
            let mut q = lock_ws(&ws.queue);
            q.clear();
            if forward {
                q.extend(plan.leaves().iter().copied());
            } else {
                q.extend(plan.roots().iter().copied());
            }
        }
        let remaining = AtomicUsize::new(nsup);
        let remaining = &remaining;
        // Panic containment: a task that panics must not leave the other
        // workers waiting on a condvar for dependency decrements that will
        // never come (the pre-hardening executor deadlocked here). The
        // first panic is stashed, the `aborted` flag drains every worker
        // out of the wait loop, and the payload is re-thrown on the
        // calling thread where `catch_unwind` at the engine boundary can
        // see it. `remaining` is left alone — a sibling finishing its task
        // concurrently still decrements it, and forcing it to zero here
        // would race that decrement into an underflow.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let panicked = &panicked;
        let aborted = AtomicBool::new(false);
        let aborted = &aborted;
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                scope.spawn(move || loop {
                    let s = {
                        let mut q = lock_ws(&ws.queue);
                        loop {
                            if aborted.load(Ordering::Acquire)
                                || remaining.load(Ordering::Acquire) == 0
                            {
                                return;
                            }
                            if let Some(s) = q.pop_front() {
                                break s;
                            }
                            q = ws.cond.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| process(s, ws))) {
                        if !aborted.swap(true, Ordering::SeqCst) {
                            *lock_ws(panicked) = Some(payload);
                        }
                        let _q = lock_ws(&ws.queue);
                        ws.cond.notify_all();
                        return;
                    }
                    let push_ready = |t: usize| {
                        if ws.deps[t].fetch_sub(1, Ordering::AcqRel) == 1 {
                            let mut q = lock_ws(&ws.queue);
                            q.push_back(t);
                            ws.cond.notify_one();
                        }
                    };
                    if forward {
                        if let Some(p) = plan.parent(s) {
                            push_ready(p);
                        }
                    } else {
                        for &c in plan.children(s) {
                            push_ready(c);
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // take the lock so no worker can slip between its
                        // empty-queue check and its wait, then wake all
                        let _q = lock_ws(&ws.queue);
                        ws.cond.notify_all();
                    }
                });
            }
        });
        let payload = lock_ws(panicked).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

/// Solve `L·Y = B` over the supernodal tree with the level-scheduled
/// worker pool. Produces the same arithmetic per supernode as
/// [`crate::seq::forward`]; only sibling execution order differs, and
/// siblings touch disjoint data.
///
/// Convenience wrapper that plans on every call; batch workloads should
/// hold a [`ThreadedSolver`] and a [`SolveWorkspace`] instead.
pub fn forward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    ThreadedSolver::new(f)
        .expect("factor partition is structurally valid")
        .forward(b)
}

/// Solve `Lᵀ·X = Y` with the level-scheduled worker pool (see [`forward`]).
pub fn backward(f: &SupernodalFactor, y: &DenseMatrix) -> DenseMatrix {
    ThreadedSolver::new(f)
        .expect("factor partition is structurally valid")
        .backward(y)
}

/// Forward + backward with the threaded solvers.
pub fn forward_backward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let solver = ThreadedSolver::new(f).expect("factor partition is structurally valid");
    let mut ws = solver.workspace(b.ncols());
    solver.forward_backward_with(b, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn build(a: &trisolv_matrix::CscMatrix) -> SupernodalFactor {
        let g = Graph::from_sym_lower(a);
        let p = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = analyze_with_perm(a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    #[test]
    fn threaded_forward_matches_seq() {
        let a = gen::grid2d_laplacian(12, 12);
        let f = build(&a);
        let b = gen::random_rhs(f.n(), 3, 1);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_backward_matches_seq() {
        let a = gen::grid3d_laplacian(4, 4, 4);
        let f = build(&a);
        let y = gen::random_rhs(f.n(), 2, 2);
        let seq_x = seq::backward(&f, &y);
        let par_x = backward(&f, &y);
        assert!(par_x.max_abs_diff(&seq_x).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_roundtrip_solves() {
        let a = gen::fem2d(5, 5, 2);
        let f = build(&a);
        let x_true = gen::random_rhs(f.n(), 2, 3);
        let b = f.llt_times(&x_true);
        let x = forward_backward(&f, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn handles_forest_of_roots() {
        // block-diagonal matrix → multiple etree roots
        let mut t = trisolv_matrix::TripletMatrix::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4, 6] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let a = t.to_csc();
        let f = build(&a);
        let b = gen::random_rhs(8, 1, 4);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-13);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let a = gen::grid2d_laplacian(10, 9);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        let mut ws = solver.workspace(4);
        for seed in 0..4 {
            let b = gen::random_rhs(f.n(), 4, seed);
            let expect = seq::forward_backward(&f, &b);
            let got = solver.forward_backward_with(&b, &mut ws);
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-12, "seed {seed}");
        }
        // narrower and wider blocks through the same workspace
        for nrhs in [1usize, 2, 8] {
            let b = gen::random_rhs(f.n(), nrhs, 17 + nrhs as u64);
            let expect = seq::forward(&f, &b);
            let got = solver.forward_with(&b, &mut ws);
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-12, "nrhs {nrhs}");
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let a = gen::fem2d(6, 5, 2);
        let f = build(&a);
        let b = gen::random_rhs(f.n(), 3, 9);
        let expect = seq::forward_backward(&f, &b);
        for nthreads in [1usize, 2, 3, 8] {
            let solver = ThreadedSolver::new(&f).unwrap().with_threads(nthreads);
            let mut ws = solver.workspace(3);
            let got = solver.forward_backward_with(&b, &mut ws);
            assert!(
                got.max_abs_diff(&expect).unwrap() < 1e-12,
                "nthreads {nthreads}"
            );
        }
    }

    #[test]
    fn zero_rhs_block() {
        let a = gen::grid2d_laplacian(6, 6);
        let f = build(&a);
        let b = DenseMatrix::zeros(f.n(), 0);
        let y = forward(&f, &b);
        assert_eq!(y.shape(), (f.n(), 0));
        let x = backward(&f, &b);
        assert_eq!(x.shape(), (f.n(), 0));
    }

    #[test]
    fn single_supernode_factor() {
        // a fully dense SPD matrix collapses to one supernode
        let n = 12;
        let mut t = trisolv_matrix::TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = if i == j { 2.0 * n as f64 } else { -0.5 };
                t.push(i, j, v).unwrap();
            }
        }
        let a = t.to_csc();
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        assert_eq!(solver.plan().nlevels(), 1);
        let b = gen::random_rhs(n, 2, 5);
        let seq_y = seq::forward(&f, &b);
        let par_y = solver.forward(&b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
        let x = solver.backward(&par_y);
        assert!(x.max_abs_diff(&seq::backward(&f, &seq_y)).unwrap() < 1e-12);
    }

    #[test]
    fn borrowed_plan_matches_owned_plan() {
        let a = gen::grid2d_laplacian(11, 7);
        let f = build(&a);
        let plan = SolvePlan::new(f.partition()).unwrap();
        let owned = ThreadedSolver::new(&f).unwrap();
        let borrowed = ThreadedSolver::with_plan(&f, &plan);
        let b = gen::random_rhs(f.n(), 3, 11);
        let mut ws = SolveWorkspace::new(&plan, 3);
        let x1 = owned.forward_backward_with(&b, &mut ws);
        let x2 = borrowed.forward_backward_with(&b, &mut ws);
        // identical plan + identical kernels → identical bits
        assert_eq!(x1.as_slice(), x2.as_slice());
    }

    #[test]
    fn panicking_task_aborts_pool_without_hanging() {
        let a = gen::grid2d_laplacian(12, 12);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap().with_threads(4);
        let mut ws = solver.workspace(2);
        // Every task panics; pre-hardening this deadlocked the pool
        // (workers waited forever on dependency decrements that never
        // came). Now the panic must propagate out of `run`...
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            solver.run(&ws, true, &|_s, _ws| panic!("boom in task"));
        }));
        assert!(caught.is_err(), "task panic must propagate, not hang");
        // ...and the same (possibly poison-recovered) workspace must still
        // serve correct solves afterwards.
        let b = gen::random_rhs(f.n(), 2, 21);
        let expect = seq::forward_backward(&f, &b);
        let got = solver.forward_backward_with(&b, &mut ws);
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn plan_exposes_schedule_stats() {
        let a = gen::grid2d_laplacian(16, 16);
        let f = build(&a);
        let solver = ThreadedSolver::new(&f).unwrap();
        let plan = solver.plan();
        assert!(plan.nlevels() >= 2, "grid tree must have depth");
        assert!(plan.max_level_width() >= 2, "grid tree must have breadth");
        let total: usize = (0..plan.nlevels()).map(|l| plan.level(l).len()).sum();
        assert_eq!(total, plan.nsup());
    }
}
