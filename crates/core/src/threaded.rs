//! Shared-memory parallel triangular solves (extension, not part of the
//! paper reproduction path).
//!
//! A modern counterpart to the paper's distributed-memory algorithms:
//! the supernodal elimination tree is walked with recursive fork-join
//! parallelism (`rayon::join` at every branching), which is exactly the
//! multifrontal dataflow — each supernode receives dense update vectors
//! from its children (forward) or the solved ancestor values (backward),
//! so siblings never write shared state and the computation is
//! deterministic.

use rayon::prelude::*;
use trisolv_factor::{blas, SupernodalFactor};
use trisolv_matrix::DenseMatrix;

/// Per-supernode working vector carried up (forward) the tree: the
/// contribution of a subtree to its ancestors, indexed like
/// `partition.below_rows(s)`.
struct Update {
    snode: usize,
    vals: DenseMatrix, // below-rows × nrhs
}

/// Solved `(global row, values)` pairs produced by one subtree.
type SolvedRows = Vec<(usize, Vec<f64>)>;

/// Solve `L·Y = B` with fork-join parallelism over the supernodal tree.
/// Produces bitwise the same result as [`crate::seq::forward`] on trees
/// where each root subtree is independent (the arithmetic per supernode is
/// identical; only sibling execution order differs, and siblings touch
/// disjoint data).
pub fn forward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = b.ncols();
    assert_eq!(b.nrows(), n);
    let children = part.children();
    let mut y = DenseMatrix::zeros(n, nrhs);
    // Solve each root subtree independently; collect per-column solutions.
    let roots = part.roots();
    let pieces: Vec<SolvedRows> = roots
        .par_iter()
        .map(|&r| {
            let mut out = Vec::new();
            let upd = forward_rec(f, &children, r, b, &mut out);
            debug_assert!(upd.vals.nrows() == part.below_rows(r).len());
            out
        })
        .collect();
    for piece in pieces {
        for (gi, vals) in piece {
            for (c, v) in vals.into_iter().enumerate() {
                y[(gi, c)] = v;
            }
        }
    }
    y
}

/// Recursive forward worker: returns this subtree's update contribution to
/// its ancestors and appends solved `(row, values)` pairs to `out`.
fn forward_rec(
    f: &SupernodalFactor,
    children: &[Vec<usize>],
    s: usize,
    b: &DenseMatrix,
    out: &mut SolvedRows,
) -> Update {
    let part = f.partition();
    let nrhs = b.ncols();
    // recurse into children in parallel
    let child_updates: Vec<(Update, SolvedRows)> = children[s]
        .par_iter()
        .map(|&c| {
            let mut sub_out = Vec::new();
            let u = forward_rec(f, children, c, b, &mut sub_out);
            (u, sub_out)
        })
        .collect();

    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let blk = f.block(s);
    // assemble: w = b over the supernode's full height, plus child updates
    let mut w = DenseMatrix::zeros(ns, nrhs);
    for c in 0..nrhs {
        for (k, &gi) in rows[..t].iter().enumerate() {
            w[(k, c)] = b[(gi, c)];
        }
    }
    for (u, sub_out) in child_updates {
        out.extend(sub_out);
        let crows = part.below_rows(u.snode);
        // extend-add: child's below rows land inside this supernode's rows
        let mut pos = 0usize;
        for (ci, &gi) in crows.iter().enumerate() {
            while rows[pos] != gi {
                pos += 1;
            }
            for c in 0..nrhs {
                w[(pos, c)] += u.vals[(ci, c)];
            }
        }
    }
    // solve the triangle, apply the rectangle
    blas::trsm_lower_left(blk.as_slice(), ns, w.as_mut_slice(), ns, t, nrhs);
    for c in 0..nrhs {
        for k in 0..t {
            let xv = w[(k, c)];
            if xv == 0.0 {
                continue;
            }
            for i in t..ns {
                let upd = blk[(i, k)] * xv;
                w[(i, c)] -= upd;
            }
        }
    }
    for (k, &gi) in rows[..t].iter().enumerate() {
        let mut v = Vec::with_capacity(nrhs);
        for c in 0..nrhs {
            v.push(w[(k, c)]);
        }
        out.push((gi, v));
    }
    let mut vals = DenseMatrix::zeros(ns - t, nrhs);
    for c in 0..nrhs {
        vals.col_mut(c).copy_from_slice(&w.col(c)[t..ns]);
    }
    Update { snode: s, vals }
}

/// Solve `Lᵀ·X = Y` with fork-join parallelism over the supernodal tree.
pub fn backward(f: &SupernodalFactor, y: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = y.ncols();
    assert_eq!(y.nrows(), n);
    let children = part.children();
    let mut x = DenseMatrix::zeros(n, nrhs);
    let pieces: Vec<SolvedRows> = part
        .roots()
        .par_iter()
        .map(|&r| {
            let mut out = Vec::new();
            // roots have no ancestors: empty below-values
            let below = DenseMatrix::zeros(part.below_rows(r).len(), nrhs);
            backward_rec(f, &children, r, y, &below, &mut out);
            out
        })
        .collect();
    for piece in pieces {
        for (gi, vals) in piece {
            for (c, v) in vals.into_iter().enumerate() {
                x[(gi, c)] = v;
            }
        }
    }
    x
}

/// Recursive backward worker. `below` holds the already-solved x values
/// for `partition.below_rows(s)`.
fn backward_rec(
    f: &SupernodalFactor,
    children: &[Vec<usize>],
    s: usize,
    y: &DenseMatrix,
    below: &DenseMatrix,
    out: &mut SolvedRows,
) {
    let part = f.partition();
    let nrhs = y.ncols();
    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let blk = f.block(s);
    // w_top = y[cols] − L21ᵀ·x_below, then solve L11ᵀ
    let mut top = DenseMatrix::zeros(t, nrhs);
    for c in 0..nrhs {
        for (k, &gi) in rows[..t].iter().enumerate() {
            top[(k, c)] = y[(gi, c)];
        }
        for k in 0..t {
            let mut sum = 0.0;
            for i in t..ns {
                sum += blk[(i, k)] * below[(i - t, c)];
            }
            top[(k, c)] -= sum;
        }
    }
    blas::trsm_lower_trans_left(blk.as_slice(), ns, top.as_mut_slice(), t, t, nrhs);
    for (k, &gi) in rows[..t].iter().enumerate() {
        let mut v = Vec::with_capacity(nrhs);
        for c in 0..nrhs {
            v.push(top[(k, c)]);
        }
        out.push((gi, v));
    }
    // local x over the full supernode height, for children to slice from
    let mut xfull = DenseMatrix::zeros(ns, nrhs);
    for c in 0..nrhs {
        xfull.col_mut(c)[..t].copy_from_slice(top.col(c));
        xfull.col_mut(c)[t..].copy_from_slice(below.col(c));
    }
    let child_outs: Vec<SolvedRows> = children[s]
        .par_iter()
        .map(|&c| {
            let crows = part.below_rows(c);
            let mut cbelow = DenseMatrix::zeros(crows.len(), nrhs);
            let mut pos = 0usize;
            for (ci, &gi) in crows.iter().enumerate() {
                while rows[pos] != gi {
                    pos += 1;
                }
                for cc in 0..nrhs {
                    cbelow[(ci, cc)] = xfull[(pos, cc)];
                }
            }
            let mut sub_out = Vec::new();
            backward_rec(f, children, c, y, &cbelow, &mut sub_out);
            sub_out
        })
        .collect();
    for sub in child_outs {
        out.extend(sub);
    }
}

/// Forward + backward with the threaded solvers.
pub fn forward_backward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let y = forward(f, b);
    backward(f, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn build(a: &trisolv_matrix::CscMatrix) -> SupernodalFactor {
        let g = Graph::from_sym_lower(a);
        let p = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = analyze_with_perm(a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    #[test]
    fn threaded_forward_matches_seq() {
        let a = gen::grid2d_laplacian(12, 12);
        let f = build(&a);
        let b = gen::random_rhs(f.n(), 3, 1);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_backward_matches_seq() {
        let a = gen::grid3d_laplacian(4, 4, 4);
        let f = build(&a);
        let y = gen::random_rhs(f.n(), 2, 2);
        let seq_x = seq::backward(&f, &y);
        let par_x = backward(&f, &y);
        assert!(par_x.max_abs_diff(&seq_x).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_roundtrip_solves() {
        let a = gen::fem2d(5, 5, 2);
        let f = build(&a);
        let x_true = gen::random_rhs(f.n(), 2, 3);
        let b = f.llt_times(&x_true);
        let x = forward_backward(&f, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn handles_forest_of_roots() {
        // block-diagonal matrix → multiple etree roots
        let mut t = trisolv_matrix::TripletMatrix::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4, 6] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let a = t.to_csc();
        let f = build(&a);
        let b = gen::random_rhs(8, 1, 4);
        let seq_y = seq::forward(&f, &b);
        let par_y = forward(&f, &b);
        assert!(par_y.max_abs_diff(&seq_y).unwrap() < 1e-13);
    }
}
