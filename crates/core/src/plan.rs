//! Precomputed execution plan for the shared-memory triangular solver.
//!
//! Triangular solves are latency- and overhead-bound (the paper's central
//! observation), so everything that can be decided before numerical work
//! starts is decided here, once per factor:
//!
//! * a **topological level schedule** of the supernodal elimination tree
//!   (leaves at level 0), giving the executor its initial ready set and a
//!   critical-path bound on achievable parallelism;
//! * **static dependency counts** (children per supernode), copied into
//!   atomic counters at solve time and decremented as tasks finish — no
//!   recursion, no fork-join bookkeeping;
//! * **scatter index maps** from every child's below-diagonal rows to
//!   positions in its parent's row pattern, replacing the per-solve linear
//!   `while rows[pos] != gi` searches of the old fork-join implementation.
//!
//! Plan construction validates the structural invariant the maps rely on —
//! every child below-row must appear in the parent's pattern — and returns
//! a structured [`PlanError`] instead of walking off the end of an array
//! when a malformed partition is supplied.

use trisolv_symbolic::supernode::SupernodePartition;

/// Sentinel for "no parent" inside [`SolvePlan`].
const NONE: usize = usize::MAX;

/// A structural defect found while planning a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A child supernode has a below-diagonal row that does not appear in
    /// its parent's row pattern, so its update has nowhere to land.
    NonNestedChild {
        /// The offending child supernode.
        child: usize,
        /// Its parent in the supernodal tree.
        parent: usize,
        /// The global row index missing from the parent's pattern.
        row: usize,
    },
    /// A root supernode has rows below its triangle but no parent to
    /// receive them.
    RootWithBelowRows {
        /// The offending root supernode.
        snode: usize,
        /// Its first orphaned below-diagonal row.
        row: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanError::NonNestedChild { child, parent, row } => write!(
                f,
                "supernode {child}: below-row {row} is missing from the row \
                 pattern of its parent supernode {parent}"
            ),
            PlanError::RootWithBelowRows { snode, row } => write!(
                f,
                "root supernode {snode} has below-diagonal row {row} but no \
                 parent to receive its update"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Precomputed schedule and index maps for level-scheduled solves over one
/// supernodal factor. Built once (O(|L| pattern) time), reused by every
/// forward/backward solve.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    n: usize,
    /// `first_col[s]..first_col[s+1]` are supernode `s`'s columns (also its
    /// top rows — the partition stores them contiguously).
    first_col: Vec<usize>,
    /// Trapezoid height of each supernode.
    height: Vec<usize>,
    /// Parent supernode (`NONE` at roots).
    parent: Vec<usize>,
    /// Children lists in CSR form.
    child_ptr: Vec<usize>,
    child_idx: Vec<usize>,
    /// `scatter_idx[scatter_ptr[s] + i]` is the position inside the
    /// parent's row pattern of `below_rows(s)[i]`.
    scatter_ptr: Vec<usize>,
    scatter_idx: Vec<usize>,
    /// Supernodes grouped by tree level, leaves (level 0) first.
    level_ptr: Vec<usize>,
    level_order: Vec<usize>,
    /// Root supernodes (the backward pass's initial ready set).
    roots: Vec<usize>,
}

impl SolvePlan {
    /// Build a plan from a supernode partition, validating that every
    /// child's below-rows nest inside its parent's pattern.
    pub fn new(part: &SupernodePartition) -> Result<SolvePlan, PlanError> {
        let nsup = part.nsup();
        let mut first_col = Vec::with_capacity(nsup + 1);
        for s in 0..nsup {
            first_col.push(part.cols(s).start);
        }
        first_col.push(part.n());
        let height: Vec<usize> = (0..nsup).map(|s| part.height(s)).collect();
        let parent: Vec<usize> = (0..nsup).map(|s| part.parent(s).unwrap_or(NONE)).collect();

        // children in CSR form (counting sort over parents)
        let mut child_ptr = vec![0usize; nsup + 1];
        for s in 0..nsup {
            if parent[s] != NONE {
                child_ptr[parent[s] + 1] += 1;
            }
        }
        for s in 0..nsup {
            child_ptr[s + 1] += child_ptr[s];
        }
        let mut next = child_ptr.clone();
        let mut child_idx = vec![0usize; child_ptr[nsup]];
        for s in 0..nsup {
            if parent[s] != NONE {
                child_idx[next[parent[s]]] = s;
                next[parent[s]] += 1;
            }
        }

        // scatter maps: merge-walk each child's below rows against the
        // parent's (strictly increasing) row pattern
        let mut scatter_ptr = Vec::with_capacity(nsup + 1);
        scatter_ptr.push(0usize);
        let mut scatter_idx = Vec::new();
        for s in 0..nsup {
            let below = part.below_rows(s);
            if parent[s] == NONE {
                if let Some(&row) = below.first() {
                    return Err(PlanError::RootWithBelowRows { snode: s, row });
                }
                scatter_ptr.push(scatter_idx.len());
                continue;
            }
            let prows = part.rows(parent[s]);
            let mut pos = 0usize;
            for &gi in below {
                while pos < prows.len() && prows[pos] < gi {
                    pos += 1;
                }
                if pos >= prows.len() || prows[pos] != gi {
                    return Err(PlanError::NonNestedChild {
                        child: s,
                        parent: parent[s],
                        row: gi,
                    });
                }
                scatter_idx.push(pos);
                pos += 1;
            }
            scatter_ptr.push(scatter_idx.len());
        }

        // level schedule: level(s) = 1 + max level over children, leaves 0.
        // Children always precede parents in the postordered partition, so
        // one ascending pass suffices.
        let mut level = vec![0usize; nsup];
        let mut nlevels = 0usize;
        for s in 0..nsup {
            let l = child_idx[child_ptr[s]..child_ptr[s + 1]]
                .iter()
                .map(|&c| level[c] + 1)
                .max()
                .unwrap_or(0);
            level[s] = l;
            nlevels = nlevels.max(l + 1);
        }
        let mut level_ptr = vec![0usize; nlevels + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..nlevels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut level_order = vec![0usize; nsup];
        for s in 0..nsup {
            level_order[next[level[s]]] = s;
            next[level[s]] += 1;
        }

        let roots = (0..nsup).filter(|&s| parent[s] == NONE).collect();
        Ok(SolvePlan {
            n: part.n(),
            first_col,
            height,
            parent,
            child_ptr,
            child_idx,
            scatter_ptr,
            scatter_idx,
            level_ptr,
            level_order,
            roots,
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.height.len()
    }

    /// Column range (= top rows) of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.first_col[s]..self.first_col[s + 1]
    }

    /// Width of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.first_col[s + 1] - self.first_col[s]
    }

    /// Trapezoid height of supernode `s`.
    pub fn height(&self, s: usize) -> usize {
        self.height[s]
    }

    /// Parent supernode, or `None` at a root.
    pub fn parent(&self, s: usize) -> Option<usize> {
        match self.parent[s] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Children of supernode `s`.
    pub fn children(&self, s: usize) -> &[usize] {
        &self.child_idx[self.child_ptr[s]..self.child_ptr[s + 1]]
    }

    /// Number of children of supernode `s` — the forward-solve dependency
    /// count.
    pub fn n_children(&self, s: usize) -> usize {
        self.child_ptr[s + 1] - self.child_ptr[s]
    }

    /// Positions of `below_rows(s)` inside the parent's row pattern.
    pub fn scatter(&self, s: usize) -> &[usize] {
        &self.scatter_idx[self.scatter_ptr[s]..self.scatter_ptr[s + 1]]
    }

    /// Number of tree levels (the solve's critical-path length in
    /// supernode tasks).
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Supernodes at level `l` (leaves are level 0).
    pub fn level(&self, l: usize) -> &[usize] {
        &self.level_order[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Widest level — an upper bound on exploitable task parallelism.
    pub fn max_level_width(&self) -> usize {
        (0..self.nlevels())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }

    /// Supernodes with no children (the forward pass's initial ready set).
    pub fn leaves(&self) -> &[usize] {
        self.level(0)
    }

    /// Root supernodes (the backward pass's initial ready set).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Estimated solve flops for supernode `s`, one right-hand side: the
    /// dense triangular solve on the t×t apex plus the rectangular update
    /// below it (counting one multiply + one add per entry).
    pub fn solve_flops(&self, s: usize) -> u64 {
        let t = self.width(s) as u64;
        let h = self.height(s) as u64;
        t * t + 2 * t * (h - t)
    }

    /// Cut the elimination forest at a cost-balanced frontier and bin-pack
    /// the resulting subtrees onto `nthreads` execution slots. See
    /// [`SubtreeSchedule`].
    pub fn subtree_schedule(&self, nthreads: usize) -> SubtreeSchedule {
        SubtreeSchedule::new(self, nthreads)
    }
}

/// Subtree-to-thread mapping: the shared-memory analogue of the paper's
/// subtree-to-subcube mapping.
///
/// The elimination forest is cut at a cost-balanced frontier. Every
/// complete subtree hanging below the cut becomes ONE sequential task —
/// no atomics, queue operations, or wakeups inside it — and the disjoint
/// subtrees are bin-packed onto `nthreads` slots by per-supernode flop
/// estimates (largest-processing-time-first). Only the supernodes *above*
/// the cut ("top" supernodes) go through fine-grained dependency dispatch;
/// for a balanced forest that is O(p log p) supernodes out of thousands.
///
/// The construction is deterministic: identical plans and thread counts
/// yield identical schedules, which lets workspaces cache their arena
/// layouts and keeps parallel execution bit-reproducible.
#[derive(Debug, Clone)]
pub struct SubtreeSchedule {
    nthreads: usize,
    /// Subtree tasks in CSR form; supernodes of each task sorted ascending,
    /// which is a topological order (parents have larger indices than
    /// children). The task's root is its last element.
    task_ptr: Vec<usize>,
    task_snodes: Vec<usize>,
    /// Static slot assignment: `slot_tasks[slot_ptr[i]..slot_ptr[i+1]]` are
    /// the tasks pinned to slot `i`.
    slot_ptr: Vec<usize>,
    slot_tasks: Vec<usize>,
    /// Supernodes above the cut, ascending.
    top: Vec<usize>,
    /// Task owning each supernode (`NONE` for top supernodes).
    task_of: Vec<usize>,
    /// Slot each task is pinned to.
    slot_of: Vec<usize>,
    /// Rank of each top supernode inside `top` (`NONE` elsewhere).
    top_rank: Vec<usize>,
    /// Estimated flops (1 rhs) packed onto each slot.
    slot_flops: Vec<u64>,
    /// Estimated flops (1 rhs) of the fine-grained top phase.
    top_flops: u64,
}

impl SubtreeSchedule {
    fn new(plan: &SolvePlan, nthreads: usize) -> SubtreeSchedule {
        let nthreads = nthreads.max(1);
        let nsup = plan.nsup();
        let weight: Vec<u64> = (0..nsup).map(|s| plan.solve_flops(s).max(1)).collect();
        // Subtree weights in one ascending pass (children precede parents).
        let mut subtree = weight.clone();
        for s in 0..nsup {
            if let Some(p) = plan.parent(s) {
                subtree[p] += subtree[s];
            }
        }

        if nthreads == 1 || nsup <= 1 {
            // One task holding the whole forest: ascending index order is a
            // topological order, so the executor runs it with zero
            // synchronization.
            let total: u64 = plan.roots().iter().map(|&r| subtree[r]).sum();
            let (ntasks, task_of) = if nsup == 0 {
                (0, Vec::new())
            } else {
                (1, vec![0usize; nsup])
            };
            return SubtreeSchedule {
                nthreads,
                task_ptr: (0..=ntasks).map(|t| t * nsup).collect(),
                task_snodes: (0..nsup).collect(),
                slot_ptr: {
                    let mut p = vec![0usize; nthreads + 1];
                    for q in p.iter_mut().skip(1) {
                        *q = ntasks;
                    }
                    p
                },
                slot_tasks: (0..ntasks).collect(),
                top: Vec::new(),
                task_of,
                slot_of: vec![0usize; ntasks],
                top_rank: vec![NONE; nsup],
                slot_flops: {
                    let mut f = vec![0u64; nthreads];
                    if ntasks > 0 {
                        f[0] = total;
                    }
                    f
                },
                top_flops: 0,
            };
        }

        // Frontier cut: repeatedly expand the heaviest remaining subtree
        // until every frontier subtree is below `total / (4 * nthreads)` —
        // small enough that LPT packing balances slots to within ~25% even
        // with imperfect flop estimates. A max-heap keyed by subtree weight
        // (ties broken by index) keeps the cut deterministic. Expansion is
        // capped so pathological chains cannot push the whole forest into
        // the fine-grained phase.
        use std::collections::BinaryHeap;
        let total: u64 = plan.roots().iter().map(|&r| subtree[r]).sum();
        let cutoff = total / (4 * nthreads as u64) + 1;
        let max_expand = 16 * nthreads + 64;
        let mut heap: BinaryHeap<(u64, usize)> =
            plan.roots().iter().map(|&r| (subtree[r], r)).collect();
        let mut top: Vec<usize> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();
        while let Some(&(w, s)) = heap.peek() {
            if w <= cutoff || top.len() >= max_expand {
                break;
            }
            heap.pop();
            if plan.n_children(s) == 0 {
                // a single heavy supernode cannot be split further
                frontier.push(s);
                continue;
            }
            top.push(s);
            for &c in plan.children(s) {
                heap.push((subtree[c], c));
            }
        }
        frontier.extend(heap.into_iter().map(|(_, s)| s));
        top.sort_unstable();

        // Materialize tasks: collect each frontier subtree's members and
        // sort them ascending (= topological). Heaviest-first task order
        // feeds straight into LPT packing below.
        frontier.sort_by(|&a, &b| subtree[b].cmp(&subtree[a]).then(a.cmp(&b)));
        let ntasks = frontier.len();
        let mut task_of = vec![NONE; nsup];
        let mut top_rank = vec![NONE; nsup];
        for (i, &s) in top.iter().enumerate() {
            top_rank[s] = i;
        }
        let mut task_ptr = Vec::with_capacity(ntasks + 1);
        task_ptr.push(0usize);
        let mut task_snodes = Vec::with_capacity(nsup - top.len());
        let mut stack: Vec<usize> = Vec::new();
        for (tid, &r) in frontier.iter().enumerate() {
            let start = task_snodes.len();
            stack.push(r);
            while let Some(s) = stack.pop() {
                task_snodes.push(s);
                task_of[s] = tid;
                stack.extend_from_slice(plan.children(s));
            }
            task_snodes[start..].sort_unstable();
            task_ptr.push(task_snodes.len());
        }

        // LPT bin-packing: tasks are already sorted by weight descending;
        // each goes to the least-loaded slot (lowest index on ties).
        let mut slot_flops = vec![0u64; nthreads];
        let mut slot_of_task = vec![0usize; ntasks];
        for (tid, &r) in frontier.iter().enumerate() {
            let mut best = 0usize;
            for i in 1..nthreads {
                if slot_flops[i] < slot_flops[best] {
                    best = i;
                }
            }
            slot_of_task[tid] = best;
            slot_flops[best] += subtree[r];
        }
        let mut slot_ptr = vec![0usize; nthreads + 1];
        for &i in &slot_of_task {
            slot_ptr[i + 1] += 1;
        }
        for i in 0..nthreads {
            slot_ptr[i + 1] += slot_ptr[i];
        }
        let mut next = slot_ptr.clone();
        let mut slot_tasks = vec![0usize; ntasks];
        for (tid, &i) in slot_of_task.iter().enumerate() {
            slot_tasks[next[i]] = tid;
            next[i] += 1;
        }
        let top_flops = top.iter().map(|&s| weight[s]).sum();

        SubtreeSchedule {
            nthreads,
            task_ptr,
            task_snodes,
            slot_ptr,
            slot_tasks,
            top,
            task_of,
            slot_of: slot_of_task,
            top_rank,
            slot_flops,
            top_flops,
        }
    }

    /// Number of execution slots the schedule was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Number of subtree tasks.
    pub fn n_tasks(&self) -> usize {
        self.task_ptr.len() - 1
    }

    /// Supernodes of task `t`, ascending (a topological order).
    pub fn task(&self, t: usize) -> &[usize] {
        &self.task_snodes[self.task_ptr[t]..self.task_ptr[t + 1]]
    }

    /// Root supernode of task `t` (its last, largest-index member).
    pub fn task_root(&self, t: usize) -> usize {
        self.task_snodes[self.task_ptr[t + 1] - 1]
    }

    /// Tasks pinned to slot `i`.
    pub fn slot(&self, i: usize) -> &[usize] {
        &self.slot_tasks[self.slot_ptr[i]..self.slot_ptr[i + 1]]
    }

    /// Slot task `t` is pinned to.
    pub fn slot_of(&self, t: usize) -> usize {
        self.slot_of[t]
    }

    /// Number of supernodes the schedule covers (for validating against a
    /// plan).
    pub fn n_snodes(&self) -> usize {
        self.task_of.len()
    }

    /// Supernodes above the cut, ascending.
    pub fn top(&self) -> &[usize] {
        &self.top
    }

    /// Task owning supernode `s`, or `None` for a top supernode.
    pub fn task_of(&self, s: usize) -> Option<usize> {
        match self.task_of[s] {
            NONE => None,
            t => Some(t),
        }
    }

    /// Rank of top supernode `s` inside [`Self::top`], or `None`.
    pub fn top_rank(&self, s: usize) -> Option<usize> {
        match self.top_rank[s] {
            NONE => None,
            r => Some(r),
        }
    }

    /// Estimated flops (one rhs) packed onto each slot.
    pub fn slot_flops(&self) -> &[u64] {
        &self.slot_flops
    }

    /// Estimated flops (one rhs) spent in the fine-grained top phase.
    pub fn top_flops(&self) -> u64 {
        self.top_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_symbolic::SymbolicFactor;

    fn partition(a: &trisolv_matrix::CscMatrix) -> SupernodePartition {
        let t = trisolv_graph::EliminationTree::from_sym_lower(a);
        let post = t.postorder();
        let pa = a.permute_sym_lower(post.as_slice()).unwrap();
        let t = trisolv_graph::EliminationTree::from_sym_lower(&pa);
        let sym = SymbolicFactor::analyze(&pa, &t);
        SupernodePartition::from_symbolic(&sym)
    }

    #[test]
    fn plan_matches_partition_structure() {
        let a = trisolv_matrix::gen::grid2d_laplacian(9, 8);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        assert_eq!(plan.n(), part.n());
        assert_eq!(plan.nsup(), part.nsup());
        for s in 0..part.nsup() {
            assert_eq!(plan.cols(s), part.cols(s));
            assert_eq!(plan.width(s), part.width(s));
            assert_eq!(plan.height(s), part.height(s));
            assert_eq!(plan.parent(s), part.parent(s));
            assert_eq!(plan.n_children(s), plan.children(s).len());
            // scatter positions index the right global rows
            if let Some(p) = part.parent(s) {
                let prows = part.rows(p);
                for (i, &gi) in part.below_rows(s).iter().enumerate() {
                    assert_eq!(prows[plan.scatter(s)[i]], gi);
                }
            }
        }
    }

    #[test]
    fn levels_topologically_ordered() {
        let a = trisolv_matrix::gen::grid3d_laplacian(4, 4, 3);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        let mut level_of = vec![0usize; plan.nsup()];
        let mut seen = 0;
        for l in 0..plan.nlevels() {
            for &s in plan.level(l) {
                level_of[s] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, plan.nsup());
        for s in 0..plan.nsup() {
            for &c in plan.children(s) {
                assert!(level_of[c] < level_of[s], "child {c} not below parent {s}");
            }
            if plan.n_children(s) == 0 {
                assert_eq!(level_of[s], 0, "leaf {s} must be level 0");
            }
        }
        assert!(plan.max_level_width() >= plan.leaves().len().min(plan.nsup()));
    }

    #[test]
    fn roots_and_leaves_cover_forest() {
        // block-diagonal → forest with several roots
        let mut t = trisolv_matrix::TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let part = partition(&t.to_csc());
        let plan = SolvePlan::new(&part).unwrap();
        assert_eq!(plan.roots().len(), 3);
        for &r in plan.roots() {
            assert!(plan.parent(r).is_none());
        }
    }

    #[test]
    fn nested_hand_built_partition_accepted() {
        // supernode 0 = col 0 with below-row 2; supernode 1 = cols 1..5
        // whose pattern contains row 2 -> the scatter map resolves.
        let ok = SupernodePartition::from_raw(
            vec![0, 1, 5],
            vec![0, 1, 1, 1, 1],
            vec![vec![0, 2], vec![1, 2, 3, 4]],
            vec![1, usize::MAX],
        );
        let plan = SolvePlan::new(&ok).unwrap();
        assert_eq!(plan.scatter(0), &[1], "row 2 sits at parent position 1");
    }

    #[test]
    fn missing_parent_row_is_structured_error() {
        // supernode 0 = {col 0, below row 3}; parent supernode holds cols
        // {1,2} with pattern {1,2} only — row 3 lives in supernode 2.
        // parent(0) = 1 but row 3 is not in supernode 1's pattern.
        let bad = SupernodePartition::from_raw(
            vec![0, 1, 3, 4],
            vec![0, 1, 1, 2],
            vec![vec![0, 3], vec![1, 2], vec![3]],
            vec![1, usize::MAX, usize::MAX],
        );
        match SolvePlan::new(&bad) {
            Err(PlanError::NonNestedChild {
                child: 0,
                parent: 1,
                row: 3,
            }) => {}
            other => panic!("expected NonNestedChild, got {other:?}"),
        }
    }

    #[test]
    fn root_with_below_rows_is_structured_error() {
        let bad = SupernodePartition::from_raw(
            vec![0, 1, 2],
            vec![0, 1],
            vec![vec![0, 1], vec![1]],
            vec![usize::MAX, usize::MAX],
        );
        match SolvePlan::new(&bad) {
            Err(PlanError::RootWithBelowRows { snode: 0, row: 1 }) => {}
            other => panic!("expected RootWithBelowRows, got {other:?}"),
        }
    }

    /// Every supernode is either a top supernode or in exactly one task;
    /// tasks are complete subtrees; the top set is upward-closed.
    fn check_schedule_invariants(plan: &SolvePlan, sched: &SubtreeSchedule) {
        let nsup = plan.nsup();
        let mut seen = vec![false; nsup];
        for t in 0..sched.n_tasks() {
            let snodes = sched.task(t);
            assert!(!snodes.is_empty());
            assert_eq!(sched.task_root(t), *snodes.last().unwrap());
            for w in snodes.windows(2) {
                assert!(w[0] < w[1], "task members must ascend");
            }
            for &s in snodes {
                assert!(!seen[s], "supernode {s} in two tasks");
                seen[s] = true;
                assert_eq!(sched.task_of(s), Some(t));
                // descendant-closed: a non-root member's parent (when it has
                // one — whole-forest tasks hold several roots) stays inside
                if s != sched.task_root(t) {
                    if let Some(p) = plan.parent(s) {
                        assert_eq!(sched.task_of(p), Some(t), "task {t} not subtree-closed");
                    }
                }
            }
            // the task root's parent (if any) is above the cut
            if let Some(p) = plan.parent(sched.task_root(t)) {
                assert!(sched.task_of(p).is_none(), "cut edge must go to top");
            }
        }
        for (i, &s) in sched.top().iter().enumerate() {
            assert!(!seen[s], "top supernode {s} also in a task");
            seen[s] = true;
            assert_eq!(sched.task_of(s), None);
            assert_eq!(sched.top_rank(s), Some(i));
            if let Some(p) = plan.parent(s) {
                assert!(sched.task_of(p).is_none(), "top set must be upward-closed");
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "schedule must cover all supernodes"
        );
        // slot assignment covers all tasks exactly once
        let mut task_seen = vec![false; sched.n_tasks()];
        for i in 0..sched.nthreads() {
            for &t in sched.slot(i) {
                assert!(!task_seen[t]);
                task_seen[t] = true;
            }
        }
        assert!(task_seen.iter().all(|&b| b));
    }

    #[test]
    fn schedule_partitions_forest_for_various_thread_counts() {
        let a = trisolv_matrix::gen::grid2d_laplacian(24, 24);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        for t in [1, 2, 3, 4, 8, 17] {
            let sched = plan.subtree_schedule(t);
            assert_eq!(sched.nthreads(), t);
            check_schedule_invariants(&plan, &sched);
            if t == 1 {
                assert!(sched.top().is_empty(), "T=1 must run lock-free");
                assert_eq!(sched.n_tasks(), 1);
                assert_eq!(sched.task(0).len(), plan.nsup());
            } else {
                assert!(sched.n_tasks() >= t.min(plan.leaves().len()));
            }
        }
    }

    /// Nested-dissection ordering gives the bushy elimination tree the cut
    /// heuristic is designed for (natural grid ordering yields a chain).
    fn nd_partition(a: &trisolv_matrix::CscMatrix) -> SupernodePartition {
        let g = trisolv_graph::Graph::from_sym_lower(a);
        let perm =
            trisolv_graph::nd::nested_dissection(&g, trisolv_graph::nd::NdOptions::default());
        let pa = a.permute_sym_lower(perm.as_slice()).unwrap();
        partition(&pa)
    }

    #[test]
    fn schedule_is_deterministic_and_balanced() {
        let a = trisolv_matrix::gen::grid2d_laplacian(32, 32);
        let part = nd_partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        let s1 = plan.subtree_schedule(4);
        let s2 = plan.subtree_schedule(4);
        assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
        // LPT over a cut at total/(4T) keeps the heaviest slot within 2x of
        // the lightest on a regular grid.
        let max = *s1.slot_flops().iter().max().unwrap();
        let min = *s1.slot_flops().iter().min().unwrap();
        assert!(min > 0, "every slot should receive work on a big grid");
        assert!(
            max <= 2 * min,
            "slot imbalance too high: {:?}",
            s1.slot_flops()
        );
        // the fine-grained phase must be a small fraction of total work
        let total: u64 = (0..plan.nsup()).map(|s| plan.solve_flops(s).max(1)).sum();
        assert!(
            s1.top_flops() < total / 2,
            "top phase holds {} of {} flops",
            s1.top_flops(),
            total
        );
    }

    #[test]
    fn schedule_handles_forest_and_tiny_factors() {
        // forest of three independent 2-chains
        let mut t = trisolv_matrix::TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let part = partition(&t.to_csc());
        let plan = SolvePlan::new(&part).unwrap();
        for nt in [1, 2, 8] {
            check_schedule_invariants(&plan, &plan.subtree_schedule(nt));
        }
        // single-supernode factor degenerates to one task, no top phase
        let a = trisolv_matrix::gen::grid2d_laplacian(2, 1);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        let sched = plan.subtree_schedule(4);
        check_schedule_invariants(&plan, &sched);
        assert!(sched.top().is_empty());
    }

    #[test]
    fn solve_flops_matches_trapezoid_cost() {
        let a = trisolv_matrix::gen::grid2d_laplacian(8, 8);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        for s in 0..plan.nsup() {
            let t = plan.width(s) as u64;
            let h = plan.height(s) as u64;
            assert_eq!(plan.solve_flops(s), t * t + 2 * t * (h - t));
        }
    }

    #[test]
    fn plan_error_displays() {
        let e = PlanError::NonNestedChild {
            child: 1,
            parent: 2,
            row: 7,
        };
        assert!(e.to_string().contains("supernode 1"));
        let e = PlanError::RootWithBelowRows { snode: 3, row: 9 };
        assert!(e.to_string().contains("root supernode 3"));
    }
}
