//! Precomputed execution plan for the shared-memory triangular solver.
//!
//! Triangular solves are latency- and overhead-bound (the paper's central
//! observation), so everything that can be decided before numerical work
//! starts is decided here, once per factor:
//!
//! * a **topological level schedule** of the supernodal elimination tree
//!   (leaves at level 0), giving the executor its initial ready set and a
//!   critical-path bound on achievable parallelism;
//! * **static dependency counts** (children per supernode), copied into
//!   atomic counters at solve time and decremented as tasks finish — no
//!   recursion, no fork-join bookkeeping;
//! * **scatter index maps** from every child's below-diagonal rows to
//!   positions in its parent's row pattern, replacing the per-solve linear
//!   `while rows[pos] != gi` searches of the old fork-join implementation.
//!
//! Plan construction validates the structural invariant the maps rely on —
//! every child below-row must appear in the parent's pattern — and returns
//! a structured [`PlanError`] instead of walking off the end of an array
//! when a malformed partition is supplied.

use trisolv_symbolic::supernode::SupernodePartition;

/// Sentinel for "no parent" inside [`SolvePlan`].
const NONE: usize = usize::MAX;

/// A structural defect found while planning a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A child supernode has a below-diagonal row that does not appear in
    /// its parent's row pattern, so its update has nowhere to land.
    NonNestedChild {
        /// The offending child supernode.
        child: usize,
        /// Its parent in the supernodal tree.
        parent: usize,
        /// The global row index missing from the parent's pattern.
        row: usize,
    },
    /// A root supernode has rows below its triangle but no parent to
    /// receive them.
    RootWithBelowRows {
        /// The offending root supernode.
        snode: usize,
        /// Its first orphaned below-diagonal row.
        row: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanError::NonNestedChild { child, parent, row } => write!(
                f,
                "supernode {child}: below-row {row} is missing from the row \
                 pattern of its parent supernode {parent}"
            ),
            PlanError::RootWithBelowRows { snode, row } => write!(
                f,
                "root supernode {snode} has below-diagonal row {row} but no \
                 parent to receive its update"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Precomputed schedule and index maps for level-scheduled solves over one
/// supernodal factor. Built once (O(|L| pattern) time), reused by every
/// forward/backward solve.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    n: usize,
    /// `first_col[s]..first_col[s+1]` are supernode `s`'s columns (also its
    /// top rows — the partition stores them contiguously).
    first_col: Vec<usize>,
    /// Trapezoid height of each supernode.
    height: Vec<usize>,
    /// Parent supernode (`NONE` at roots).
    parent: Vec<usize>,
    /// Children lists in CSR form.
    child_ptr: Vec<usize>,
    child_idx: Vec<usize>,
    /// `scatter_idx[scatter_ptr[s] + i]` is the position inside the
    /// parent's row pattern of `below_rows(s)[i]`.
    scatter_ptr: Vec<usize>,
    scatter_idx: Vec<usize>,
    /// Supernodes grouped by tree level, leaves (level 0) first.
    level_ptr: Vec<usize>,
    level_order: Vec<usize>,
    /// Root supernodes (the backward pass's initial ready set).
    roots: Vec<usize>,
}

impl SolvePlan {
    /// Build a plan from a supernode partition, validating that every
    /// child's below-rows nest inside its parent's pattern.
    pub fn new(part: &SupernodePartition) -> Result<SolvePlan, PlanError> {
        let nsup = part.nsup();
        let mut first_col = Vec::with_capacity(nsup + 1);
        for s in 0..nsup {
            first_col.push(part.cols(s).start);
        }
        first_col.push(part.n());
        let height: Vec<usize> = (0..nsup).map(|s| part.height(s)).collect();
        let parent: Vec<usize> = (0..nsup).map(|s| part.parent(s).unwrap_or(NONE)).collect();

        // children in CSR form (counting sort over parents)
        let mut child_ptr = vec![0usize; nsup + 1];
        for s in 0..nsup {
            if parent[s] != NONE {
                child_ptr[parent[s] + 1] += 1;
            }
        }
        for s in 0..nsup {
            child_ptr[s + 1] += child_ptr[s];
        }
        let mut next = child_ptr.clone();
        let mut child_idx = vec![0usize; child_ptr[nsup]];
        for s in 0..nsup {
            if parent[s] != NONE {
                child_idx[next[parent[s]]] = s;
                next[parent[s]] += 1;
            }
        }

        // scatter maps: merge-walk each child's below rows against the
        // parent's (strictly increasing) row pattern
        let mut scatter_ptr = Vec::with_capacity(nsup + 1);
        scatter_ptr.push(0usize);
        let mut scatter_idx = Vec::new();
        for s in 0..nsup {
            let below = part.below_rows(s);
            if parent[s] == NONE {
                if let Some(&row) = below.first() {
                    return Err(PlanError::RootWithBelowRows { snode: s, row });
                }
                scatter_ptr.push(scatter_idx.len());
                continue;
            }
            let prows = part.rows(parent[s]);
            let mut pos = 0usize;
            for &gi in below {
                while pos < prows.len() && prows[pos] < gi {
                    pos += 1;
                }
                if pos >= prows.len() || prows[pos] != gi {
                    return Err(PlanError::NonNestedChild {
                        child: s,
                        parent: parent[s],
                        row: gi,
                    });
                }
                scatter_idx.push(pos);
                pos += 1;
            }
            scatter_ptr.push(scatter_idx.len());
        }

        // level schedule: level(s) = 1 + max level over children, leaves 0.
        // Children always precede parents in the postordered partition, so
        // one ascending pass suffices.
        let mut level = vec![0usize; nsup];
        let mut nlevels = 0usize;
        for s in 0..nsup {
            let l = child_idx[child_ptr[s]..child_ptr[s + 1]]
                .iter()
                .map(|&c| level[c] + 1)
                .max()
                .unwrap_or(0);
            level[s] = l;
            nlevels = nlevels.max(l + 1);
        }
        let mut level_ptr = vec![0usize; nlevels + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..nlevels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut level_order = vec![0usize; nsup];
        for s in 0..nsup {
            level_order[next[level[s]]] = s;
            next[level[s]] += 1;
        }

        let roots = (0..nsup).filter(|&s| parent[s] == NONE).collect();
        Ok(SolvePlan {
            n: part.n(),
            first_col,
            height,
            parent,
            child_ptr,
            child_idx,
            scatter_ptr,
            scatter_idx,
            level_ptr,
            level_order,
            roots,
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.height.len()
    }

    /// Column range (= top rows) of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.first_col[s]..self.first_col[s + 1]
    }

    /// Width of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.first_col[s + 1] - self.first_col[s]
    }

    /// Trapezoid height of supernode `s`.
    pub fn height(&self, s: usize) -> usize {
        self.height[s]
    }

    /// Parent supernode, or `None` at a root.
    pub fn parent(&self, s: usize) -> Option<usize> {
        match self.parent[s] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Children of supernode `s`.
    pub fn children(&self, s: usize) -> &[usize] {
        &self.child_idx[self.child_ptr[s]..self.child_ptr[s + 1]]
    }

    /// Number of children of supernode `s` — the forward-solve dependency
    /// count.
    pub fn n_children(&self, s: usize) -> usize {
        self.child_ptr[s + 1] - self.child_ptr[s]
    }

    /// Positions of `below_rows(s)` inside the parent's row pattern.
    pub fn scatter(&self, s: usize) -> &[usize] {
        &self.scatter_idx[self.scatter_ptr[s]..self.scatter_ptr[s + 1]]
    }

    /// Number of tree levels (the solve's critical-path length in
    /// supernode tasks).
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Supernodes at level `l` (leaves are level 0).
    pub fn level(&self, l: usize) -> &[usize] {
        &self.level_order[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Widest level — an upper bound on exploitable task parallelism.
    pub fn max_level_width(&self) -> usize {
        (0..self.nlevels())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }

    /// Supernodes with no children (the forward pass's initial ready set).
    pub fn leaves(&self) -> &[usize] {
        self.level(0)
    }

    /// Root supernodes (the backward pass's initial ready set).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_symbolic::SymbolicFactor;

    fn partition(a: &trisolv_matrix::CscMatrix) -> SupernodePartition {
        let t = trisolv_graph::EliminationTree::from_sym_lower(a);
        let post = t.postorder();
        let pa = a.permute_sym_lower(post.as_slice()).unwrap();
        let t = trisolv_graph::EliminationTree::from_sym_lower(&pa);
        let sym = SymbolicFactor::analyze(&pa, &t);
        SupernodePartition::from_symbolic(&sym)
    }

    #[test]
    fn plan_matches_partition_structure() {
        let a = trisolv_matrix::gen::grid2d_laplacian(9, 8);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        assert_eq!(plan.n(), part.n());
        assert_eq!(plan.nsup(), part.nsup());
        for s in 0..part.nsup() {
            assert_eq!(plan.cols(s), part.cols(s));
            assert_eq!(plan.width(s), part.width(s));
            assert_eq!(plan.height(s), part.height(s));
            assert_eq!(plan.parent(s), part.parent(s));
            assert_eq!(plan.n_children(s), plan.children(s).len());
            // scatter positions index the right global rows
            if let Some(p) = part.parent(s) {
                let prows = part.rows(p);
                for (i, &gi) in part.below_rows(s).iter().enumerate() {
                    assert_eq!(prows[plan.scatter(s)[i]], gi);
                }
            }
        }
    }

    #[test]
    fn levels_topologically_ordered() {
        let a = trisolv_matrix::gen::grid3d_laplacian(4, 4, 3);
        let part = partition(&a);
        let plan = SolvePlan::new(&part).unwrap();
        let mut level_of = vec![0usize; plan.nsup()];
        let mut seen = 0;
        for l in 0..plan.nlevels() {
            for &s in plan.level(l) {
                level_of[s] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, plan.nsup());
        for s in 0..plan.nsup() {
            for &c in plan.children(s) {
                assert!(level_of[c] < level_of[s], "child {c} not below parent {s}");
            }
            if plan.n_children(s) == 0 {
                assert_eq!(level_of[s], 0, "leaf {s} must be level 0");
            }
        }
        assert!(plan.max_level_width() >= plan.leaves().len().min(plan.nsup()));
    }

    #[test]
    fn roots_and_leaves_cover_forest() {
        // block-diagonal → forest with several roots
        let mut t = trisolv_matrix::TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 4.0).unwrap();
        }
        for i in [0, 2, 4] {
            t.push(i + 1, i, -1.0).unwrap();
        }
        let part = partition(&t.to_csc());
        let plan = SolvePlan::new(&part).unwrap();
        assert_eq!(plan.roots().len(), 3);
        for &r in plan.roots() {
            assert!(plan.parent(r).is_none());
        }
    }

    #[test]
    fn nested_hand_built_partition_accepted() {
        // supernode 0 = col 0 with below-row 2; supernode 1 = cols 1..5
        // whose pattern contains row 2 -> the scatter map resolves.
        let ok = SupernodePartition::from_raw(
            vec![0, 1, 5],
            vec![0, 1, 1, 1, 1],
            vec![vec![0, 2], vec![1, 2, 3, 4]],
            vec![1, usize::MAX],
        );
        let plan = SolvePlan::new(&ok).unwrap();
        assert_eq!(plan.scatter(0), &[1], "row 2 sits at parent position 1");
    }

    #[test]
    fn missing_parent_row_is_structured_error() {
        // supernode 0 = {col 0, below row 3}; parent supernode holds cols
        // {1,2} with pattern {1,2} only — row 3 lives in supernode 2.
        // parent(0) = 1 but row 3 is not in supernode 1's pattern.
        let bad = SupernodePartition::from_raw(
            vec![0, 1, 3, 4],
            vec![0, 1, 1, 2],
            vec![vec![0, 3], vec![1, 2], vec![3]],
            vec![1, usize::MAX, usize::MAX],
        );
        match SolvePlan::new(&bad) {
            Err(PlanError::NonNestedChild {
                child: 0,
                parent: 1,
                row: 3,
            }) => {}
            other => panic!("expected NonNestedChild, got {other:?}"),
        }
    }

    #[test]
    fn root_with_below_rows_is_structured_error() {
        let bad = SupernodePartition::from_raw(
            vec![0, 1, 2],
            vec![0, 1],
            vec![vec![0, 1], vec![1]],
            vec![usize::MAX, usize::MAX],
        );
        match SolvePlan::new(&bad) {
            Err(PlanError::RootWithBelowRows { snode: 0, row: 1 }) => {}
            other => panic!("expected RootWithBelowRows, got {other:?}"),
        }
    }

    #[test]
    fn plan_error_displays() {
        let e = PlanError::NonNestedChild {
            child: 1,
            parent: 2,
            row: 7,
        };
        assert!(e.to_string().contains("supernode 1"));
        let e = PlanError::RootWithBelowRows { snode: 3, row: 9 };
        assert!(e.to_string().contains("root supernode 3"));
    }
}
