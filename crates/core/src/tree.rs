//! Simulated-parallel forward and back substitution over the whole
//! elimination tree (paper §2).
//!
//! Each virtual processor:
//!
//! 1. **Forward** — solves its sequential subtree supernodes leaf-to-root
//!    (accumulating updates in a per-processor sparse accumulator), then
//!    joins the pipelined kernels for each parallel supernode on its path.
//!    Moving between tree levels, accumulated contributions are exchanged
//!    with an all-to-all personalized communication inside the supernode's
//!    group (the `O(t/q)` step of §3.1).
//! 2. **Backward** — mirrors the traversal root-to-leaf: pipelined kernels
//!    at the parallel levels (the solved sub-vector is all-gathered inside
//!    the group so descendants can read it, the paper's "copied from the
//!    vector accompanying the parent supernode"), then the sequential
//!    subtree top-down.
//!
//! The returned [`SolveReport`] carries virtual times, flop counts, and
//! communication volumes; MFLOPS figures are algorithmic-flops / virtual
//! parallel time, the same accounting the paper uses.

use crate::mapping::SubcubeMapping;
use crate::pipeline::{self, LocalTrapezoid};
use std::collections::HashMap;
use trisolv_factor::{blas, SupernodalFactor};
use trisolv_machine::{coll, BlockCyclic1d, Group, Machine, MachineParams};
use trisolv_matrix::DenseMatrix;

/// Configuration of a simulated parallel triangular solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveConfig {
    /// Number of virtual processors.
    pub nprocs: usize,
    /// Block size `b` of the 1-D block-cyclic supernode partitioning.
    pub block: usize,
    /// Machine cost model.
    pub params: MachineParams,
}

impl SolveConfig {
    /// A T3D-flavoured configuration with the paper's typical block size.
    pub fn t3d(nprocs: usize) -> Self {
        SolveConfig {
            nprocs,
            block: 8,
            params: MachineParams::t3d(),
        }
    }
}

/// Timing and accounting of one forward+backward solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Virtual seconds of the forward-elimination phase (max over procs).
    pub forward_time: f64,
    /// Virtual seconds of the back-substitution phase.
    pub backward_time: f64,
    /// Total virtual seconds (forward + barrier + backward).
    pub total_time: f64,
    /// Algorithmic flop count (fw+bw, all right-hand sides).
    pub flops: u64,
    /// Total 8-byte words communicated.
    pub words: u64,
    /// Total messages.
    pub msgs: u64,
    /// Largest per-processor busy (compute) time — `total_time` minus this
    /// on the critical processor is pure overhead.
    pub max_compute: f64,
    /// Mean per-processor busy time (max/mean = load imbalance factor).
    pub mean_compute: f64,
    /// Largest per-processor time spent blocked on messages.
    pub max_wait: f64,
    /// Per-phase virtual-time breakdown, maxed over processors:
    /// `[seq_fw, gather, pipe_fw, pipe_bw, allgather, seq_bw]`.
    pub phase_breakdown: [f64; 6],
}

impl SolveReport {
    /// MFLOPS achieved: algorithmic flops / total virtual time.
    pub fn mflops(&self) -> f64 {
        self.flops as f64 / self.total_time / 1e6
    }
}

/// Per-processor payload returned from the SPMD closure.
struct ProcOutput {
    x_pieces: Vec<(usize, Vec<f64>)>,
    t_forward: f64,
    t_total: f64,
    /// virtual time in [seq_fw, gather, pipe_fw, pipe_bw, allgather, seq_bw]
    phases: [f64; 6],
}

/// Encode a sparse set of (position, values) pairs as a flat payload.
fn encode_entries(entries: &[(usize, &[f64])]) -> Vec<f64> {
    let mut out =
        Vec::with_capacity(entries.len() * (1 + entries.first().map_or(0, |e| e.1.len())));
    for (pos, vals) in entries {
        out.push(*pos as f64);
        out.extend_from_slice(vals);
    }
    out
}

/// Decode the payload produced by [`encode_entries`].
fn decode_entries(data: &[f64], nrhs: usize) -> Vec<(usize, &[f64])> {
    let stride = 1 + nrhs;
    debug_assert_eq!(data.len() % stride, 0);
    data.chunks_exact(stride)
        .map(|c| (c[0] as usize, &c[1..]))
        .collect()
}

/// Run a simulated parallel forward + backward solve.
///
/// `b_rhs` is the right-hand-side block in the **permuted** index space
/// (same space as `factor`). Returns the solution `X` (permuted space) and
/// the timing report. With `config.nprocs == 1` this degenerates to the
/// sequential algorithm and its virtual time is the `T_S` baseline of all
/// speedup figures.
pub fn solve_fb(
    factor: &SupernodalFactor,
    mapping: &SubcubeMapping,
    b_rhs: &DenseMatrix,
    config: &SolveConfig,
) -> (DenseMatrix, SolveReport) {
    let (x, report, _) = solve_fb_inner(factor, mapping, b_rhs, config, false);
    (x, report)
}

/// Like [`solve_fb`], additionally returning per-processor timeline traces
/// (renderable with `trisolv_machine::trace::render_gantt`).
pub fn solve_fb_traced(
    factor: &SupernodalFactor,
    mapping: &SubcubeMapping,
    b_rhs: &DenseMatrix,
    config: &SolveConfig,
) -> (DenseMatrix, SolveReport, Vec<Vec<trisolv_machine::Segment>>) {
    solve_fb_inner(factor, mapping, b_rhs, config, true)
}

fn solve_fb_inner(
    factor: &SupernodalFactor,
    mapping: &SubcubeMapping,
    b_rhs: &DenseMatrix,
    config: &SolveConfig,
    traced: bool,
) -> (DenseMatrix, SolveReport, Vec<Vec<trisolv_machine::Segment>>) {
    let part = factor.partition();
    let n = part.n();
    let nrhs = b_rhs.ncols();
    assert!(nrhs >= 1);
    assert_eq!(b_rhs.nrows(), n);
    assert_eq!(mapping.nprocs(), config.nprocs);
    let nsup = part.nsup() as u64;
    let machine = if traced {
        Machine::new(config.nprocs, config.params).with_trace()
    } else {
        Machine::new(config.nprocs, config.params)
    };

    let run = machine.run(|proc| {
        let me = proc.rank();
        let rate = proc.params().solve_rate(nrhs);
        // sparse accumulator: global row -> additive update values
        let mut accum: HashMap<usize, Vec<f64>> = HashMap::new();
        // solved x values known to this processor: global row -> values
        let mut xknown: HashMap<usize, Vec<f64>> = HashMap::new();
        // forward outputs stashed for the backward phase
        let mut seq_stash: HashMap<usize, DenseMatrix> = HashMap::new();
        let mut par_stash: HashMap<usize, DenseMatrix> = HashMap::new();
        let mut par_local: HashMap<usize, (BlockCyclic1d, LocalTrapezoid, Group)> = HashMap::new();
        let mut x_pieces: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut phases = [0.0f64; 6];

        // ---------- forward elimination ----------
        let mut mark = proc.time();
        for &s in mapping.seq_snodes(me) {
            let rows = part.rows(s);
            let t = part.width(s);
            let ns = rows.len();
            let blk = factor.block(s);
            // gather b + accumulated updates for the supernode columns
            let mut top = DenseMatrix::zeros(t, nrhs);
            for (k, &gi) in rows[..t].iter().enumerate() {
                let acc = accum.remove(&gi);
                for c in 0..nrhs {
                    top[(k, c)] = b_rhs[(gi, c)] + acc.as_ref().map_or(0.0, |v| v[c]);
                }
            }
            blas::trsm_lower_left(blk.as_slice(), ns, top.as_mut_slice(), t, t, nrhs);
            // rectangle update into the accumulator
            if ns > t {
                for (off, &gi) in rows[t..].iter().enumerate() {
                    let acc = accum.entry(gi).or_insert_with(|| vec![0.0; nrhs]);
                    for c in 0..nrhs {
                        let mut sum = 0.0;
                        for k in 0..t {
                            sum += blk[(t + off, k)] * top[(k, c)];
                        }
                        acc[c] -= sum;
                    }
                }
            }
            proc.compute_flops_at(((t * t + 2 * (ns - t) * t) * nrhs) as f64, rate);
            seq_stash.insert(s, top);
        }
        phases[0] += proc.time() - mark;
        for &s in &mapping.parallel_path(me) {
            let group = mapping.group(s);
            let gq = group.size();
            let gme = group.group_rank(me).expect("on path");
            let rows = part.rows(s);
            let t = part.width(s);
            let ns = rows.len();
            // When the supernode has fewer row blocks than the group has
            // processors, only the first `q_act` group ranks own data — the
            // pipeline ring spans just those, so idle processors do not
            // lengthen the wavefront.
            let q_act = gq.min(ns.div_ceil(config.block)).max(1);
            let active = Group::from_ranks(group.ranks()[..q_act].to_vec());
            let layout = BlockCyclic1d::new(ns, config.block, q_act);
            let local = LocalTrapezoid::from_global(factor.block(s), &layout, gme.min(q_act));
            // gather: route accumulated contributions for this supernode's
            // columns to the owner of each row position
            let col_range = part.cols(s);
            let mut per_dest: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); gq];
            let keys: Vec<usize> = accum
                .keys()
                .copied()
                .filter(|k| col_range.contains(k))
                .collect();
            for gi in keys {
                let vals = accum.remove(&gi).expect("key present");
                let pos = gi - col_range.start;
                per_dest[layout.owner(pos)].push((pos, vals));
            }
            let out: Vec<Vec<f64>> = per_dest
                .iter()
                .map(|chunk| {
                    encode_entries(
                        &chunk
                            .iter()
                            .map(|(p, v)| (*p, v.as_slice()))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            // group-uniform size hint: every contribution for this
            // supernode's t columns once, with one index word per entry
            let hint = t * (1 + nrhs) / gq.max(1) + 1;
            mark = proc.time();
            let incoming = coll::all_to_all_personalized(proc, group, s as u64 * 4, out, hint);
            phases[1] += proc.time() - mark;
            // local rhs: b for my triangle rows plus routed contributions
            let mut rhs = DenseMatrix::zeros(local.positions.len(), nrhs);
            for (li, &pos) in local.positions.iter().enumerate() {
                if pos < t {
                    let gi = rows[pos];
                    for c in 0..nrhs {
                        rhs[(li, c)] = b_rhs[(gi, c)];
                    }
                }
            }
            for chunk in &incoming {
                for (pos, vals) in decode_entries(chunk, nrhs) {
                    let li = local
                        .positions
                        .binary_search(&pos)
                        .expect("routed to owner");
                    for c in 0..nrhs {
                        rhs[(li, c)] += vals[c];
                    }
                }
            }
            mark = proc.time();
            if gme < q_act {
                pipeline::forward_column_priority(
                    proc,
                    &active,
                    s as u64 * 4 + 1,
                    &layout,
                    t,
                    nrhs,
                    &local,
                    &mut rhs,
                );
            }
            phases[2] += proc.time() - mark;
            // below rows: push kernel updates into the accumulator
            for (li, &pos) in local.positions.iter().enumerate() {
                if pos >= t {
                    let gi = rows[pos];
                    let acc = accum.entry(gi).or_insert_with(|| vec![0.0; nrhs]);
                    for c in 0..nrhs {
                        acc[c] += rhs[(li, c)];
                    }
                }
            }
            par_stash.insert(s, rhs);
            par_local.insert(s, (layout, local, active));
        }
        debug_assert!(
            accum.values().all(|v| v.iter().all(|&x| x == 0.0)),
            "unconsumed forward contributions"
        );
        coll::barrier(proc, &Group::world(config.nprocs), nsup * 4);
        let t_forward = proc.time();

        // ---------- back substitution ----------
        for &s in mapping.parallel_path(me).iter().rev() {
            let group = mapping.group(s);
            let rows = part.rows(s);
            let t = part.width(s);
            let (layout, local, active) = par_local.remove(&s).expect("built in forward");
            let mut rhs = par_stash.remove(&s).expect("stashed in forward");
            // below rows: already-solved ancestor values
            for (li, &pos) in local.positions.iter().enumerate() {
                if pos >= t {
                    let gi = rows[pos];
                    let vals = xknown.get(&gi).expect("ancestor solved and gathered");
                    for c in 0..nrhs {
                        rhs[(li, c)] = vals[c];
                    }
                }
            }
            mark = proc.time();
            if active.contains(me) {
                pipeline::backward_column_priority(
                    proc,
                    &active,
                    s as u64 * 4 + 2,
                    &layout,
                    t,
                    nrhs,
                    &local,
                    &mut rhs,
                );
            }
            phases[3] += proc.time() - mark;
            // all-gather the solved triangle so every group member (and its
            // descendants) can read x for these columns
            let mut flat: Vec<(usize, Vec<f64>)> = Vec::new();
            for (li, &pos) in local.positions.iter().enumerate() {
                if pos < t {
                    let mut v = Vec::with_capacity(nrhs);
                    for c in 0..nrhs {
                        v.push(rhs[(li, c)]);
                    }
                    flat.push((pos, v));
                }
            }
            let payload = encode_entries(
                &flat
                    .iter()
                    .map(|(p, v)| (*p, v.as_slice()))
                    .collect::<Vec<_>>(),
            );
            let hint = t * (1 + nrhs) / group.size().max(1) + 1;
            mark = proc.time();
            let gathered = coll::allgather(proc, group, s as u64 * 4 + 3, payload, hint);
            phases[4] += proc.time() - mark;
            for chunk in &gathered {
                for (pos, vals) in decode_entries(chunk, nrhs) {
                    xknown.insert(rows[pos], vals.to_vec());
                }
            }
            // output my own triangle rows
            for (pos, vals) in flat {
                x_pieces.push((rows[pos], vals));
            }
        }
        mark = proc.time();
        for &s in mapping.seq_snodes(me).iter().rev() {
            let rows = part.rows(s);
            let t = part.width(s);
            let ns = rows.len();
            let blk = factor.block(s);
            let mut top = seq_stash.remove(&s).expect("stashed in forward");
            // top -= L21ᵀ · x_below
            if ns > t {
                for c in 0..nrhs {
                    for k in 0..t {
                        let mut sum = 0.0;
                        for (off, &gi) in rows[t..].iter().enumerate() {
                            sum += blk[(t + off, k)] * xknown[&gi][c];
                        }
                        top[(k, c)] -= sum;
                    }
                }
            }
            blas::trsm_lower_trans_left(blk.as_slice(), ns, top.as_mut_slice(), t, t, nrhs);
            proc.compute_flops_at(((t * t + 2 * (ns - t) * t) * nrhs) as f64, rate);
            for (k, &gi) in rows[..t].iter().enumerate() {
                let mut v = Vec::with_capacity(nrhs);
                for c in 0..nrhs {
                    v.push(top[(k, c)]);
                }
                xknown.insert(gi, v.clone());
                x_pieces.push((gi, v));
            }
        }
        phases[5] += proc.time() - mark;
        coll::barrier(proc, &Group::world(config.nprocs), nsup * 4 + 1);
        ProcOutput {
            x_pieces,
            t_forward,
            t_total: proc.time(),
            phases,
        }
    });

    // assemble the solution
    let mut x = DenseMatrix::zeros(n, nrhs);
    let mut written = vec![false; n];
    for out in &run.results {
        for (gi, vals) in &out.x_pieces {
            assert!(!written[*gi], "row {gi} produced twice");
            written[*gi] = true;
            for c in 0..nrhs {
                x[(*gi, c)] = vals[c];
            }
        }
    }
    assert!(written.iter().all(|&w| w), "missing solution rows");

    let t_forward = run
        .results
        .iter()
        .map(|o| o.t_forward)
        .fold(0.0f64, f64::max);
    let t_total = run.results.iter().map(|o| o.t_total).fold(0.0f64, f64::max);
    let max_compute = run
        .stats
        .iter()
        .map(|s| s.compute_seconds)
        .fold(0.0f64, f64::max);
    let mean_compute =
        run.stats.iter().map(|s| s.compute_seconds).sum::<f64>() / run.stats.len() as f64;
    let max_wait = run
        .stats
        .iter()
        .map(|s| s.wait_seconds)
        .fold(0.0f64, f64::max);
    let mut phase_breakdown = [0.0f64; 6];
    for o in &run.results {
        for (i, v) in o.phases.iter().enumerate() {
            phase_breakdown[i] = phase_breakdown[i].max(*v);
        }
    }
    let report = SolveReport {
        forward_time: t_forward,
        backward_time: t_total - t_forward,
        total_time: t_total,
        flops: part.solve_flops(nrhs),
        words: run.total_words(),
        msgs: run.total_msgs(),
        max_compute,
        mean_compute,
        max_wait,
        phase_breakdown,
    };
    (x, report, run.traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn build_factor(
        a: &trisolv_matrix::CscMatrix,
        coords: Option<&[[f64; 3]]>,
    ) -> SupernodalFactor {
        let g = Graph::from_sym_lower(a);
        let p = match coords {
            Some(c) => nd::nested_dissection_coords(&g, c, nd::NdOptions::default()),
            None => nd::nested_dissection(&g, nd::NdOptions::default()),
        };
        let an = analyze_with_perm(a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    fn check_parallel_matches_seq(
        factor: &SupernodalFactor,
        nprocs: usize,
        block: usize,
        nrhs: usize,
    ) -> SolveReport {
        let n = factor.n();
        let b = gen::random_rhs(n, nrhs, 5);
        let expect = seq::forward_backward(factor, &b);
        let mapping = SubcubeMapping::new(factor.partition(), nprocs);
        let config = SolveConfig {
            nprocs,
            block,
            params: MachineParams::t3d(),
        };
        let (x, report) = solve_fb(factor, &mapping, &b, &config);
        let diff = x.max_abs_diff(&expect).unwrap();
        assert!(diff < 1e-9, "p={nprocs} b={block} nrhs={nrhs}: diff {diff}");
        report
    }

    #[test]
    fn matches_sequential_on_grid_various_p() {
        let a = gen::grid2d_laplacian(13, 13);
        let coords = nd::grid2d_coords(13, 13, 1);
        let f = build_factor(&a, Some(&coords));
        for p in [1, 2, 4, 8] {
            check_parallel_matches_seq(&f, p, 2, 1);
        }
    }

    #[test]
    fn matches_sequential_multi_rhs() {
        let a = gen::grid2d_laplacian(11, 11);
        let coords = nd::grid2d_coords(11, 11, 1);
        let f = build_factor(&a, Some(&coords));
        for nrhs in [1, 3, 5] {
            check_parallel_matches_seq(&f, 4, 2, nrhs);
        }
    }

    #[test]
    fn matches_sequential_on_3d_problem() {
        let a = gen::grid3d_laplacian(5, 5, 5);
        let coords = nd::grid3d_coords(5, 5, 5, 1);
        let f = build_factor(&a, Some(&coords));
        check_parallel_matches_seq(&f, 8, 2, 2);
    }

    #[test]
    fn matches_sequential_on_fem_dof_blocks() {
        let a = gen::fem2d(6, 6, 3);
        let coords = nd::grid2d_coords(6, 6, 3);
        let f = build_factor(&a, Some(&coords));
        check_parallel_matches_seq(&f, 4, 3, 2);
    }

    #[test]
    fn matches_sequential_on_random_structure() {
        let a = gen::random_spd(120, 4, 13);
        let f = build_factor(&a, None);
        for p in [2, 5, 8] {
            check_parallel_matches_seq(&f, p, 2, 1);
        }
    }

    #[test]
    fn non_power_of_two_procs() {
        let a = gen::grid2d_laplacian(12, 12);
        let coords = nd::grid2d_coords(12, 12, 1);
        let f = build_factor(&a, Some(&coords));
        for p in [3, 5, 6, 7] {
            check_parallel_matches_seq(&f, p, 2, 1);
        }
    }

    #[test]
    fn block_size_does_not_change_answer() {
        let a = gen::grid2d_laplacian(10, 10);
        let coords = nd::grid2d_coords(10, 10, 1);
        let f = build_factor(&a, Some(&coords));
        for b in [1, 2, 4, 8] {
            check_parallel_matches_seq(&f, 4, b, 2);
        }
    }

    #[test]
    fn single_proc_time_matches_flop_model() {
        let a = gen::grid2d_laplacian(9, 9);
        let coords = nd::grid2d_coords(9, 9, 1);
        let f = build_factor(&a, Some(&coords));
        let mapping = SubcubeMapping::new(f.partition(), 1);
        let config = SolveConfig {
            nprocs: 1,
            block: 4,
            params: MachineParams::t3d(),
        };
        let b = gen::random_rhs(f.n(), 1, 2);
        let (_, report) = solve_fb(&f, &mapping, &b, &config);
        let expect = f.partition().solve_flops(1) as f64 / config.params.solve_rate(1);
        assert!(
            (report.total_time - expect).abs() / expect < 1e-9,
            "time {} vs model {}",
            report.total_time,
            expect
        );
        assert_eq!(report.words, 0);
    }

    #[test]
    fn parallel_time_decreases_with_procs() {
        // needs a problem big enough that p=16 beats its startup costs —
        // exactly the isoefficiency effect the paper analyzes
        let k = 63;
        let a = gen::grid2d_laplacian(k, k);
        let coords = nd::grid2d_coords(k, k, 1);
        let f = build_factor(&a, Some(&coords));
        let b = gen::random_rhs(f.n(), 1, 1);
        let mut prev = f64::INFINITY;
        for p in [1, 4, 16] {
            let mapping = SubcubeMapping::new(f.partition(), p);
            let config = SolveConfig {
                nprocs: p,
                block: 4,
                params: MachineParams::t3d(),
            };
            let (_, report) = solve_fb(&f, &mapping, &b, &config);
            assert!(
                report.total_time < prev,
                "p={p}: {} not below {prev}",
                report.total_time
            );
            prev = report.total_time;
        }
    }

    #[test]
    fn multi_rhs_improves_mflops() {
        let k = 21;
        let a = gen::grid2d_laplacian(k, k);
        let coords = nd::grid2d_coords(k, k, 1);
        let f = build_factor(&a, Some(&coords));
        let mapping = SubcubeMapping::new(f.partition(), 8);
        let config = SolveConfig {
            nprocs: 8,
            block: 4,
            params: MachineParams::t3d(),
        };
        let b1 = gen::random_rhs(f.n(), 1, 1);
        let b10 = gen::random_rhs(f.n(), 10, 1);
        let (_, r1) = solve_fb(&f, &mapping, &b1, &config);
        let (_, r10) = solve_fb(&f, &mapping, &b10, &config);
        assert!(
            r10.mflops() > 2.0 * r1.mflops(),
            "nrhs=10 {} vs nrhs=1 {}",
            r10.mflops(),
            r1.mflops()
        );
    }
}
