//! 2-D → 1-D redistribution of supernode trapezoids (paper §4, Figure 6).
//!
//! Parallel factorization wants every parallel supernode partitioned
//! **two-dimensionally** over a processor grid, while the triangular
//! solvers are only scalable with a **one-dimensional** (row-wise)
//! partitioning. Converting between the two is, per (grid-row) stripe, a
//! transpose realized as an all-to-all personalized exchange within the
//! supernode's group, moving `n·t/q` words per processor — the same order
//! as the work one processor does in the solve itself, which is why the
//! paper finds redistribution costs at most a small constant times one
//! single-RHS solve.

use crate::mapping::SubcubeMapping;
use crate::pipeline::LocalTrapezoid;
use trisolv_factor::SupernodalFactor;
use trisolv_machine::{coll, BlockCyclic1d, BlockCyclic2d, Group, Machine, MachineParams, Proc};
use trisolv_matrix::DenseMatrix;

/// Convert one supernode trapezoid from a 2-D block-cyclic layout to a 1-D
/// row block-cyclic layout, inside an SPMD program.
///
/// `trap` is the global trapezoid (the simulator's stand-in for "the local
/// pieces each processor already owns" — each processor only reads the
/// entries the 2-D layout assigns to it). Returns this processor's rows
/// under the 1-D layout. Message payloads are run-length encoded as
/// `[row, col0, len, v…]` per contiguous run, so the simulated volume is
/// `n·t/q + O(runs)` words per processor, matching the §4 analysis.
pub fn convert_2d_to_1d(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    trap: &DenseMatrix,
    src: &BlockCyclic2d,
    dst: &BlockCyclic1d,
) -> LocalTrapezoid {
    let q = group.size();
    let me = group.group_rank(proc.rank()).expect("member of group");
    assert_eq!(src.nprocs(), q, "2-D grid must cover the group");
    assert_eq!(dst.nprocs, q, "1-D layout must cover the group");
    let (n, t) = trap.shape();
    assert_eq!(src.rows.nitems, n);
    assert_eq!(src.cols.nitems, t);
    assert_eq!(dst.nitems, n);

    // package my 2-D entries per 1-D destination, one run per
    // (row, contiguous-column-block) pair
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); q];
    let pcol = src.cols.nprocs;
    let my_grow = me / pcol;
    let my_gcol = me % pcol;
    for i in 0..n {
        if src.rows.owner(i) != my_grow {
            continue;
        }
        let dest = dst.owner(i);
        let buf = &mut out[dest];
        let mut j = 0;
        while j < t {
            if src.cols.owner(j) != my_gcol {
                j += 1;
                continue;
            }
            // extend the run while ownership continues
            let j0 = j;
            while j < t && src.cols.owner(j) == my_gcol {
                j += 1;
            }
            buf.push(i as f64);
            buf.push(j0 as f64);
            buf.push((j - j0) as f64);
            for jj in j0..j {
                buf.push(trap[(i, jj)]);
            }
        }
    }
    // group-uniform hint: each processor moves ~n·t/q words
    let hint = n * t / q + 1;
    let incoming = coll::all_to_all_personalized(proc, group, tag, out, hint);

    // assemble my 1-D rows
    let positions: Vec<usize> = (0..n).filter(|&i| dst.owner(i) == me).collect();
    let mut l = DenseMatrix::zeros(positions.len(), t);
    for chunk in &incoming {
        let mut at = 0;
        while at < chunk.len() {
            let i = chunk[at] as usize;
            let j0 = chunk[at + 1] as usize;
            let len = chunk[at + 2] as usize;
            let li = positions.binary_search(&i).expect("routed to 1-D owner");
            for (off, &v) in chunk[at + 3..at + 3 + len].iter().enumerate() {
                l[(li, j0 + off)] = v;
            }
            at += 3 + len;
        }
    }
    LocalTrapezoid { positions, l }
}

/// Timing summary of a whole-factor redistribution.
#[derive(Debug, Clone, Copy)]
pub struct RedistributeReport {
    /// Virtual seconds for converting every parallel supernode.
    pub time: f64,
    /// Total words moved.
    pub words: u64,
    /// Total messages.
    pub msgs: u64,
}

/// Redistribute every parallel supernode of the factor from 2-D
/// block-cyclic (near-square grid per group, tile size `block2d`) to 1-D
/// row block-cyclic with block `block1d`, and report the virtual cost —
/// the quantity the paper's main table lists as "Time to redistribute L".
pub fn redistribute_factor(
    factor: &SupernodalFactor,
    mapping: &SubcubeMapping,
    block2d: usize,
    block1d: usize,
    params: MachineParams,
) -> RedistributeReport {
    let part = factor.partition();
    let machine = Machine::new(mapping.nprocs(), params);
    let run = machine.run(|proc| {
        for &s in mapping.parallel_snodes() {
            let group = mapping.group(s);
            if !group.contains(proc.rank()) {
                continue;
            }
            let (ns, t) = (part.height(s), part.width(s));
            let (pr, pc) = BlockCyclic2d::square_grid(group.size());
            let src = BlockCyclic2d::new(ns, t, block2d, pr, pc);
            let dst = BlockCyclic1d::new(ns, block1d, group.size());
            let _ = convert_2d_to_1d(proc, group, s as u64, factor.block(s), &src, &dst);
        }
    });
    RedistributeReport {
        time: run.parallel_time(),
        words: run.total_words(),
        msgs: run.total_msgs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SubcubeMapping;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn random_trapezoid(n: usize, t: usize, seed: u64) -> DenseMatrix {
        let vals = gen::random_rhs(n * t, 1, seed);
        let mut trap = DenseMatrix::zeros(n, t);
        for j in 0..t {
            for i in j..n {
                trap[(i, j)] = vals.as_slice()[i + j * n];
            }
        }
        trap
    }

    fn convert_and_collect(
        trap: &DenseMatrix,
        q: usize,
        block2d: usize,
        block1d: usize,
    ) -> (Vec<LocalTrapezoid>, u64) {
        let (n, t) = trap.shape();
        let machine = Machine::new(q, MachineParams::t3d());
        let (pr, pc) = BlockCyclic2d::square_grid(q);
        let src = BlockCyclic2d::new(n, t, block2d, pr, pc);
        let dst = BlockCyclic1d::new(n, block1d, q);
        let run = machine.run(|p| {
            let group = Group::world(q);
            convert_2d_to_1d(p, &group, 1, trap, &src, &dst)
        });
        let words = run.total_words();
        (run.results, words)
    }

    #[test]
    fn conversion_reproduces_1d_layout() {
        for (n, t, q, b2, b1) in [
            (16, 8, 4, 2, 2),
            (20, 10, 8, 2, 4),
            (13, 5, 4, 3, 2),
            (9, 9, 2, 2, 1),
        ] {
            let trap = random_trapezoid(n, t, 7);
            let (locals, _) = convert_and_collect(&trap, q, b2, b1);
            let dst = BlockCyclic1d::new(n, b1, q);
            for (rank, got) in locals.iter().enumerate() {
                let expect = LocalTrapezoid::from_global(&trap, &dst, rank);
                assert_eq!(got.positions, expect.positions, "q={q} rank={rank}");
                assert!(
                    got.l.max_abs_diff(&expect.l).unwrap() < 1e-15,
                    "n={n} t={t} q={q} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn volume_scales_as_nt() {
        // words moved ≈ entries not already on their 1-D owner + run
        // headers; total must stay within a small multiple of n·t
        let (n, t, q) = (64, 32, 8);
        let trap = random_trapezoid(n, t, 3);
        let (_, words) = convert_and_collect(&trap, q, 4, 4);
        let volume = (n * t) as u64;
        // bound covers run headers plus the ≤log q store-and-forward
        // factor if the adaptive exchange picks the Bruck algorithm
        assert!(words <= 3 * volume, "words {words} vs n·t {volume}");
        assert!(words >= volume / 4, "suspiciously little data moved");
    }

    #[test]
    fn single_proc_group_moves_nothing() {
        let trap = random_trapezoid(10, 5, 1);
        let (locals, words) = convert_and_collect(&trap, 1, 2, 2);
        assert_eq!(words, 0);
        assert_eq!(locals[0].positions.len(), 10);
    }

    #[test]
    fn factor_redistribution_cost_is_fraction_of_solve() {
        // the paper's headline §4 claim: redistribution ≤ ~1× one
        // single-RHS solve
        let k = 31;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let p =
            nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default());
        let an = analyze_with_perm(&a, &p);
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let nprocs = 8;
        let mapping = SubcubeMapping::new(f.partition(), nprocs);
        let report = redistribute_factor(&f, &mapping, 4, 4, MachineParams::t3d());
        assert!(report.time > 0.0);
        let config = crate::tree::SolveConfig {
            nprocs,
            block: 4,
            params: MachineParams::t3d(),
        };
        let b = gen::random_rhs(f.n(), 1, 2);
        let (_, solve) = crate::tree::solve_fb(&f, &mapping, &b, &config);
        let ratio = report.time / solve.total_time;
        assert!(
            ratio < 2.0,
            "redistribution {} vs solve {} (ratio {ratio})",
            report.time,
            solve.total_time
        );
    }
}
