//! Parallel *dense* triangular solvers (Heath & Romine), the scalability
//! yardstick of the paper's Figure 5 table.
//!
//! * [`forward_1d`] / [`backward_1d`] — row-wise block-cyclic pipelined
//!   solvers: a dense triangular matrix is just one big supernode with
//!   `n = t`, so these reuse the trapezoid kernels directly. Communication
//!   `b(p−1) + n` ⇒ overhead `O(p²) + O(n·p)` ⇒ isoefficiency `O(p²)`.
//! * [`forward_2d`] — the two-dimensionally partitioned variant. Each
//!   block step serializes a row-reduction and a column-broadcast, so the
//!   formulation is **unscalable** (per-step latency does not pipeline
//!   away) — exactly the "Unscalable" entries of Figure 5.

use crate::pipeline::{self, LocalTrapezoid};
use trisolv_factor::blas;
use trisolv_machine::{coll, BlockCyclic1d, BlockCyclic2d, Group, Machine, MachineParams};
use trisolv_matrix::DenseMatrix;

/// Result of a simulated dense triangular solve.
#[derive(Debug, Clone)]
pub struct DenseSolveResult {
    /// The solution block.
    pub x: DenseMatrix,
    /// Virtual parallel time in seconds.
    pub time: f64,
    /// Overhead function `T_o = p·T_P − Σ compute`.
    pub overhead: f64,
    /// Words communicated.
    pub words: u64,
}

/// Solve `L·x = b` for dense lower-triangular `L` with the 1-D row-wise
/// block-cyclic pipelined algorithm on `p` simulated processors.
pub fn forward_1d(
    l: &DenseMatrix,
    b: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> DenseSolveResult {
    let (n, m) = l.shape();
    assert_eq!(n, m, "triangular matrix must be square");
    let nrhs = b.ncols();
    let layout = BlockCyclic1d::new(n, block, p);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let group = Group::world(p);
        let local = LocalTrapezoid::from_global(l, &layout, proc.rank());
        let mut rhs = DenseMatrix::zeros(local.positions.len(), nrhs);
        for c in 0..nrhs {
            for (li, &gi) in local.positions.iter().enumerate() {
                rhs[(li, c)] = b[(gi, c)];
            }
        }
        pipeline::forward_column_priority(proc, &group, 1, &layout, n, nrhs, &local, &mut rhs);
        (local.positions, rhs)
    });
    assemble(run, n, nrhs)
}

/// Solve `Lᵀ·x = b` with the 1-D pipelined back-substitution kernel.
pub fn backward_1d(
    l: &DenseMatrix,
    b: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> DenseSolveResult {
    let (n, m) = l.shape();
    assert_eq!(n, m);
    let nrhs = b.ncols();
    let layout = BlockCyclic1d::new(n, block, p);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let group = Group::world(p);
        let local = LocalTrapezoid::from_global(l, &layout, proc.rank());
        let mut rhs = DenseMatrix::zeros(local.positions.len(), nrhs);
        for c in 0..nrhs {
            for (li, &gi) in local.positions.iter().enumerate() {
                rhs[(li, c)] = b[(gi, c)];
            }
        }
        pipeline::backward_column_priority(proc, &group, 1, &layout, n, nrhs, &local, &mut rhs);
        (local.positions, rhs)
    });
    assemble(run, n, nrhs)
}

fn assemble(
    run: trisolv_machine::RunResult<(Vec<usize>, DenseMatrix)>,
    n: usize,
    nrhs: usize,
) -> DenseSolveResult {
    let mut x = DenseMatrix::zeros(n, nrhs);
    for (positions, rhs) in &run.results {
        for c in 0..nrhs {
            for (li, &gi) in positions.iter().enumerate() {
                x[(gi, c)] = rhs[(li, c)];
            }
        }
    }
    DenseSolveResult {
        x,
        time: run.parallel_time(),
        overhead: run.overhead(),
        words: run.total_words(),
    }
}

/// Solve `L·x = b` with a **2-D block-cyclic** partitioning over a
/// near-square processor grid — the non-pipelinable formulation whose
/// overhead makes 2-D triangular solves unscalable (Figure 5).
///
/// Per block step `i`: every grid processor accumulates its local partial
/// sums for row block `i`, the partials are summed across the grid row to
/// the diagonal owner, the owner solves, and the solution block is
/// broadcast along the diagonal owner's grid column.
pub fn forward_2d(
    l: &DenseMatrix,
    b: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> DenseSolveResult {
    let (n, m) = l.shape();
    assert_eq!(n, m);
    let nrhs = b.ncols();
    let (pr, pc) = BlockCyclic2d::square_grid(p);
    let grid = BlockCyclic2d::new(n, n, block, pr, pc);
    let nb = n.div_ceil(block);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let me = proc.rank();
        let (my_r, my_c) = (me / pc, me % pc);
        let rate = proc.params().solve_rate(nrhs);
        // x blocks known to this processor's grid column
        let mut xs: Vec<Option<DenseMatrix>> = vec![None; nb];
        let mut out: Vec<(Vec<usize>, DenseMatrix)> = Vec::new();
        for i in 0..nb {
            let r0 = i * block;
            let r1 = (r0 + block).min(n);
            let rows = r1 - r0;
            if grid.rows.owner(r0) != my_r {
                // not my grid row: still participate in column broadcasts
                // of x blocks my column owns
                if grid.cols.owner(r0) == my_c {
                    let col_group = Group::from_ranks((0..pr).map(|r| r * pc + my_c).collect());
                    let root = col_group
                        .group_rank(grid.rows.owner(r0) * pc + my_c)
                        .expect("diag owner in its column");
                    let xi = coll::bcast(proc, &col_group, (2 * i + 1) as u64, root, Vec::new());
                    let mut xm = DenseMatrix::zeros(rows, nrhs);
                    for c in 0..nrhs {
                        xm.col_mut(c).copy_from_slice(&xi[c * rows..(c + 1) * rows]);
                    }
                    xs[i] = Some(xm);
                }
                continue;
            }
            // partial sums over my local column blocks k < i
            let mut partial = DenseMatrix::zeros(rows, nrhs);
            for k in 0..i {
                let c0 = k * block;
                let c1 = (c0 + block).min(n);
                if grid.cols.owner(c0) != my_c {
                    continue;
                }
                let xk = xs[k].as_ref().expect("x_k broadcast before use");
                for c in 0..nrhs {
                    for (jj, j) in (c0..c1).enumerate() {
                        let xv = xk[(jj, c)];
                        for (ii, gi) in (r0..r1).enumerate() {
                            partial[(ii, c)] += l[(gi, j)] * xv;
                        }
                    }
                }
                proc.compute_flops_at((2 * rows * (c1 - c0) * nrhs) as f64, rate);
            }
            // reduce partials across my grid row to the diagonal owner
            let diag_c = grid.cols.owner(r0);
            let row_group = Group::from_ranks((0..pc).map(|c| my_r * pc + c).collect());
            let root = row_group.group_rank(my_r * pc + diag_c).expect("in row");
            let reduced = coll::reduce_sum(
                proc,
                &row_group,
                (2 * i) as u64,
                root,
                partial.as_slice().to_vec(),
            );
            if let Some(sum) = reduced {
                // I own the diagonal block: solve it
                let mut xi = DenseMatrix::zeros(rows, nrhs);
                for c in 0..nrhs {
                    for (ii, gi) in (r0..r1).enumerate() {
                        xi[(ii, c)] = b[(gi, c)] - sum[c * rows + ii];
                    }
                }
                let mut tri = DenseMatrix::zeros(rows, rows);
                for (jj, j) in (r0..r1).enumerate() {
                    for (ii, gi) in (r0..r1).enumerate() {
                        if gi >= j {
                            tri[(ii, jj)] = l[(gi, j)];
                        }
                    }
                }
                blas::trsm_lower_left(tri.as_slice(), rows, xi.as_mut_slice(), rows, rows, nrhs);
                proc.compute_flops_at((rows * rows * nrhs) as f64, rate);
                // broadcast down my grid column for future steps
                let col_group = Group::from_ranks((0..pr).map(|r| r * pc + my_c).collect());
                let root = col_group.group_rank(me).expect("self in column");
                let payload = xi.as_slice().to_vec();
                let _ = coll::bcast(proc, &col_group, (2 * i + 1) as u64, root, payload);
                out.push(((r0..r1).collect(), xi.clone()));
                xs[i] = Some(xi);
            } else if grid.cols.owner(r0) == my_c {
                unreachable!("reduce root is the diagonal-column owner");
            }
        }
        // flatten this processor's solved blocks
        let mut positions = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for (pos, m) in &out {
            positions.extend_from_slice(pos);
            let _ = m;
        }
        let mut xm = DenseMatrix::zeros(positions.len(), nrhs);
        let mut at = 0;
        for (pos, m) in &out {
            for c in 0..nrhs {
                xm.col_mut(c)[at..at + pos.len()].copy_from_slice(m.col(c));
            }
            at += pos.len();
        }
        let _ = &mut vals;
        (positions, xm)
    });
    assemble(run, n, nrhs)
}

/// Solve `Lᵀ·x = b` with a **2-D block-cyclic** partitioning — the
/// back-substitution mirror of [`forward_2d`], equally step-serialized and
/// hence equally unscalable.
///
/// Per block step `i` (processed last-to-first): grid-column owners of
/// block column `i` accumulate `Σ_{k>i} L[k,i]ᵀ·x_k` from their local
/// rows, reduce along the grid column to the diagonal owner, which solves
/// and broadcasts `x_i` along its grid row (rows `i` live there).
pub fn backward_2d(
    l: &DenseMatrix,
    b: &DenseMatrix,
    p: usize,
    block: usize,
    params: MachineParams,
) -> DenseSolveResult {
    let (n, m) = l.shape();
    assert_eq!(n, m);
    let nrhs = b.ncols();
    let (pr, pc) = BlockCyclic2d::square_grid(p);
    let grid = BlockCyclic2d::new(n, n, block, pr, pc);
    let nb = n.div_ceil(block);
    let machine = Machine::new(p, params);
    let run = machine.run(|proc| {
        let me = proc.rank();
        let (my_r, my_c) = (me / pc, me % pc);
        let rate = proc.params().solve_rate(nrhs);
        let mut xs: Vec<Option<DenseMatrix>> = vec![None; nb];
        let mut out: Vec<(Vec<usize>, DenseMatrix)> = Vec::new();
        for i in (0..nb).rev() {
            let r0 = i * block;
            let r1 = (r0 + block).min(n);
            let rows = r1 - r0;
            let diag_r = grid.rows.owner(r0);
            let diag_c = grid.cols.owner(r0);
            // partials computed by grid column diag_c from their local rows k > i
            if my_c == diag_c {
                let mut partial = DenseMatrix::zeros(rows, nrhs);
                for k in i + 1..nb {
                    let k0 = k * block;
                    let k1 = (k0 + block).min(n);
                    if grid.rows.owner(k0) != my_r {
                        continue;
                    }
                    let xk = xs[k].as_ref().expect("x_k broadcast before use");
                    for c in 0..nrhs {
                        for (jj, j) in (r0..r1).enumerate() {
                            let mut sum = 0.0;
                            for (kk, gk) in (k0..k1).enumerate() {
                                sum += l[(gk, j)] * xk[(kk, c)];
                            }
                            partial[(jj, c)] += sum;
                        }
                    }
                    proc.compute_flops_at((2 * rows * (k1 - k0) * nrhs) as f64, rate);
                }
                let col_group = Group::from_ranks((0..pr).map(|r| r * pc + my_c).collect());
                let root = col_group
                    .group_rank(diag_r * pc + diag_c)
                    .expect("diag owner in column");
                let reduced = coll::reduce_sum(
                    proc,
                    &col_group,
                    (2 * i) as u64,
                    root,
                    partial.as_slice().to_vec(),
                );
                if let Some(sum) = reduced {
                    let mut xi = DenseMatrix::zeros(rows, nrhs);
                    for c in 0..nrhs {
                        for (jj, gj) in (r0..r1).enumerate() {
                            xi[(jj, c)] = b[(gj, c)] - sum[c * rows + jj];
                        }
                    }
                    let mut tri = DenseMatrix::zeros(rows, rows);
                    for (jj, j) in (r0..r1).enumerate() {
                        for (ii, gi) in (r0..r1).enumerate() {
                            if gi >= j {
                                tri[(ii, jj)] = l[(gi, j)];
                            }
                        }
                    }
                    blas::trsm_lower_trans_left(
                        tri.as_slice(),
                        rows,
                        xi.as_mut_slice(),
                        rows,
                        rows,
                        nrhs,
                    );
                    proc.compute_flops_at((rows * rows * nrhs) as f64, rate);
                    // broadcast x_i along the diag owner's grid row (all
                    // columns of grid row diag_r hold row block i)
                    let row_group = Group::from_ranks((0..pc).map(|c| diag_r * pc + c).collect());
                    let root = row_group.group_rank(me).expect("self in row");
                    let _ = coll::bcast(
                        proc,
                        &row_group,
                        (2 * i + 1) as u64,
                        root,
                        xi.as_slice().to_vec(),
                    );
                    out.push(((r0..r1).collect(), xi.clone()));
                    xs[i] = Some(xi);
                }
            } else if my_r == diag_r {
                // receive x_i along the grid row
                let row_group = Group::from_ranks((0..pc).map(|c| diag_r * pc + c).collect());
                let root = row_group
                    .group_rank(diag_r * pc + diag_c)
                    .expect("diag owner in row");
                let data = coll::bcast(proc, &row_group, (2 * i + 1) as u64, root, Vec::new());
                let mut xi = DenseMatrix::zeros(rows, nrhs);
                for c in 0..nrhs {
                    xi.col_mut(c)
                        .copy_from_slice(&data[c * rows..(c + 1) * rows]);
                }
                xs[i] = Some(xi);
            }
        }
        // flatten
        let mut positions = Vec::new();
        for (pos, _) in &out {
            positions.extend_from_slice(pos);
        }
        let mut xm = DenseMatrix::zeros(positions.len(), nrhs);
        let mut at = 0;
        for (pos, mtx) in &out {
            for c in 0..nrhs {
                xm.col_mut(c)[at..at + pos.len()].copy_from_slice(mtx.col(c));
            }
            at += pos.len();
        }
        (positions, xm)
    });
    assemble(run, n, nrhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_factor::blas;
    use trisolv_matrix::gen;

    fn random_lower(n: usize, seed: u64) -> DenseMatrix {
        let vals = gen::random_rhs(n * n, 1, seed);
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = if i == j {
                    3.0 + vals.as_slice()[i + j * n].abs()
                } else {
                    vals.as_slice()[i + j * n]
                };
            }
        }
        l
    }

    fn reference_forward(l: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = l.nrows();
        let mut x = b.clone();
        blas::trsm_lower_left(l.as_slice(), n, x.as_mut_slice(), n, n, b.ncols());
        x
    }

    #[test]
    fn forward_1d_matches_reference() {
        for (n, p, b, nrhs) in [(16, 4, 2, 1), (20, 8, 2, 3), (15, 3, 4, 2)] {
            let l = random_lower(n, 1);
            let rhs = gen::random_rhs(n, nrhs, 2);
            let res = forward_1d(&l, &rhs, p, b, MachineParams::t3d());
            let expect = reference_forward(&l, &rhs);
            assert!(
                res.x.max_abs_diff(&expect).unwrap() < 1e-9,
                "n={n} p={p} b={b}"
            );
        }
    }

    #[test]
    fn backward_1d_matches_reference() {
        let (n, p, b) = (18, 4, 2);
        let l = random_lower(n, 3);
        let x_true = gen::random_rhs(n, 2, 4);
        let rhs = l.transpose().matmul(&x_true).unwrap();
        let res = backward_1d(&l, &rhs, p, b, MachineParams::t3d());
        assert!(res.x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn forward_2d_matches_reference() {
        for (n, p, b) in [(16, 4, 2), (24, 8, 3), (12, 2, 2), (20, 16, 2)] {
            let l = random_lower(n, 5);
            let rhs = gen::random_rhs(n, 2, 6);
            let res = forward_2d(&l, &rhs, p, b, MachineParams::t3d());
            let expect = reference_forward(&l, &rhs);
            assert!(
                res.x.max_abs_diff(&expect).unwrap() < 1e-9,
                "n={n} p={p} b={b}: {:?}",
                res.x.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn backward_2d_matches_reference() {
        for (n, p, b) in [(16, 4, 2), (24, 8, 3), (12, 2, 2), (20, 16, 2)] {
            let l = random_lower(n, 15);
            let x_true = gen::random_rhs(n, 2, 16);
            let rhs = l.transpose().matmul(&x_true).unwrap();
            let res = backward_2d(&l, &rhs, p, b, MachineParams::t3d());
            assert!(
                res.x.max_abs_diff(&x_true).unwrap() < 1e-8,
                "n={n} p={p} b={b}: {:?}",
                res.x.max_abs_diff(&x_true)
            );
        }
    }

    #[test]
    fn two_d_forward_backward_roundtrip() {
        let (n, p, b) = (20, 4, 2);
        let l = random_lower(n, 17);
        let x_true = gen::random_rhs(n, 1, 18);
        // b = L Lᵀ x
        let llt = l.matmul(&l.transpose()).unwrap();
        let rhs = llt.matmul(&x_true).unwrap();
        let y = forward_2d(&l, &rhs, p, b, MachineParams::t3d());
        let x = backward_2d(&l, &y.x, p, b, MachineParams::t3d());
        assert!(x.x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn one_d_scales_better_than_two_d() {
        // Figure 5's qualitative content: for a solve-only workload the
        // pipelined 1-D formulation beats the step-serialized 2-D one.
        let n = 256;
        let p = 16;
        let l = random_lower(n, 7);
        let rhs = gen::random_rhs(n, 1, 8);
        let r1 = forward_1d(&l, &rhs, p, 4, MachineParams::t3d());
        let r2 = forward_2d(&l, &rhs, p, 4, MachineParams::t3d());
        assert!(
            r1.time < r2.time,
            "1-D {} should beat 2-D {}",
            r1.time,
            r2.time
        );
    }

    #[test]
    fn overhead_grows_superlinearly_for_2d() {
        // unscalability indicator: T_o at fixed n grows faster than p
        let n = 128;
        let l = random_lower(n, 9);
        let rhs = gen::random_rhs(n, 1, 10);
        let o4 = forward_2d(&l, &rhs, 4, 4, MachineParams::t3d()).overhead;
        let o16 = forward_2d(&l, &rhs, 16, 4, MachineParams::t3d()).overhead;
        assert!(
            o16 > 3.0 * o4,
            "2-D overhead p=4 {o4} vs p=16 {o16} grew too slowly"
        );
    }

    #[test]
    fn single_processor_no_communication() {
        let n = 10;
        let l = random_lower(n, 11);
        let rhs = gen::random_rhs(n, 1, 12);
        let res = forward_1d(&l, &rhs, 1, 2, MachineParams::t3d());
        assert_eq!(res.words, 0);
        let expect = reference_forward(&l, &rhs);
        assert!(res.x.max_abs_diff(&expect).unwrap() < 1e-10);
    }
}
