//! Pipelined block-cyclic trapezoid kernels (paper §2, Figures 3–4).
//!
//! A supernode of the factor is a dense `n×t` trapezoid (`t` triangle
//! columns on top, an `(n−t)×t` rectangle below). At the parallel levels of
//! the elimination tree the trapezoid's **rows** are distributed
//! block-cyclically over the supernode's processor group, and the solves
//! proceed as pipelined wavefronts:
//!
//! * forward elimination (column-priority): the owner of diagonal block `k`
//!   solves a `b×b` triangle and injects `x_k` into the ring; every
//!   processor forwards it and immediately updates all of its rows below
//!   block `k`. Communication per supernode ≈ `b(q−1) + t` — the paper's
//!   §3.1 analysis.
//! * back substitution (column-priority): partial inner products flow
//!   *toward* the owner of each diagonal block along the reversed ring,
//!   which then solves `x_k = L_kk⁻ᵀ(y_k − Σ …)`.
//!
//! [`Schedule`] additionally generates the closed-form time-step grids of
//! the paper's Figures 3 and 4 (EREW-PRAM, row-priority, column-priority),
//! used by the `fig3`/`fig4` harness binaries and as ordering oracles in
//! tests.

use trisolv_factor::blas;
use trisolv_machine::{BlockCyclic1d, Group, Proc};
use trisolv_matrix::DenseMatrix;

/// The rows of one supernode trapezoid held by one processor.
#[derive(Debug, Clone)]
pub struct LocalTrapezoid {
    /// Global positions (0-based row indices within the trapezoid) of the
    /// local rows, ascending.
    pub positions: Vec<usize>,
    /// The local rows of `L` packed in `positions` order:
    /// `positions.len() × t` column-major.
    pub l: DenseMatrix,
}

impl LocalTrapezoid {
    /// Extract the rows of `trap` owned by group rank `owner_rank` under
    /// `layout`.
    pub fn from_global(trap: &DenseMatrix, layout: &BlockCyclic1d, owner_rank: usize) -> Self {
        let t = trap.ncols();
        let positions: Vec<usize> = (0..trap.nrows())
            .filter(|&i| layout.owner(i) == owner_rank)
            .collect();
        let mut l = DenseMatrix::zeros(positions.len(), t);
        for (li, &gi) in positions.iter().enumerate() {
            for j in 0..t {
                l[(li, j)] = trap[(gi, j)];
            }
        }
        LocalTrapezoid { positions, l }
    }

    /// Index of the first local row at or after global position `pos`.
    fn first_at_or_after(&self, pos: usize) -> usize {
        self.positions.partition_point(|&p| p < pos)
    }

    /// Local index of global position `pos` (must be owned).
    fn local_of(&self, pos: usize) -> usize {
        self.positions
            .binary_search(&pos)
            .expect("position owned by this processor")
    }
}

/// Flatten rows `r0..r1` of `m` column-major into a message payload.
fn pack(m: &DenseMatrix, r0: usize, r1: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity((r1 - r0) * m.ncols());
    for c in 0..m.ncols() {
        out.extend_from_slice(&m.col(c)[r0..r1]);
    }
    out
}

/// Inverse of [`pack`].
fn unpack(m: &mut DenseMatrix, r0: usize, r1: usize, data: &[f64]) {
    let len = r1 - r0;
    debug_assert_eq!(data.len(), len * m.ncols());
    for c in 0..m.ncols() {
        m.col_mut(c)[r0..r1].copy_from_slice(&data[c * len..(c + 1) * len]);
    }
}

/// Pipelined column-priority **forward elimination** over one trapezoid.
///
/// On entry, `rhs` (shape `positions.len() × nrhs`) holds the gathered
/// right-hand-side values for the triangle rows this processor owns and
/// zeros for its below-triangle rows. On exit, triangle rows hold the
/// solution `x` and below rows hold `−L21·x` contributions (ready to be
/// added into the caller's update accumulator).
///
/// All members of `group` must call with identical `layout`, `t`, `nrhs`,
/// and `tag`.
#[allow(clippy::too_many_arguments)]
pub fn forward_column_priority(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    layout: &BlockCyclic1d,
    t: usize,
    nrhs: usize,
    local: &LocalTrapezoid,
    rhs: &mut DenseMatrix,
) {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be in the supernode group");
    debug_assert_eq!(layout.nprocs, q);
    debug_assert_eq!(rhs.nrows(), local.positions.len());
    debug_assert_eq!(rhs.ncols(), nrhs);
    let rate = proc.params().solve_rate(nrhs);
    let lrows = local.positions.len();
    let b = layout.block;
    let nb_tri = t.div_ceil(b);

    for k in 0..nb_tri {
        let c0 = k * b;
        let c1 = (c0 + b).min(t);
        let len = c1 - c0;
        let owner = layout.owner_of_block(k);
        let xk = if me == owner {
            // solve the diagonal len×len triangle against this block's rhs
            let lr = local.local_of(c0);
            debug_assert_eq!(local.positions[lr + len - 1], c1 - 1);
            let mut tri = DenseMatrix::zeros(len, len);
            for j in 0..len {
                for i in j..len {
                    tri[(i, j)] = local.l[(lr + i, c0 + j)];
                }
            }
            let mut xk = DenseMatrix::zeros(len, nrhs);
            for c in 0..nrhs {
                xk.col_mut(c).copy_from_slice(&rhs.col(c)[lr..lr + len]);
            }
            blas::trsm_lower_left(tri.as_slice(), len, xk.as_mut_slice(), len, len, nrhs);
            proc.compute_flops_at((len * len * nrhs) as f64, rate);
            for c in 0..nrhs {
                rhs.col_mut(c)[lr..lr + len].copy_from_slice(xk.col(c));
            }
            if q > 1 {
                proc.send(group.world_rank((me + 1) % q), tag, pack(&xk, 0, len));
            }
            xk
        } else {
            let prev = group.world_rank((me + q - 1) % q);
            let data = proc.recv(prev, tag);
            let next = (me + 1) % q;
            if next != owner {
                proc.send(group.world_rank(next), tag, data.clone());
            }
            let mut xk = DenseMatrix::zeros(len, nrhs);
            unpack(&mut xk, 0, len, &data);
            xk
        };
        // column-priority update: apply x_k to every local row below c1
        let tail = local.first_at_or_after(c1);
        let m = lrows - tail;
        if m > 0 {
            let lslice = local.l.as_slice();
            for c in 0..nrhs {
                let rcol = &mut rhs.col_mut(c)[tail..];
                for (jj, j) in (c0..c1).enumerate() {
                    let xv = xk[(jj, c)];
                    if xv == 0.0 {
                        continue;
                    }
                    let lcol = &lslice[j * lrows + tail..j * lrows + lrows];
                    for i in 0..m {
                        rcol[i] -= lcol[i] * xv;
                    }
                }
            }
            proc.compute_flops_at((2 * m * len * nrhs) as f64, rate);
        }
    }
}

/// Pipelined **row-priority** forward elimination (paper Figure 3(b)):
/// identical arithmetic and messages, but each processor finishes a whole
/// local row block (applying every pending `x_k` to it) before moving to
/// the next — the ablation counterpart of the column-priority kernel.
#[allow(clippy::too_many_arguments)]
pub fn forward_row_priority(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    layout: &BlockCyclic1d,
    t: usize,
    nrhs: usize,
    local: &LocalTrapezoid,
    rhs: &mut DenseMatrix,
) {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be in the supernode group");
    let rate = proc.params().solve_rate(nrhs);
    let lrows = local.positions.len();
    let b = layout.block;
    let nb_tri = t.div_ceil(b);

    // x blocks received or produced so far, by block index
    let mut xs: Vec<Option<DenseMatrix>> = vec![None; nb_tri];
    let mut next_rx = 0usize; // smallest remote block not yet received

    // receive (and forward) remote x blocks in ascending order up to and
    // including block k
    fn obtain(
        proc: &mut Proc,
        group: &Group,
        tag: u64,
        layout: &BlockCyclic1d,
        t: usize,
        nrhs: usize,
        me: usize,
        xs: &mut [Option<DenseMatrix>],
        next_rx: &mut usize,
        k: usize,
    ) {
        let q = group.size();
        let b = layout.block;
        while *next_rx <= k {
            let kk = *next_rx;
            *next_rx += 1;
            if layout.owner_of_block(kk) == me {
                debug_assert!(xs[kk].is_some(), "own block solved before use");
                continue;
            }
            let c0 = kk * b;
            let len = (c0 + b).min(t) - c0;
            let prev = group.world_rank((me + q - 1) % q);
            let data = proc.recv(prev, tag);
            let nxt = (me + 1) % q;
            if nxt != layout.owner_of_block(kk) {
                proc.send(group.world_rank(nxt), tag, data.clone());
            }
            let mut xk = DenseMatrix::zeros(len, nrhs);
            unpack(&mut xk, 0, len, &data);
            xs[kk] = Some(xk);
        }
    }

    // walk my local row blocks in ascending position order
    let mut li = 0usize;
    while li < lrows {
        let pos0 = local.positions[li];
        let blk = pos0 / b;
        let blk_end = ((blk + 1) * b).min(layout.nitems);
        let mut lend = li;
        while lend < lrows && local.positions[lend] < blk_end {
            lend += 1;
        }
        let m = lend - li;
        // apply all x_k with k < min(blk, nb_tri) to this row block
        let kmax = blk.min(nb_tri);
        for k in 0..kmax {
            obtain(
                proc,
                group,
                tag,
                layout,
                t,
                nrhs,
                me,
                &mut xs,
                &mut next_rx,
                k,
            );
            let xk = xs[k].as_ref().expect("x_k available");
            let c0 = k * b;
            let len = xk.nrows();
            for c in 0..nrhs {
                for jj in 0..len {
                    let xv = xk[(jj, c)];
                    if xv == 0.0 {
                        continue;
                    }
                    let lcol = &local.l.col(c0 + jj)[li..lend];
                    let rcol = &mut rhs.col_mut(c)[li..lend];
                    for i in 0..m {
                        rcol[i] -= lcol[i] * xv;
                    }
                }
            }
            proc.compute_flops_at((2 * m * len * nrhs) as f64, rate);
        }
        // if this row block is a diagonal block, it is mine: solve it.
        // Note the row block may straddle `t` (short last triangle block):
        // only its first `len` rows are triangle rows.
        if blk < nb_tri {
            debug_assert_eq!(layout.owner_of_block(blk), me);
            let c0 = blk * b;
            let len = (c0 + b).min(t) - c0;
            debug_assert!(len <= m);
            let mut tri = DenseMatrix::zeros(len, len);
            for j in 0..len {
                for i in j..len {
                    tri[(i, j)] = local.l[(li + i, c0 + j)];
                }
            }
            let mut xk = DenseMatrix::zeros(len, nrhs);
            for c in 0..nrhs {
                xk.col_mut(c).copy_from_slice(&rhs.col(c)[li..li + len]);
            }
            blas::trsm_lower_left(tri.as_slice(), len, xk.as_mut_slice(), len, len, nrhs);
            proc.compute_flops_at((len * len * nrhs) as f64, rate);
            for c in 0..nrhs {
                rhs.col_mut(c)[li..li + len].copy_from_slice(xk.col(c));
            }
            if q > 1 {
                proc.send(group.world_rank((me + 1) % q), tag, pack(&xk, 0, len));
            }
            // apply x_blk to the straddling below-triangle rows (if any)
            let s0 = li + len;
            if s0 < lend {
                let ms = lend - s0;
                for c in 0..nrhs {
                    for jj in 0..len {
                        let xv = xk[(jj, c)];
                        if xv == 0.0 {
                            continue;
                        }
                        let lcol = &local.l.col(c0 + jj)[s0..lend];
                        let rcol = &mut rhs.col_mut(c)[s0..lend];
                        for i in 0..ms {
                            rcol[i] -= lcol[i] * xv;
                        }
                    }
                }
                proc.compute_flops_at((2 * ms * len * nrhs) as f64, rate);
            }
            xs[blk] = Some(xk);
        }
        li = lend;
    }
    // drain x blocks never needed locally but still requiring forwarding
    if nb_tri > 0 {
        obtain(
            proc,
            group,
            tag,
            layout,
            t,
            nrhs,
            me,
            &mut xs,
            &mut next_rx,
            nb_tri - 1,
        );
    }
}

/// Pipelined column-priority **back substitution** over one trapezoid.
///
/// On entry, `rhs` holds `y` values for this processor's triangle rows and
/// already-solved `x` values for its below-triangle rows. On exit, triangle
/// rows hold the solution `x` (below rows are unchanged).
///
/// Partial sums for each diagonal block flow along the ring toward the
/// block's owner — the mirrored wave of the paper's Figure 4.
#[allow(clippy::too_many_arguments)]
pub fn backward_column_priority(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    layout: &BlockCyclic1d,
    t: usize,
    nrhs: usize,
    local: &LocalTrapezoid,
    rhs: &mut DenseMatrix,
) {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be in the supernode group");
    let rate = proc.params().solve_rate(nrhs);
    let lrows = local.positions.len();
    let b = layout.block;
    let nb_tri = t.div_ceil(b);

    for k in (0..nb_tri).rev() {
        let c0 = k * b;
        let c1 = (c0 + b).min(t);
        let len = c1 - c0;
        let owner = layout.owner_of_block(k);
        // my partial: Σ over local rows at positions ≥ c1 of
        // L[row, c0..c1]ᵀ · x[row]
        let tail = local.first_at_or_after(c1);
        let m = lrows - tail;
        let mut partial = DenseMatrix::zeros(len, nrhs);
        if m > 0 {
            let lslice = local.l.as_slice();
            for c in 0..nrhs {
                let xcol = &rhs.col(c)[tail..];
                for (jj, j) in (c0..c1).enumerate() {
                    let lcol = &lslice[j * lrows + tail..j * lrows + lrows];
                    let mut sum = 0.0;
                    for i in 0..m {
                        sum += lcol[i] * xcol[i];
                    }
                    partial[(jj, c)] += sum;
                }
            }
            proc.compute_flops_at((2 * m * len * nrhs) as f64, rate);
        }
        if q == 1 {
            solve_diag_transposed(proc, local, rhs, c0, len, nrhs, &partial, rate);
            continue;
        }
        // The carry ring runs in the DESCENDING rank direction (start at
        // owner−1, hop to rank−1, end at the owner). With blocks processed
        // high-to-low and block-cyclic owners this offsets consecutive
        // chains by one hop, so the waves pipeline — running the ring the
        // other way would serialize every chain behind the previous one.
        let start = (owner + q - 1) % q;
        if me == owner {
            let prev = group.world_rank((me + 1) % q);
            let carry = proc.recv(prev, tag);
            let mut carry_m = DenseMatrix::zeros(len, nrhs);
            unpack(&mut carry_m, 0, len, &carry);
            partial.axpy(1.0, &carry_m).expect("same shape");
            solve_diag_transposed(proc, local, rhs, c0, len, nrhs, &partial, rate);
        } else {
            if me != start {
                let prev = group.world_rank((me + 1) % q);
                let carry = proc.recv(prev, tag);
                let mut carry_m = DenseMatrix::zeros(len, nrhs);
                unpack(&mut carry_m, 0, len, &carry);
                partial.axpy(1.0, &carry_m).expect("same shape");
            }
            proc.send(
                group.world_rank((me + q - 1) % q),
                tag,
                pack(&partial, 0, len),
            );
        }
    }
}

/// Solve `L_kkᵀ·x_k = y_k − partial` in place at the diagonal-block owner.
#[allow(clippy::too_many_arguments)]
fn solve_diag_transposed(
    proc: &mut Proc,
    local: &LocalTrapezoid,
    rhs: &mut DenseMatrix,
    c0: usize,
    len: usize,
    nrhs: usize,
    partial: &DenseMatrix,
    rate: f64,
) {
    let lr = local.local_of(c0);
    let mut tri = DenseMatrix::zeros(len, len);
    for j in 0..len {
        for i in j..len {
            tri[(i, j)] = local.l[(lr + i, c0 + j)];
        }
    }
    let mut xk = DenseMatrix::zeros(len, nrhs);
    for c in 0..nrhs {
        for i in 0..len {
            xk[(i, c)] = rhs[(lr + i, c)] - partial[(i, c)];
        }
    }
    blas::trsm_lower_trans_left(tri.as_slice(), len, xk.as_mut_slice(), len, len, nrhs);
    proc.compute_flops_at((len * len * nrhs) as f64, rate);
    for c in 0..nrhs {
        for i in 0..len {
            rhs[(lr + i, c)] = xk[(i, c)];
        }
    }
}

/// Closed-form schedule grids reproducing the paper's Figures 3 and 4: the
/// time step at which each `b×b` block of a hypothetical trapezoid is used.
///
/// ```
/// use trisolv_core::pipeline::Schedule;
///
/// let s = Schedule::erew_pram(8, 4);
/// assert_eq!(s.makespan, 11);                       // diagonal wave: n_b + t_b − 1
/// assert!(s.max_concurrency() <= 4usize.max(8 / 2)); // paper: ≤ max(t, n/2) busy
/// println!("{}", s.render());
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    /// `steps[i][k]` = 1-based time step at which row block `i`, column
    /// block `k` is processed (`usize::MAX` = above the diagonal).
    pub steps: Vec<Vec<usize>>,
    /// Total number of time steps.
    pub makespan: usize,
}

/// Priority rule for the greedy list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Finish a column before starting the next (Figure 3(c) / Figure 4).
    Column,
    /// Finish a row before starting the next (Figure 3(b)).
    Row,
}

impl Schedule {
    /// EREW-PRAM schedule with unlimited processors (Figure 3(a)): a
    /// diagonal wave — block `(i, k)` runs at step `i + k + 1`. At any step
    /// only one block per row and one per column is active, so at most
    /// `max(t, n/2)` processors are ever busy (the paper's §2.1
    /// observation).
    pub fn erew_pram(nb_rows: usize, nb_cols: usize) -> Schedule {
        let mut steps = vec![vec![usize::MAX; nb_cols]; nb_rows];
        let mut makespan = 0;
        for (i, row) in steps.iter_mut().enumerate() {
            for (k, cell) in row.iter_mut().enumerate() {
                if k > i {
                    continue; // above the diagonal of the triangle
                }
                *cell = i + k + 1;
                makespan = makespan.max(i + k + 1);
            }
        }
        Schedule { steps, makespan }
    }

    /// Greedy one-block-per-step-per-processor schedule with `q` processors
    /// and cyclic row mapping (row block `i` on processor `i mod q`),
    /// ignoring communication delays — the model behind Figures 3(b), 3(c)
    /// and 4.
    pub fn pipelined_forward(nb_rows: usize, nb_cols: usize, q: usize, prio: Priority) -> Schedule {
        let mut steps = vec![vec![usize::MAX; nb_cols]; nb_rows];
        let mut solved = vec![usize::MAX; nb_cols]; // step at which x_k exists
        let mut makespan = 0;
        let mut done = 0usize;
        let total: usize = (0..nb_rows).map(|i| nb_cols.min(i + 1)).sum();
        let mut step = 1usize;
        while done < total {
            for proc in 0..q {
                let mut best: Option<(usize, usize)> = None;
                for i in (proc..nb_rows).step_by(q) {
                    for k in 0..nb_cols.min(i + 1) {
                        if steps[i][k] != usize::MAX {
                            continue;
                        }
                        let dep_ok = if i == k {
                            // solve cell: everything to its left done
                            (0..k).all(|kk| steps[i][kk] != usize::MAX)
                        } else {
                            solved[k] != usize::MAX && solved[k] < step
                        };
                        if !dep_ok {
                            continue;
                        }
                        let key = match prio {
                            Priority::Column => (k, i),
                            Priority::Row => (i, k),
                        };
                        let better = match best {
                            None => true,
                            Some((bi, bk)) => {
                                key < match prio {
                                    Priority::Column => (bk, bi),
                                    Priority::Row => (bi, bk),
                                }
                            }
                        };
                        if better {
                            best = Some((i, k));
                        }
                    }
                }
                if let Some((i, k)) = best {
                    steps[i][k] = step;
                    if i == k {
                        solved[k] = step;
                    }
                    makespan = makespan.max(step);
                    done += 1;
                }
            }
            step += 1;
            assert!(step < 100 * (total + 2), "scheduler failed to progress");
        }
        Schedule { steps, makespan }
    }

    /// Greedy schedule for column-priority **back substitution** on the
    /// transposed trapezoid (paper Figure 4): columns are processed
    /// right-to-left; cell `(i, k)` (the contribution of row block `i > k`
    /// to column `k`) needs `x_i` (cell `(i, i)`) first, and the solve cell
    /// `(k, k)` needs every cell below it in column `k` done.
    pub fn pipelined_backward(nb_rows: usize, nb_cols: usize, q: usize) -> Schedule {
        let mut steps = vec![vec![usize::MAX; nb_cols]; nb_rows];
        let mut solved = vec![usize::MAX; nb_rows.min(nb_cols) + nb_rows]; // x_i availability
        solved.truncate(nb_rows);
        let mut makespan = 0;
        let total: usize = (0..nb_rows).map(|i| nb_cols.min(i + 1)).sum();
        let mut done = 0usize;
        let mut step = 1usize;
        while done < total {
            for proc in 0..q {
                let mut best: Option<(usize, usize)> = None;
                for i in (proc..nb_rows).step_by(q) {
                    for k in (0..nb_cols.min(i + 1)).rev() {
                        if steps[i][k] != usize::MAX {
                            continue;
                        }
                        let dep_ok = if i == k {
                            (k + 1..nb_rows).all(|ii| steps[ii][k] != usize::MAX)
                        } else {
                            // needs x_i: rows beyond the triangle (i ≥
                            // nb_cols) hold already-known values
                            i >= nb_cols || (solved[i] != usize::MAX && solved[i] < step)
                        };
                        if !dep_ok {
                            continue;
                        }
                        // column priority, right-to-left
                        let key = (usize::MAX - k, i);
                        let better = match best {
                            None => true,
                            Some((bi, bk)) => key < (usize::MAX - bk, bi),
                        };
                        if better {
                            best = Some((i, k));
                        }
                    }
                }
                if let Some((i, k)) = best {
                    steps[i][k] = step;
                    if i == k {
                        solved[k] = step;
                    }
                    makespan = makespan.max(step);
                    done += 1;
                }
            }
            step += 1;
            assert!(step < 100 * (total + 2), "scheduler failed to progress");
        }
        Schedule { steps, makespan }
    }

    /// Maximum number of blocks active at any single step.
    pub fn max_concurrency(&self) -> usize {
        let mut count = std::collections::HashMap::new();
        for row in &self.steps {
            for &s in row {
                if s != usize::MAX {
                    *count.entry(s).or_insert(0usize) += 1;
                }
            }
        }
        count.values().copied().max().unwrap_or(0)
    }

    /// Render in the paper's figure style: one line per row block; entries
    /// are time steps, `.` marks cells above the diagonal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.steps {
            for &s in row {
                if s == usize::MAX {
                    out.push_str("   .");
                } else {
                    out.push_str(&format!("{s:4}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_factor::blas;
    use trisolv_machine::{Machine, MachineParams};
    use trisolv_matrix::gen;

    /// Build a random dense lower trapezoid with a dominant diagonal.
    fn random_trapezoid(n: usize, t: usize, seed: u64) -> DenseMatrix {
        let vals = gen::random_rhs(n * t, 1, seed);
        let vals = vals.as_slice();
        let mut trap = DenseMatrix::zeros(n, t);
        let mut idx = 0;
        for j in 0..t {
            for i in 0..n {
                if i >= j {
                    trap[(i, j)] = if i == j {
                        4.0 + vals[idx].abs()
                    } else {
                        vals[idx]
                    };
                }
                idx += 1;
            }
        }
        trap
    }

    /// Sequential reference forward elimination on a trapezoid.
    fn reference_forward(trap: &DenseMatrix, rhs: &DenseMatrix) -> DenseMatrix {
        let (n, t) = trap.shape();
        let nrhs = rhs.ncols();
        let mut out = rhs.clone();
        blas::trsm_lower_left(trap.as_slice(), n, out.as_mut_slice(), n, t, nrhs);
        for c in 0..nrhs {
            for j in 0..t {
                let xv = out[(j, c)];
                for i in t..n {
                    let upd = trap[(i, j)] * xv;
                    out[(i, c)] -= upd;
                }
            }
        }
        out
    }

    /// Sequential reference back substitution: rhs rows ≥ t hold x_below,
    /// rows < t hold y; returns x_top.
    fn reference_backward(trap: &DenseMatrix, rhs: &DenseMatrix) -> DenseMatrix {
        let (n, t) = trap.shape();
        let nrhs = rhs.ncols();
        let mut top = DenseMatrix::zeros(t, nrhs);
        for c in 0..nrhs {
            for j in 0..t {
                let mut v = rhs[(j, c)];
                for i in t..n {
                    v -= trap[(i, j)] * rhs[(i, c)];
                }
                top[(j, c)] = v;
            }
        }
        blas::trsm_lower_trans_left(trap.as_slice(), n, top.as_mut_slice(), t, t, nrhs);
        top
    }

    fn run_forward_kernel(
        trap: &DenseMatrix,
        rhs_global: &DenseMatrix,
        q: usize,
        b: usize,
        row_priority: bool,
    ) -> DenseMatrix {
        let (n, t) = trap.shape();
        let nrhs = rhs_global.ncols();
        let layout = BlockCyclic1d::new(n, b, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let res = machine.run(|p| {
            let group = Group::world(q);
            let local = LocalTrapezoid::from_global(trap, &layout, p.rank());
            let mut rhs = DenseMatrix::zeros(local.positions.len(), nrhs);
            for c in 0..nrhs {
                for (li, &gi) in local.positions.iter().enumerate() {
                    rhs[(li, c)] = if gi < t { rhs_global[(gi, c)] } else { 0.0 };
                }
            }
            if row_priority {
                forward_row_priority(p, &group, 1, &layout, t, nrhs, &local, &mut rhs);
            } else {
                forward_column_priority(p, &group, 1, &layout, t, nrhs, &local, &mut rhs);
            }
            (local.positions, rhs)
        });
        let mut out = DenseMatrix::zeros(n, nrhs);
        for (positions, rhs) in res.results {
            for c in 0..nrhs {
                for (li, &gi) in positions.iter().enumerate() {
                    out[(gi, c)] = rhs[(li, c)];
                }
            }
        }
        out
    }

    #[test]
    fn forward_kernel_matches_reference() {
        for (n, t, q, b, nrhs) in [
            (12, 6, 3, 2, 1),
            (16, 8, 4, 2, 3),
            (10, 10, 2, 3, 2),
            (9, 4, 4, 1, 1),
            (7, 3, 2, 4, 2),
        ] {
            let trap = random_trapezoid(n, t, 42 + n as u64);
            let rhs = gen::random_rhs(n, nrhs, 7);
            let reference = {
                let r = reference_forward(&trap, &rhs);
                let mut expect = r.clone();
                // kernel's below rows start at zero, so they end holding
                // only the update: subtract the original rhs
                for c in 0..nrhs {
                    for i in t..n {
                        expect[(i, c)] = r[(i, c)] - rhs[(i, c)];
                    }
                }
                expect
            };
            let got = run_forward_kernel(&trap, &rhs, q, b, false);
            assert!(
                got.max_abs_diff(&reference).unwrap() < 1e-10,
                "n={n} t={t} q={q} b={b} nrhs={nrhs}: diff {:?}",
                got.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn row_priority_matches_column_priority() {
        for (n, t, q, b, nrhs) in [(12, 6, 3, 2, 2), (16, 8, 4, 2, 1), (11, 5, 2, 3, 1)] {
            let trap = random_trapezoid(n, t, 5);
            let rhs = gen::random_rhs(n, nrhs, 9);
            let a = run_forward_kernel(&trap, &rhs, q, b, false);
            let c = run_forward_kernel(&trap, &rhs, q, b, true);
            assert!(
                a.max_abs_diff(&c).unwrap() < 1e-12,
                "n={n} t={t} q={q} b={b}"
            );
        }
    }

    #[test]
    fn forward_kernel_single_proc() {
        let trap = random_trapezoid(8, 5, 3);
        let rhs = gen::random_rhs(8, 2, 4);
        let got = run_forward_kernel(&trap, &rhs, 1, 2, false);
        let reference = reference_forward(&trap, &rhs);
        for c in 0..2 {
            for i in 0..5 {
                assert!((got[(i, c)] - reference[(i, c)]).abs() < 1e-10);
            }
        }
    }

    fn run_backward_kernel(
        trap: &DenseMatrix,
        rhs_global: &DenseMatrix,
        q: usize,
        b: usize,
    ) -> DenseMatrix {
        let (n, t) = trap.shape();
        let nrhs = rhs_global.ncols();
        let layout = BlockCyclic1d::new(n, b, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let res = machine.run(|p| {
            let group = Group::world(q);
            let local = LocalTrapezoid::from_global(trap, &layout, p.rank());
            let mut rhs = DenseMatrix::zeros(local.positions.len(), nrhs);
            for c in 0..nrhs {
                for (li, &gi) in local.positions.iter().enumerate() {
                    rhs[(li, c)] = rhs_global[(gi, c)];
                }
            }
            backward_column_priority(p, &group, 1, &layout, t, nrhs, &local, &mut rhs);
            (local.positions, rhs)
        });
        let mut out = DenseMatrix::zeros(t, nrhs);
        for (positions, rhs) in res.results {
            for c in 0..nrhs {
                for (li, &gi) in positions.iter().enumerate() {
                    if gi < t {
                        out[(gi, c)] = rhs[(li, c)];
                    }
                }
            }
        }
        out
    }

    #[test]
    fn backward_kernel_matches_reference() {
        for (n, t, q, b, nrhs) in [
            (12, 6, 3, 2, 1),
            (16, 8, 4, 2, 3),
            (10, 10, 2, 3, 2),
            (9, 4, 4, 1, 1),
            (13, 5, 5, 2, 2),
        ] {
            let trap = random_trapezoid(n, t, 100 + n as u64);
            let rhs = gen::random_rhs(n, nrhs, 17);
            let expect = reference_backward(&trap, &rhs);
            let got = run_backward_kernel(&trap, &rhs, q, b);
            assert!(
                got.max_abs_diff(&expect).unwrap() < 1e-10,
                "n={n} t={t} q={q} b={b} nrhs={nrhs}: diff {:?}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn pipeline_roundtrip_forward_backward() {
        let (n, t, q, b) = (14, 7, 4, 2);
        let trap = random_trapezoid(n, t, 77);
        let x_true = gen::random_rhs(t, 2, 3);
        let mut tri = DenseMatrix::zeros(t, t);
        for j in 0..t {
            for i in j..t {
                tri[(i, j)] = trap[(i, j)];
            }
        }
        let y = tri.transpose().matmul(&x_true).unwrap();
        let mut rhs = DenseMatrix::zeros(n, 2);
        for c in 0..2 {
            for i in 0..t {
                rhs[(i, c)] = y[(i, c)];
            }
        }
        let got = run_backward_kernel(&trap, &rhs, q, b);
        assert!(got.max_abs_diff(&x_true).unwrap() < 1e-10);
    }

    #[test]
    fn communication_volume_matches_analysis() {
        // forward: each x block of size b travels q−1 hops:
        // words = (t/b) · (q−1) · b · nrhs = t (q−1) nrhs
        let (n, t, q, b) = (24, 12, 4, 2);
        let trap = random_trapezoid(n, t, 1);
        let rhs = gen::random_rhs(n, 1, 2);
        let layout = BlockCyclic1d::new(n, b, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let res = machine.run(|p| {
            let group = Group::world(q);
            let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
            let mut r = DenseMatrix::zeros(local.positions.len(), 1);
            for (li, &gi) in local.positions.iter().enumerate() {
                r[(li, 0)] = if gi < t { rhs[(gi, 0)] } else { 0.0 };
            }
            forward_column_priority(p, &group, 1, &layout, t, 1, &local, &mut r);
        });
        assert_eq!(res.total_words(), (t * (q - 1)) as u64);
        let res_b = machine.run(|p| {
            let group = Group::world(q);
            let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
            let mut r = DenseMatrix::zeros(local.positions.len(), 1);
            for (li, &gi) in local.positions.iter().enumerate() {
                r[(li, 0)] = rhs[(gi, 0)];
            }
            backward_column_priority(p, &group, 1, &layout, t, 1, &local, &mut r);
        });
        assert_eq!(res_b.total_words(), (t * (q - 1)) as u64);
    }

    #[test]
    fn pipelined_time_scales_like_bq_plus_t() {
        // doubling t should roughly double the pipelined time's t-term;
        // check the t=2T run is much less than 2x a (bq)-dominated run
        let q = 8;
        let b = 2;
        let time_for = |t: usize| {
            let n = t;
            let trap = random_trapezoid(n, t, 3);
            let layout = BlockCyclic1d::new(n, b, q);
            let machine = Machine::new(q, MachineParams::t3d());
            let res = machine.run(|p| {
                let group = Group::world(q);
                let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
                let mut r = DenseMatrix::zeros(local.positions.len(), 1);
                for (li, &gi) in local.positions.iter().enumerate() {
                    let _ = gi;
                    r[(li, 0)] = 1.0;
                }
                forward_column_priority(p, &group, 1, &layout, t, 1, &local, &mut r);
            });
            res.parallel_time()
        };
        let t1 = time_for(64);
        let t2 = time_for(128);
        assert!(t2 > t1, "more columns must take longer");
        assert!(t2 < 4.0 * t1, "time grew superlinearly: {t1} -> {t2}");
    }

    #[test]
    fn erew_schedule_diagonal_wave() {
        let s = Schedule::erew_pram(8, 4);
        assert_eq!(s.steps[0][0], 1);
        assert_eq!(s.steps[3][2], 6);
        assert_eq!(s.steps[1][3], usize::MAX);
        assert_eq!(s.makespan, 8 + 4 - 1);
        assert!(s.max_concurrency() <= 8 / 2);
    }

    #[test]
    fn pipelined_schedules_complete_all_cells() {
        for prio in [Priority::Column, Priority::Row] {
            let s = Schedule::pipelined_forward(8, 4, 4, prio);
            for i in 0..8 {
                for k in 0..4.min(i + 1) {
                    assert_ne!(s.steps[i][k], usize::MAX, "cell ({i},{k}) unscheduled");
                }
            }
            for k in 0..4 {
                let solve = s.steps[k][k];
                for i in k + 1..8 {
                    assert!(s.steps[i][k] > solve, "{prio:?} cell ({i},{k})");
                }
            }
        }
    }

    #[test]
    fn column_priority_schedule_is_efficient() {
        let (nbr, nbc, q) = (12, 6, 4);
        let total: usize = (0..nbr).map(|i| nbc.min(i + 1)).sum();
        let s = Schedule::pipelined_forward(nbr, nbc, q, Priority::Column);
        assert!(
            s.makespan <= total / q + nbc + q,
            "makespan {} too large",
            s.makespan
        );
    }

    #[test]
    fn backward_schedule_respects_dependencies() {
        let (nbr, nbc, q) = (8, 4, 4);
        let s = Schedule::pipelined_backward(nbr, nbc, q);
        for i in 0..nbr {
            for k in 0..nbc.min(i + 1) {
                assert_ne!(s.steps[i][k], usize::MAX, "cell ({i},{k}) unscheduled");
            }
        }
        for k in 0..nbc {
            // solve (k,k) after every below cell in column k
            for i in k + 1..nbr {
                assert!(
                    s.steps[k][k] > s.steps[i][k],
                    "solve ({k}) before ({i},{k})"
                );
            }
            // triangle contributions need x_i first
            for i in k + 1..nbc {
                if i != k {
                    assert!(s.steps[i][k] > s.steps[i][i], "cell ({i},{k}) before x_{i}");
                }
            }
        }
    }

    #[test]
    fn schedule_renders() {
        let s = Schedule::erew_pram(4, 3);
        let text = s.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('.'));
    }
}
