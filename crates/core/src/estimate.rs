//! Numerical diagnostics built on the factorization: log-determinant,
//! inertia, and a LAPACK-style 1-norm condition estimate.
//!
//! These are the standard post-factorization queries a production direct
//! solver exposes (the WSMP lineage included); all of them reuse the
//! factor and the triangular solvers, costing only O(solve) work.

use crate::seq;
use trisolv_factor::SupernodalFactor;
use trisolv_matrix::{CscMatrix, DenseMatrix};

/// `log |det A| = 2·Σ log L_jj` from a Cholesky factor.
pub fn logdet(f: &SupernodalFactor) -> f64 {
    let part = f.partition();
    let mut acc = 0.0;
    for s in 0..part.nsup() {
        let blk = f.block(s);
        for k in 0..part.width(s) {
            acc += blk[(k, k)].abs().ln();
        }
    }
    2.0 * acc
}

/// Matrix inertia `(n_pos, n_neg, n_zero)` from an LDLᵀ diagonal — by
/// Sylvester's law of inertia, these count the positive/negative/zero
/// eigenvalues of `A`.
pub fn inertia(d: &[f64]) -> (usize, usize, usize) {
    let mut pos = 0;
    let mut neg = 0;
    let mut zero = 0;
    for &v in d {
        if v > 0.0 {
            pos += 1;
        } else if v < 0.0 {
            neg += 1;
        } else {
            zero += 1;
        }
    }
    (pos, neg, zero)
}

/// Hager–Higham 1-norm estimator for `‖A⁻¹‖₁` using the factor's solves;
/// multiplied by `‖A‖₁` this gives the standard 1-norm condition estimate.
///
/// Runs at most `max_iters` power-like iterations (2 is usually exact on
/// the matrices here; LAPACK uses 5).
pub fn inverse_norm1_estimate(f: &SupernodalFactor, max_iters: usize) -> f64 {
    let n = f.n();
    // x = e / n
    let mut x = DenseMatrix::zeros(n, 1);
    for v in x.as_mut_slice() {
        *v = 1.0 / n as f64;
    }
    let mut est = 0.0f64;
    let mut last_j = usize::MAX;
    for _ in 0..max_iters.max(1) {
        // y = A⁻¹ x  (A symmetric → A⁻ᵀ = A⁻¹)
        let y = seq::forward_backward(f, &x);
        est = y.col(0).iter().map(|v| v.abs()).sum();
        // ξ = sign(y); z = A⁻ᵀ ξ = A⁻¹ ξ
        let mut xi = DenseMatrix::zeros(n, 1);
        for (i, v) in xi.as_mut_slice().iter_mut().enumerate() {
            *v = if y.col(0)[i] >= 0.0 { 1.0 } else { -1.0 };
        }
        let z = seq::forward_backward(f, &xi);
        // j = argmax |z_j|
        let (j, zj) = z
            .col(0)
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .fold((0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
        let ztx: f64 = z.col(0).iter().zip(x.col(0)).map(|(a, b)| a * b).sum();
        if zj <= ztx.abs() || j == last_j {
            break;
        }
        last_j = j;
        x = DenseMatrix::zeros(n, 1);
        x[(j, 0)] = 1.0;
    }
    est
}

/// 1-norm of a symmetric matrix stored lower-triangular:
/// `max_j Σ_i |A_ij|` over the implicit full matrix.
pub fn norm1_sym_lower(a: &CscMatrix) -> f64 {
    let n = a.ncols();
    let mut colsum = vec![0.0f64; n];
    for j in 0..n {
        for (k, &i) in a.col_rows(j).iter().enumerate() {
            let v = a.col_values(j)[k].abs();
            colsum[j] += v;
            if i != j {
                colsum[i] += v;
            }
        }
    }
    colsum.into_iter().fold(0.0, f64::max)
}

/// 1-norm condition estimate `κ₁(A) ≈ ‖A‖₁ · est(‖A⁻¹‖₁)`.
pub fn condition_estimate(a: &CscMatrix, f: &SupernodalFactor) -> f64 {
    norm1_sym_lower(a) * inverse_norm1_estimate(f, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_simplicial_ldlt, factor_supernodal};
    use trisolv_graph::Permutation;
    use trisolv_matrix::{gen, TripletMatrix};

    #[test]
    fn logdet_of_diagonal_matrix() {
        let mut t = TripletMatrix::new(3, 3);
        for (i, v) in [2.0, 4.0, 8.0].iter().enumerate() {
            t.push(i, i, *v).unwrap();
        }
        let a = t.to_csc();
        let an = analyze_with_perm(&a, &Permutation::identity(3));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let expect = (2.0f64 * 4.0 * 8.0).ln();
        assert!((logdet(&f) - expect).abs() < 1e-12);
    }

    #[test]
    fn logdet_matches_dense_product() {
        let a = gen::random_spd(25, 3, 7);
        let an = analyze_with_perm(&a, &Permutation::identity(25));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        // det via dense Cholesky diagonal
        let dense =
            trisolv_factor::dense::DenseCholesky::factor(&a.sym_expand().unwrap().to_dense())
                .unwrap();
        let expect: f64 = (0..25).map(|i| dense.l()[(i, i)].ln()).sum::<f64>() * 2.0;
        assert!((logdet(&f) - expect).abs() < 1e-9);
    }

    #[test]
    fn inertia_counts_signs() {
        assert_eq!(inertia(&[1.0, 2.0, -3.0, 0.0, 5.0]), (3, 1, 1));
        // SPD system: all positive
        let a = gen::grid2d_laplacian(5, 5);
        let an = analyze_with_perm(&a, &Permutation::identity(25));
        let (_, d) = factor_simplicial_ldlt(&an.pa, &an.sym).unwrap();
        assert_eq!(inertia(&d), (25, 0, 0));
    }

    #[test]
    fn condition_estimate_exact_on_diagonal() {
        // diag(1, 10): κ₁ = 10 exactly
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(1, 1, 10.0).unwrap();
        let a = t.to_csc();
        let an = analyze_with_perm(&a, &Permutation::identity(2));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let k = condition_estimate(&a, &f);
        assert!((k - 10.0).abs() < 1e-10, "estimate {k}");
    }

    #[test]
    fn condition_estimate_within_bounds() {
        // the estimator must lower-bound the true κ₁ and stay within a
        // small factor of it (compute the truth densely)
        let a = gen::grid2d_laplacian(6, 6);
        let an = analyze_with_perm(&a, &Permutation::identity(36));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let est = condition_estimate(&a, &f);
        // true ‖A⁻¹‖₁ via dense inverse columns
        let dense = a.sym_expand().unwrap().to_dense();
        let ch = trisolv_factor::dense::DenseCholesky::factor(&dense).unwrap();
        let mut inv_norm1 = 0.0f64;
        for j in 0..36 {
            let mut e = DenseMatrix::zeros(36, 1);
            e[(j, 0)] = 1.0;
            let col = ch.solve(&e);
            inv_norm1 = inv_norm1.max(col.col(0).iter().map(|v| v.abs()).sum());
        }
        let truth = norm1_sym_lower(&a) * inv_norm1;
        assert!(est <= truth * 1.0001, "estimate {est} above truth {truth}");
        assert!(est >= truth / 3.0, "estimate {est} far below truth {truth}");
    }

    #[test]
    fn norm1_counts_both_triangles() {
        // [[2, -1], [-1, 3]]: column sums 3 and 4
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 2.0).unwrap();
        t.push(1, 0, -1.0).unwrap();
        t.push(1, 1, 3.0).unwrap();
        let a = t.to_csc();
        assert_eq!(norm1_sym_lower(&a), 4.0);
    }
}
