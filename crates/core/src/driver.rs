//! End-to-end simulated parallel solver facade.
//!
//! [`ParallelSolver::build`] runs the complete pipeline of the paper's
//! overall direct solver on the virtual machine — nested-dissection
//! ordering, symbolic analysis, parallel multifrontal factorization (2-D
//! frontal distribution), 2-D → 1-D redistribution of `L` — after which
//! [`ParallelSolver::solve`] answers any number of right-hand-side blocks
//! with the parallel forward/backward substitution, handling the
//! permutation bookkeeping internally.

use crate::mapping::SubcubeMapping;
use crate::redistribute::{redistribute_factor, RedistributeReport};
use crate::tree::{solve_fb, SolveConfig, SolveReport};
use trisolv_factor::par::{factor_parallel, FactorConfig, FactorReport};
use trisolv_factor::seqchol;
use trisolv_factor::SupernodalFactor;
use trisolv_graph::{nd, Graph, Permutation};
use trisolv_machine::MachineParams;
use trisolv_matrix::{CscMatrix, DenseMatrix, MatrixError};

/// Options for building a [`ParallelSolver`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelSolverOptions {
    /// Number of virtual processors.
    pub nprocs: usize,
    /// Block size of the block-cyclic distributions (both phases).
    pub block: usize,
    /// Machine cost model.
    pub params: MachineParams,
    /// Relaxed supernode amalgamation `(relax_abs, relax_frac)`;
    /// `(0, 0.0)` keeps fundamental supernodes.
    pub amalgamation: (usize, f64),
}

impl ParallelSolverOptions {
    /// T3D-flavoured defaults at a given processor count.
    pub fn t3d(nprocs: usize) -> Self {
        ParallelSolverOptions {
            nprocs,
            block: 8,
            params: MachineParams::t3d(),
            amalgamation: (0, 0.0),
        }
    }
}

/// A factored system ready for repeated simulated-parallel solves.
///
/// ```
/// use trisolv_core::{ParallelSolver, ParallelSolverOptions};
/// use trisolv_graph::nd;
/// use trisolv_matrix::gen;
///
/// let a = gen::grid2d_laplacian(12, 12);
/// let coords = nd::grid2d_coords(12, 12, 1);
/// let solver =
///     ParallelSolver::build(&a, Some(&coords), &ParallelSolverOptions::t3d(8)).unwrap();
/// let x_true = gen::random_rhs(144, 1, 3);
/// let b = a.spmv_sym_lower(&x_true).unwrap();
/// let (x, report) = solver.solve(&b);
/// assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
/// assert!(report.total_time > 0.0);
/// ```
#[derive(Debug)]
pub struct ParallelSolver {
    perm: Permutation,
    factor: SupernodalFactor,
    mapping: SubcubeMapping,
    config: SolveConfig,
    factor_report: FactorReport,
    redistribute_report: RedistributeReport,
}

impl ParallelSolver {
    /// Order, analyze, factor (in parallel on the virtual machine), and
    /// redistribute `L` for solving. `coords` enables geometric nested
    /// dissection for mesh problems; without them the multilevel general
    /// dissection is used.
    pub fn build(
        a: &CscMatrix,
        coords: Option<&[[f64; 3]]>,
        options: &ParallelSolverOptions,
    ) -> Result<Self, MatrixError> {
        let g = Graph::from_sym_lower(a);
        let fill_perm = match coords {
            Some(c) => nd::nested_dissection_coords(&g, c, nd::NdOptions::default()),
            None => trisolv_graph::multilevel::nested_dissection_multilevel(
                &g,
                trisolv_graph::multilevel::MlOptions::default(),
            ),
        };
        let an = seqchol::analyze_with_perm(a, &fill_perm);
        let part = if options.amalgamation.0 > 0 || options.amalgamation.1 > 0.0 {
            an.part
                .amalgamate(options.amalgamation.0, options.amalgamation.1)
        } else {
            an.part.clone()
        };
        let mapping = SubcubeMapping::new(&part, options.nprocs);
        let fconfig = FactorConfig {
            nprocs: options.nprocs,
            block: options.block,
            params: options.params,
        };
        let (factor, factor_report) = factor_parallel(&an.pa, &part, &mapping, &fconfig)?;
        let redistribute_report = redistribute_factor(
            &factor,
            &mapping,
            options.block,
            options.block,
            options.params,
        );
        Ok(ParallelSolver {
            perm: an.perm,
            factor,
            mapping,
            config: SolveConfig {
                nprocs: options.nprocs,
                block: options.block,
                params: options.params,
            },
            factor_report,
            redistribute_report,
        })
    }

    /// Solve `A·X = B` on the virtual machine; returns the solution in the
    /// original (unpermuted) index space plus the solve timing report.
    pub fn solve(&self, b: &DenseMatrix) -> (DenseMatrix, SolveReport) {
        let n = self.factor.n();
        assert_eq!(b.nrows(), n, "rhs must have n rows");
        let nrhs = b.ncols();
        let mut pb = DenseMatrix::zeros(n, nrhs);
        for c in 0..nrhs {
            for i in 0..n {
                pb[(self.perm.apply(i), c)] = b[(i, c)];
            }
        }
        let (px, report) = solve_fb(&self.factor, &self.mapping, &pb, &self.config);
        let mut x = DenseMatrix::zeros(n, nrhs);
        for c in 0..nrhs {
            for i in 0..n {
                x[(i, c)] = px[(self.perm.apply(i), c)];
            }
        }
        (x, report)
    }

    /// The factorization timing (paid once).
    pub fn factor_report(&self) -> &FactorReport {
        &self.factor_report
    }

    /// The 2-D → 1-D redistribution timing (paid once).
    pub fn redistribute_report(&self) -> &RedistributeReport {
        &self.redistribute_report
    }

    /// The factor (permuted index space).
    pub fn factor_matrix(&self) -> &SupernodalFactor {
        &self.factor
    }

    /// The combined fill-reducing + postorder permutation.
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The subtree-to-subcube mapping in use.
    pub fn mapping(&self) -> &SubcubeMapping {
        &self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::nd as gnd;
    use trisolv_matrix::gen;

    #[test]
    fn builds_and_solves_mesh_problem() {
        // big enough that factorization work dominates a solve
        let (kx, ky) = (31, 29);
        let a = gen::grid2d_laplacian(kx, ky);
        let coords = gnd::grid2d_coords(kx, ky, 1);
        let solver =
            ParallelSolver::build(&a, Some(&coords), &ParallelSolverOptions::t3d(8)).unwrap();
        let x_true = gen::random_rhs(a.ncols(), 3, 1);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, report) = solver.solve(&b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
        assert!(report.total_time > 0.0);
        // headline relations hold end to end
        assert!(report.total_time < solver.factor_report().time);
        assert!(solver.redistribute_report().time < solver.factor_report().time);
    }

    #[test]
    fn builds_without_coordinates_via_multilevel_nd() {
        let a = gen::random_spd(120, 4, 2);
        let solver = ParallelSolver::build(&a, None, &ParallelSolverOptions::t3d(4)).unwrap();
        let x_true = gen::random_rhs(120, 1, 3);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, _) = solver.solve(&b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-7);
    }

    #[test]
    fn amalgamation_option_respected() {
        let a = gen::grid2d_laplacian(12, 12);
        let coords = gnd::grid2d_coords(12, 12, 1);
        let plain =
            ParallelSolver::build(&a, Some(&coords), &ParallelSolverOptions::t3d(4)).unwrap();
        let mut opts = ParallelSolverOptions::t3d(4);
        opts.amalgamation = (16, 0.2);
        let fat = ParallelSolver::build(&a, Some(&coords), &opts).unwrap();
        assert!(fat.factor_matrix().nsup() < plain.factor_matrix().nsup());
        // both solve correctly
        let x_true = gen::random_rhs(144, 2, 4);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        assert!(fat.solve(&b).0.max_abs_diff(&x_true).unwrap() < 1e-8);
        assert!(plain.solve(&b).0.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn indefinite_build_errors() {
        let mut a = gen::grid2d_laplacian(6, 6);
        let base = a.colptr()[0];
        a.values_mut()[base] = -4.0;
        assert!(ParallelSolver::build(&a, None, &ParallelSolverOptions::t3d(4)).is_err());
    }
}
