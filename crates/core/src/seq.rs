//! Sequential supernodal triangular solvers and the end-to-end driver.
//!
//! These are the single-processor baselines of every speedup and MFLOPS
//! figure in the paper, and the reference implementations the parallel
//! solvers are validated against **bit-for-bit**. To make that exact,
//! forward elimination uses the *relay* (multifrontal-style) accumulation
//! order: each supernode's below-diagonal update is kept in its own
//! working vector and extend-added into its parent, children in ascending
//! order. A flat global accumulator would fold contributions in an order
//! no tree-parallel executor can reproduce (floating-point addition is not
//! associative); the relay order is reproducible by construction, on any
//! thread count.

use crate::plan::SolvePlan;
use trisolv_factor::{blas, seqchol, FScalar, FactorBlocks, SupernodalFactor, SupernodalFactorF32};
use trisolv_graph::Permutation;
use trisolv_matrix::{CscMatrix, DenseMatrix, MatrixError};

/// Per-supernode arithmetic shared by [`forward`] and
/// [`forward_with_plan`]: dense triangle solve on the top block, then the
/// rectangle update `w_below −= L21 · w_top` (top copied out so the GEMM
/// sees disjoint operand slices). Exactly mirrors the threaded executor's
/// `forward_body`. Generic over the factor's storage scalar; the `f64`
/// instantiation is the pre-generic code verbatim.
fn forward_snode_body<S: FScalar>(
    blk: &[S],
    ns: usize,
    t: usize,
    nrhs: usize,
    w: &mut [S],
    top_copy: &mut [S],
) {
    blas::trsm_lower_left(blk, ns, w, ns, t, nrhs);
    if ns > t {
        for r in 0..nrhs {
            top_copy[r * t..(r + 1) * t].copy_from_slice(&w[r * ns..r * ns + t]);
        }
        blas::gemm_update(
            &mut w[t..],
            ns,
            &blk[t..],
            ns,
            &top_copy[..t * nrhs],
            t,
            ns - t,
            nrhs,
            t,
        );
    }
}

/// Solve `L·Y = B` (forward elimination) over a supernodal factor.
///
/// Walks supernodes leaf-to-root (ascending index — the partition is
/// postordered). For each supernode: gather its right-hand-side rows,
/// extend-add each child's below-diagonal update (children ascending),
/// solve the dense `t×t` triangle, then compute the `(n−t)×t` rectangle's
/// update into the supernode's own working vector for its parent to
/// consume (paper §2.1, relay accumulation order).
pub fn forward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = b.ncols();
    assert_eq!(b.nrows(), n, "rhs must have n rows");
    let nsup = part.nsup();
    let mut y = DenseMatrix::zeros(n, nrhs);
    if nrhs == 0 || n == 0 {
        return y;
    }

    // arena: one full-height working vector per supernode
    let mut off = Vec::with_capacity(nsup + 1);
    let mut rows_total = 0usize;
    let mut max_t = 0usize;
    for s in 0..nsup {
        off.push(rows_total);
        rows_total += part.height(s);
        max_t = max_t.max(part.width(s));
    }
    let mut arena = vec![0.0f64; rows_total * nrhs];
    let mut top_copy = vec![0.0f64; max_t * nrhs];

    // children lists (counting sort over parents keeps them ascending)
    let mut child_ptr = vec![0usize; nsup + 1];
    for s in 0..nsup {
        if let Some(p) = part.parent(s) {
            child_ptr[p + 1] += 1;
        }
    }
    for s in 0..nsup {
        child_ptr[s + 1] += child_ptr[s];
    }
    let mut next = child_ptr.clone();
    let mut child_idx = vec![0usize; child_ptr[nsup]];
    for s in 0..nsup {
        if let Some(p) = part.parent(s) {
            child_idx[next[p]] = s;
            next[p] += 1;
        }
    }
    // position of each global row inside the current supernode's pattern
    let mut pos = vec![0usize; n];

    for s in 0..nsup {
        let rows = part.rows(s);
        let t = part.width(s);
        let ns = rows.len();
        let blk = f.block(s);
        // children sit at lower indices, hence lower arena offsets
        let (done, rest) = arena.split_at_mut(off[s] * nrhs);
        let w = &mut rest[..ns * nrhs];
        for r in 0..nrhs {
            let bc = b.col(r);
            for (k, &gi) in rows[..t].iter().enumerate() {
                w[r * ns + k] = bc[gi];
            }
            w[r * ns + t..(r + 1) * ns].fill(0.0);
        }
        let children = &child_idx[child_ptr[s]..child_ptr[s + 1]];
        if !children.is_empty() {
            for (k, &gi) in rows.iter().enumerate() {
                pos[gi] = k;
            }
            for &c in children {
                let crows = part.rows(c);
                let tc = part.width(c);
                let nsc = crows.len();
                let src_all = &done[off[c] * nrhs..off[c] * nrhs + nsc * nrhs];
                for r in 0..nrhs {
                    let src = &src_all[r * nsc + tc..r * nsc + nsc];
                    let dst = &mut w[r * ns..(r + 1) * ns];
                    for (i, &gi) in crows[tc..].iter().enumerate() {
                        dst[pos[gi]] += src[i];
                    }
                }
            }
        }
        forward_snode_body(blk.as_slice(), ns, t, nrhs, w, &mut top_copy);
        for r in 0..nrhs {
            let yc = y.col_mut(r);
            for (k, &gi) in rows[..t].iter().enumerate() {
                yc[gi] = w[r * ns + k];
            }
        }
    }
    y
}

/// [`forward`] driven by a prebuilt [`SolvePlan`]: the plan's children
/// lists and scatter maps replace the on-the-fly position bookkeeping, so
/// per-solve overhead is just the arena fill. Bit-identical to
/// [`forward`].
pub fn forward_with_plan(f: &SupernodalFactor, plan: &SolvePlan, b: &DenseMatrix) -> DenseMatrix {
    forward_with_plan_any(f, plan, b)
}

/// [`forward_with_plan`] over any storage precision. The right-hand side
/// and output stay `f64`; the per-supernode arithmetic runs in the
/// factor's scalar `F::S`. For `S = f64` the conversions are identities
/// and the result is bit-identical to the pre-generic code; for `S = f32`
/// every published value widens exactly, so re-narrowing downstream (the
/// backward gather) recovers the same bits.
pub fn forward_with_plan_any<F: FactorBlocks>(
    f: &F,
    plan: &SolvePlan,
    b: &DenseMatrix,
) -> DenseMatrix {
    let n = plan.n();
    let nrhs = b.ncols();
    assert_eq!(b.nrows(), n, "rhs must have n rows");
    assert_eq!(f.n(), n, "plan/factor order mismatch");
    let nsup = plan.nsup();
    assert_eq!(f.nsup(), nsup, "plan/factor supernode count mismatch");
    let mut y = DenseMatrix::zeros(n, nrhs);
    if nrhs == 0 || n == 0 {
        return y;
    }

    let mut off = Vec::with_capacity(nsup);
    let mut rows_total = 0usize;
    let mut max_t = 0usize;
    for s in 0..nsup {
        off.push(rows_total);
        rows_total += plan.height(s);
        max_t = max_t.max(plan.width(s));
    }
    let mut arena = vec![F::S::ZERO; rows_total * nrhs];
    let mut top_copy = vec![F::S::ZERO; max_t * nrhs];

    for s in 0..nsup {
        let ns = plan.height(s);
        let cols = plan.cols(s);
        let t = cols.len();
        let blk = f.values(s);
        let (done, rest) = arena.split_at_mut(off[s] * nrhs);
        let w = &mut rest[..ns * nrhs];
        for r in 0..nrhs {
            let bc = &b.col(r)[cols.clone()];
            for (k, &bv) in bc.iter().enumerate() {
                w[r * ns + k] = F::S::from_f64(bv);
            }
            w[r * ns + t..(r + 1) * ns].fill(F::S::ZERO);
        }
        for &c in plan.children(s) {
            let nsc = plan.height(c);
            let tc = plan.width(c);
            let scat = plan.scatter(c);
            let src_all = &done[off[c] * nrhs..off[c] * nrhs + nsc * nrhs];
            for r in 0..nrhs {
                let src = &src_all[r * nsc + tc..r * nsc + nsc];
                let dst = &mut w[r * ns..(r + 1) * ns];
                for (i, &p) in scat.iter().enumerate() {
                    dst[p] += src[i];
                }
            }
        }
        forward_snode_body(blk, ns, t, nrhs, w, &mut top_copy);
        for r in 0..nrhs {
            let yc = &mut y.col_mut(r)[cols.clone()];
            for (k, yv) in yc.iter_mut().enumerate() {
                *yv = w[r * ns + k].to_f64();
            }
        }
    }
    y
}

/// Solve `Lᵀ·X = Y` (back substitution) over a supernodal factor.
///
/// Walks supernodes root-to-leaf (descending index). For each supernode:
/// read the already-solved values for its below-triangle rows, subtract the
/// rectangle product from the top `t` right-hand-side entries, and solve
/// the transposed dense triangle (paper §2.2).
pub fn backward(f: &SupernodalFactor, y: &DenseMatrix) -> DenseMatrix {
    backward_any(f, y)
}

/// [`backward`] over any storage precision. Solved values ride in the
/// `f64` output; the rectangle gather re-narrows them with `from_f64`,
/// which is exact for values that originated in `F::S` — so the narrow
/// lane is as deterministic as the wide one, and the `f64` instantiation
/// is bit-identical to the pre-generic code.
pub fn backward_any<F: FactorBlocks>(f: &F, y: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = y.ncols();
    assert_eq!(y.nrows(), n, "rhs must have n rows");
    let mut x = DenseMatrix::zeros(n, nrhs);

    let max_h = (0..part.nsup()).map(|s| part.height(s)).max().unwrap_or(0);
    let max_b = (0..part.nsup())
        .map(|s| part.height(s) - part.width(s))
        .max()
        .unwrap_or(0);
    let mut work = vec![F::S::ZERO; max_h * nrhs];
    let mut below = vec![F::S::ZERO; max_b * nrhs];

    for s in (0..part.nsup()).rev() {
        let rows = part.rows(s);
        let t = part.width(s);
        let ns = rows.len();
        let blk = f.values(s);
        // w_top = y[cols]; w_top -= L21ᵀ · x[below]
        for r in 0..nrhs {
            let yc = y.col(r);
            let wc = &mut work[r * max_h..];
            for (k, &gi) in rows[..t].iter().enumerate() {
                wc[k] = F::S::from_f64(yc[gi]);
            }
        }
        if ns > t {
            // Gather the (already solved) below-rows once, then apply the
            // rectangle with the blocked kernel. Each inner product keeps
            // the scalar loop's single-accumulator ascending-row order, so
            // the bits are unchanged — but the narrowing conversion runs
            // once per row instead of once per (row, column), and the
            // kernel's register blocking gives the dots four-way ILP.
            let nb = ns - t;
            for r in 0..nrhs {
                let xc = x.col(r);
                let bl = &mut below[r * nb..(r + 1) * nb];
                for (i, &gi) in rows[t..].iter().enumerate() {
                    bl[i] = F::S::from_f64(xc[gi]);
                }
            }
            blas::gemm_tn_update(
                &mut work,
                max_h,
                &blk[t..],
                ns,
                &below[..nb * nrhs],
                nb,
                t,
                nrhs,
                nb,
            );
        }
        // solve L11ᵀ x_top = w_top
        blas::trsm_lower_trans_left(blk, ns, &mut work, max_h, t, nrhs);
        for r in 0..nrhs {
            let xc = x.col_mut(r);
            let wc = &work[r * max_h..];
            for (k, &gi) in rows[..t].iter().enumerate() {
                xc[gi] = wc[k].to_f64();
            }
        }
    }
    x
}

/// Forward + backward solve in the permuted index space.
pub fn forward_backward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let y = forward(f, b);
    backward(f, &y)
}

/// Simplicial forward elimination on a CSC lower-triangular factor
/// (`L·Y = B`, diagonal stored). The column-at-a-time baseline the
/// supernodal kernels are measured against.
pub fn forward_csc(l: &CscMatrix, b: &DenseMatrix) -> DenseMatrix {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(b.nrows(), n);
    let mut y = b.clone();
    for c in 0..b.ncols() {
        let col = y.col_mut(c);
        for j in 0..n {
            let rows = l.col_rows(j);
            let vals = l.col_values(j);
            debug_assert_eq!(rows[0], j, "missing diagonal");
            let xj = col[j] / vals[0];
            col[j] = xj;
            if xj != 0.0 {
                for (k, &i) in rows.iter().enumerate().skip(1) {
                    col[i] -= vals[k] * xj;
                }
            }
        }
    }
    y
}

/// Simplicial back substitution on a CSC lower-triangular factor
/// (`Lᵀ·X = Y`).
pub fn backward_csc(l: &CscMatrix, y: &DenseMatrix) -> DenseMatrix {
    let n = l.ncols();
    assert_eq!(y.nrows(), n);
    let mut x = y.clone();
    for c in 0..y.ncols() {
        let col = x.col_mut(c);
        for j in (0..n).rev() {
            let rows = l.col_rows(j);
            let vals = l.col_values(j);
            let mut s = col[j];
            for (k, &i) in rows.iter().enumerate().skip(1) {
                s -= vals[k] * col[i];
            }
            col[j] = s / vals[0];
        }
    }
    x
}

/// Solve `L·D·Lᵀ·X = B` from a simplicial LDLᵀ factorization (unit-lower
/// `L` in CSC form, diagonal `D`).
pub fn solve_ldlt_csc(l: &CscMatrix, d: &[f64], b: &DenseMatrix) -> DenseMatrix {
    let n = l.ncols();
    assert_eq!(d.len(), n);
    let mut z = forward_csc(l, b);
    for c in 0..z.ncols() {
        let col = z.col_mut(c);
        for j in 0..n {
            col[j] /= d[j];
        }
    }
    // Lᵀ x = z with unit diagonal: reuse backward_csc (diagonal is 1)
    backward_csc(l, &z)
}

/// End-to-end sequential sparse SPD solver: ordering + symbolic +
/// factorization are done once at construction, after which any number of
/// right-hand-side blocks can be solved.
///
/// ```
/// use trisolv_core::SparseCholeskySolver;
/// use trisolv_matrix::gen;
///
/// let a = gen::grid2d_laplacian(10, 10);
/// let solver = SparseCholeskySolver::factor(&a).unwrap();
/// let x_true = gen::random_rhs(100, 2, 7);
/// let b = a.spmv_sym_lower(&x_true).unwrap();
/// let x = solver.solve(&b);
/// assert!(x.max_abs_diff(&x_true).unwrap() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholeskySolver {
    perm: Permutation,
    factor: SupernodalFactor,
    plan: SolvePlan,
}

impl SparseCholeskySolver {
    /// Factor a symmetric positive-definite matrix (lower triangle) under a
    /// caller-chosen fill-reducing permutation.
    pub fn factor_with_perm(a: &CscMatrix, fill_perm: &Permutation) -> Result<Self, MatrixError> {
        Self::factor_with_perm_opts(a, fill_perm, seqchol::FactorOptions::default())
    }

    /// [`Self::factor_with_perm`] with an explicit factorization policy
    /// (e.g. dynamic regularization for matrices that are not numerically
    /// positive definite).
    pub fn factor_with_perm_opts(
        a: &CscMatrix,
        fill_perm: &Permutation,
        opts: seqchol::FactorOptions,
    ) -> Result<Self, MatrixError> {
        let an = seqchol::analyze_with_perm(a, fill_perm);
        let factor = seqchol::factor_supernodal_opts(&an.pa, &an.part, opts)?;
        let plan = SolvePlan::new(factor.partition())
            .expect("internally built factors have nested supernode structure");
        Ok(SparseCholeskySolver {
            perm: an.perm,
            factor,
            plan,
        })
    }

    /// Factor with a nested-dissection ordering computed from the matrix
    /// graph (the default choice; the paper's analysis assumes it).
    pub fn factor(a: &CscMatrix) -> Result<Self, MatrixError> {
        Self::factor_opts(a, seqchol::FactorOptions::default())
    }

    /// [`Self::factor`] with an explicit factorization policy.
    pub fn factor_opts(a: &CscMatrix, opts: seqchol::FactorOptions) -> Result<Self, MatrixError> {
        let g = trisolv_graph::Graph::from_sym_lower(a);
        let p = trisolv_graph::nd::nested_dissection(&g, trisolv_graph::nd::NdOptions::default());
        Self::factor_with_perm_opts(a, &p, opts)
    }

    /// Rebuild a solver from a matrix plus the flat numeric factor values a
    /// snapshot persisted: the per-supernode trapezoids of a solver built
    /// by [`Self::factor`], concatenated in supernode order
    /// (`block(0).as_slice() ++ block(1).as_slice() ++ …`).
    ///
    /// Re-runs the deterministic symbolic pipeline — nested dissection,
    /// supernode analysis, plan construction — and skips only the numeric
    /// factorization, so the rebuilt solver is bit-identical to the one the
    /// values were taken from: the permutation, partition, and plan are
    /// pure functions of the matrix structure, and the values are restored
    /// verbatim. Fails with `InvalidStructure` when the value count does
    /// not match the partition the matrix analyzes to (a stale or foreign
    /// snapshot).
    pub fn from_factor_values(
        a: &CscMatrix,
        values: &[f64],
        perturbations: Vec<(usize, f64)>,
    ) -> Result<Self, MatrixError> {
        let g = trisolv_graph::Graph::from_sym_lower(a);
        let p = trisolv_graph::nd::nested_dissection(&g, trisolv_graph::nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(a, &p);
        let total: usize = (0..an.part.nsup())
            .map(|s| an.part.height(s) * an.part.width(s))
            .sum();
        if total != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "persisted factor has {} values but the matrix analyzes to {}",
                values.len(),
                total
            )));
        }
        let mut off = 0usize;
        let mut blocks = Vec::with_capacity(an.part.nsup());
        for s in 0..an.part.nsup() {
            let len = an.part.height(s) * an.part.width(s);
            blocks.push(DenseMatrix::from_column_major(
                an.part.height(s),
                an.part.width(s),
                values[off..off + len].to_vec(),
            )?);
            off += len;
        }
        let mut factor = SupernodalFactor::new(an.part, blocks);
        factor.set_perturbations(perturbations);
        let plan = SolvePlan::new(factor.partition())
            .expect("internally built factors have nested supernode structure");
        Ok(SparseCholeskySolver {
            perm: an.perm,
            factor,
            plan,
        })
    }

    /// The combined permutation (fill-reducing ∘ postorder).
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The supernodal factor (in the permuted index space).
    pub fn factor_matrix(&self) -> &SupernodalFactor {
        &self.factor
    }

    /// Mutable access to the factor. Exists for integrity drills (flipping
    /// factor bits to simulate silent corruption) and tests; normal solves
    /// never mutate the factor.
    pub fn factor_matrix_mut(&mut self) -> &mut SupernodalFactor {
        &mut self.factor
    }

    /// The solve plan built for the factor at construction time.
    pub fn plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// Solve `A·X = B` with iterative refinement: after the direct solve,
    /// up to `max_iters` residual-correction sweeps
    /// (`r = B − A·X; X += A⁻¹·r`) run until the relative residual drops
    /// below `tol`. Returns the solution and the final relative residual.
    ///
    /// Refinement needs the original matrix (the factor alone cannot form
    /// residuals), so `a` must be the matrix this solver was built from.
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &DenseMatrix,
        max_iters: usize,
        tol: f64,
    ) -> (DenseMatrix, f64) {
        let mut x = self.solve(b);
        let bnorm = b.norm_max().max(f64::MIN_POSITIVE);
        let mut rel = f64::INFINITY;
        for _ in 0..max_iters {
            let ax = a.spmv_sym_lower(&x).expect("matching dimensions");
            let mut r = b.clone();
            r.axpy(-1.0, &ax).expect("same shape");
            rel = r.norm_max() / bnorm;
            if rel <= tol {
                break;
            }
            let dx = self.solve(&r);
            x.axpy(1.0, &dx).expect("same shape");
        }
        if rel.is_infinite() {
            // max_iters == 0: report the unrefined residual
            let ax = a.spmv_sym_lower(&x).expect("matching dimensions");
            let mut r = b.clone();
            r.axpy(-1.0, &ax).expect("same shape");
            rel = r.norm_max() / bnorm;
        }
        (x, rel)
    }

    /// Solve `A·X = B` for a dense right-hand-side block.
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let n = self.factor.n();
        assert_eq!(b.nrows(), n);
        let nrhs = b.ncols();
        // permute rhs: pb[perm[i]] = b[i]
        let mut pb = DenseMatrix::zeros(n, nrhs);
        for r in 0..nrhs {
            let src = b.col(r);
            let dst = pb.col_mut(r);
            for i in 0..n {
                dst[self.perm.apply(i)] = src[i];
            }
        }
        let py = forward_with_plan(&self.factor, &self.plan, &pb);
        let px = backward(&self.factor, &py);
        // unpermute: x[i] = px[perm[i]]
        let mut x = DenseMatrix::zeros(n, nrhs);
        for r in 0..nrhs {
            let src = px.col(r);
            let dst = x.col_mut(r);
            for i in 0..n {
                dst[i] = src[self.perm.apply(i)];
            }
        }
        x
    }

    /// Demote the solver's factor to `f32` storage, keeping the
    /// permutation and solve plan (both precision-independent). The `f64`
    /// factor is not retained — the caller decides whether to keep it
    /// (mixed-precision refinement only needs the original matrix).
    pub fn demote(&self) -> SparseCholeskySolverF32 {
        SparseCholeskySolverF32 {
            perm: self.perm.clone(),
            factor: self.factor.demote(),
            plan: self.plan.clone(),
        }
    }
}

/// [`SparseCholeskySolver`] with the factor stored in `f32`: half the
/// factor bytes per solve sweep on the bandwidth-bound substitution path.
/// Built by [`SparseCholeskySolver::demote`] (factorization always runs
/// in `f64`) or rebuilt from a persisted snapshot via
/// [`Self::from_factor_values`]. A direct solve carries roughly
/// single-precision accuracy; `refine::refine_mixed` certifies it back to
/// the `f64` ω ≤ target standard against the retained matrix.
#[derive(Debug, Clone)]
pub struct SparseCholeskySolverF32 {
    perm: Permutation,
    factor: SupernodalFactorF32,
    plan: SolvePlan,
}

impl SparseCholeskySolverF32 {
    /// Rebuild from a matrix plus the flat persisted `f32` factor values
    /// (the f32 counterpart of
    /// [`SparseCholeskySolver::from_factor_values`]): re-runs the
    /// deterministic symbolic pipeline and restores the values verbatim,
    /// so the rebuilt solver answers bit-identically to the one the
    /// snapshot was taken from.
    pub fn from_factor_values(
        a: &CscMatrix,
        values: &[f32],
        perturbations: Vec<(usize, f64)>,
    ) -> Result<Self, MatrixError> {
        let g = trisolv_graph::Graph::from_sym_lower(a);
        let p = trisolv_graph::nd::nested_dissection(&g, trisolv_graph::nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(a, &p);
        let factor = SupernodalFactorF32::from_flat_values(an.part, values, perturbations)?;
        let plan = SolvePlan::new(factor.partition())
            .expect("internally built factors have nested supernode structure");
        Ok(SparseCholeskySolverF32 {
            perm: an.perm,
            factor,
            plan,
        })
    }

    /// The combined permutation (fill-reducing ∘ postorder).
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// The f32 supernodal factor (in the permuted index space).
    pub fn factor_matrix(&self) -> &SupernodalFactorF32 {
        &self.factor
    }

    /// Mutable factor access for integrity drills; normal solves never
    /// mutate the factor.
    pub fn factor_matrix_mut(&mut self) -> &mut SupernodalFactorF32 {
        &mut self.factor
    }

    /// The solve plan (structure shared with the f64 solver).
    pub fn plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// Solve `A·X ≈ B` through the f32 factor. Input and output are `f64`;
    /// all per-supernode arithmetic runs in `f32`. Deterministic: the same
    /// `b` always yields the same bits.
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let n = self.factor.n();
        assert_eq!(b.nrows(), n);
        let nrhs = b.ncols();
        let mut pb = DenseMatrix::zeros(n, nrhs);
        for r in 0..nrhs {
            let src = b.col(r);
            let dst = pb.col_mut(r);
            for i in 0..n {
                dst[self.perm.apply(i)] = src[i];
            }
        }
        let py = forward_with_plan_any(&self.factor, &self.plan, &pb);
        let px = backward_any(&self.factor, &py);
        let mut x = DenseMatrix::zeros(n, nrhs);
        for r in 0..nrhs {
            let src = px.col(r);
            let dst = x.col_mut(r);
            for i in 0..n {
                dst[i] = src[self.perm.apply(i)];
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    fn factor_grid(k: usize) -> SupernodalFactor {
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let p =
            nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default());
        let an = analyze_with_perm(&a, &p);
        factor_supernodal(&an.pa, &an.part).unwrap()
    }

    #[test]
    fn from_factor_values_rebuilds_bit_identical_solver() {
        let a = gen::grid2d_laplacian(9, 9);
        let original = SparseCholeskySolver::factor(&a).unwrap();
        let f = original.factor_matrix();
        let mut values = Vec::new();
        for s in 0..f.nsup() {
            values.extend_from_slice(f.block(s).as_slice());
        }
        let rebuilt =
            SparseCholeskySolver::from_factor_values(&a, &values, f.perturbations().to_vec())
                .unwrap();
        let b = gen::random_rhs(81, 3, 5);
        assert_eq!(
            original.solve(&b).as_slice(),
            rebuilt.solve(&b).as_slice(),
            "recovered solver must answer bit-identically"
        );
        // wrong value count is a structured error, not a panic
        let err = SparseCholeskySolver::from_factor_values(&a, &values[..values.len() - 1], vec![]);
        assert!(matches!(err, Err(MatrixError::InvalidStructure(_))));
    }

    #[test]
    fn demoted_solver_solves_to_f32_accuracy() {
        for (name, a) in [
            ("grid2d", gen::grid2d_laplacian(9, 7)),
            ("grid3d", gen::grid3d_laplacian(4, 4, 4)),
            ("fem2d", gen::fem2d(5, 4, 3)),
        ] {
            let n = a.ncols();
            let solver = SparseCholeskySolver::factor(&a).unwrap();
            let s32 = solver.demote();
            let x_true = gen::random_rhs(n, 2, 7);
            let b = a.spmv_sym_lower(&x_true).unwrap();
            let x = s32.solve(&b);
            let err = x.max_abs_diff(&x_true).unwrap();
            assert!(err < 1e-3, "{name}: f32-lane error {err}");
            // deterministic: same rhs, same bits
            assert_eq!(x.as_slice(), s32.solve(&b).as_slice(), "{name}");
        }
    }

    #[test]
    fn f32_from_factor_values_rebuilds_bit_identical_solver() {
        let a = gen::grid2d_laplacian(9, 9);
        let s32 = SparseCholeskySolver::factor(&a).unwrap().demote();
        let f = s32.factor_matrix();
        let mut values = Vec::new();
        for s in 0..f.nsup() {
            values.extend_from_slice(f.values(s));
        }
        let rebuilt =
            SparseCholeskySolverF32::from_factor_values(&a, &values, f.perturbations().to_vec())
                .unwrap();
        let b = gen::random_rhs(81, 3, 5);
        assert_eq!(
            s32.solve(&b).as_slice(),
            rebuilt.solve(&b).as_slice(),
            "recovered f32 solver must answer bit-identically"
        );
        let err =
            SparseCholeskySolverF32::from_factor_values(&a, &values[..values.len() - 1], vec![]);
        assert!(matches!(err, Err(MatrixError::InvalidStructure(_))));
    }

    #[test]
    fn forward_inverts_l() {
        let f = factor_grid(7);
        let n = f.n();
        let x_true = gen::random_rhs(n, 3, 1);
        let b = f.l_times(&x_true);
        let y = forward(&f, &b);
        assert!(y.max_abs_diff(&x_true).unwrap() < 1e-10);
    }

    #[test]
    fn forward_with_plan_bit_identical_to_forward() {
        for (f, nrhs) in [
            (factor_grid(9), 1usize),
            (factor_grid(9), 5),
            (factor_grid(1), 2),
        ] {
            let plan = SolvePlan::new(f.partition()).unwrap();
            let b = gen::random_rhs(f.n(), nrhs, 17);
            let plain = forward(&f, &b);
            let planned = forward_with_plan(&f, &plan, &b);
            assert_eq!(plain.as_slice(), planned.as_slice());
        }
    }

    #[test]
    fn backward_inverts_lt() {
        let f = factor_grid(7);
        let n = f.n();
        let x_true = gen::random_rhs(n, 2, 2);
        let l = f.to_csc();
        let b = l.transpose().spmv(&x_true).unwrap();
        let x = backward(&f, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-10);
    }

    #[test]
    fn forward_backward_solves_permuted_system() {
        let f = factor_grid(8);
        let n = f.n();
        let x_true = gen::random_rhs(n, 4, 3);
        let b = f.llt_times(&x_true);
        let x = forward_backward(&f, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-9);
    }

    #[test]
    fn driver_solves_original_system() {
        for (name, a) in [
            ("grid2d", gen::grid2d_laplacian(9, 7)),
            ("grid3d", gen::grid3d_laplacian(4, 4, 4)),
            ("fem2d", gen::fem2d(5, 4, 3)),
            ("random", gen::random_spd(80, 4, 7)),
        ] {
            let n = a.ncols();
            let solver = SparseCholeskySolver::factor(&a).unwrap();
            let x_true = gen::random_rhs(n, 3, 11);
            let b = a.spmv_sym_lower(&x_true).unwrap();
            let x = solver.solve(&b);
            assert!(
                x.max_abs_diff(&x_true).unwrap() < 1e-7,
                "{name}: error {}",
                x.max_abs_diff(&x_true).unwrap()
            );
        }
    }

    #[test]
    fn driver_multiple_solves_reuse_factor() {
        let a = gen::grid2d_laplacian(6, 6);
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        for seed in 0..3 {
            let x_true = gen::random_rhs(36, 1, seed);
            let b = a.spmv_sym_lower(&x_true).unwrap();
            let x = solver.solve(&b);
            assert!(x.max_abs_diff(&x_true).unwrap() < 1e-9);
        }
    }

    #[test]
    fn single_rhs_matches_multi_rhs_column() {
        let f = factor_grid(6);
        let n = f.n();
        let b = gen::random_rhs(n, 3, 5);
        let y_all = forward(&f, &b);
        for r in 0..3 {
            let br = DenseMatrix::column_vector(b.col(r));
            let yr = forward(&f, &br);
            for i in 0..n {
                assert_eq!(yr[(i, 0)], y_all[(i, r)], "rhs {r} row {i}");
            }
        }
    }

    #[test]
    fn iterative_refinement_tightens_residual() {
        let a = gen::fem3d(4, 3, 3, 2);
        let n = a.ncols();
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        let x_true = gen::random_rhs(n, 2, 4);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, rel) = solver.solve_refined(&a, &b, 3, 1e-14);
        assert!(rel < 1e-12, "relative residual {rel}");
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-9);
        // zero iterations still reports the plain-solve residual
        let (_, rel0) = solver.solve_refined(&a, &b, 0, 0.0);
        assert!(rel0.is_finite() && rel0 < 1e-8);
    }

    #[test]
    fn csc_solvers_match_supernodal() {
        let a = gen::grid2d_laplacian(8, 7);
        let an = analyze_with_perm(&a, &Permutation::identity(56));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let l_csc = trisolv_factor::seqchol::factor_simplicial(&an.pa, &an.sym).unwrap();
        let b = gen::random_rhs(56, 2, 8);
        let y_sn = forward(&f, &b);
        let y_csc = forward_csc(&l_csc, &b);
        assert!(y_sn.max_abs_diff(&y_csc).unwrap() < 1e-11);
        let x_sn = backward(&f, &y_sn);
        let x_csc = backward_csc(&l_csc, &y_csc);
        assert!(x_sn.max_abs_diff(&x_csc).unwrap() < 1e-10);
    }

    #[test]
    fn ldlt_solves_spd_system() {
        let a = gen::fem2d(5, 4, 2);
        let n = a.ncols();
        let an = analyze_with_perm(&a, &Permutation::identity(n));
        let (l, d) = trisolv_factor::seqchol::factor_simplicial_ldlt(&an.pa, &an.sym).unwrap();
        assert!(d.iter().all(|&v| v > 0.0), "SPD gives positive D");
        let x_true = gen::random_rhs(n, 3, 9);
        let b = an.pa.spmv_sym_lower(&x_true).unwrap();
        let x = solve_ldlt_csc(&l, &d, &b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn ldlt_matches_cholesky_solution() {
        let a = gen::random_spd(50, 3, 12);
        let an = analyze_with_perm(&a, &Permutation::identity(50));
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let (l, d) = trisolv_factor::seqchol::factor_simplicial_ldlt(&an.pa, &an.sym).unwrap();
        let b = gen::random_rhs(50, 1, 13);
        let x_chol = forward_backward(&f, &b);
        let x_ldlt = solve_ldlt_csc(&l, &d, &b);
        assert!(x_chol.max_abs_diff(&x_ldlt).unwrap() < 1e-9);
    }

    #[test]
    fn identity_factor_passthrough() {
        // a diagonal matrix: L = sqrt(D); forward/backward just scale
        let mut t = trisolv_matrix::TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 4.0).unwrap();
        }
        let a = t.to_csc();
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        let b = DenseMatrix::column_vector(&[4.0, 8.0, 12.0, 16.0, 20.0]);
        let x = solver.solve(&b);
        let expect = DenseMatrix::column_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(x.max_abs_diff(&expect).unwrap() < 1e-12);
    }
}
