//! Certified solves: iterative refinement with a componentwise
//! backward-error certificate.
//!
//! A direct solve returns *some* `x`; this module turns it into a
//! **certified** answer. After the triangular solves, refinement forms the
//! true residual `r = b − A·x` against the original matrix, measures the
//! componentwise (Oettli–Prager) backward error
//!
//! ```text
//! ω = max_i |r_i| / (|A|·|x| + |b|)_i
//! ```
//!
//! and, while ω is above the target, corrects `x += A⁻¹·r` using the
//! already-computed factor — each sweep costs one symmetric SpMV plus one
//! extra forward/backward solve on the cached [`crate::plan::SolvePlan`],
//! nothing is refactored. ω ≤ target means `x` exactly solves a system
//! whose entries are within a relative `ω` of `(A, b)`: a certificate, not
//! a heuristic. Refinement is what makes dynamic regularization safe: the
//! factor of `A + Σδ_j·e_j·e_jᵀ` is only a preconditioner here, and the
//! residual is always measured against the *unperturbed* `A`.
//!
//! The full pipeline ([`certified_solve`]) optionally equilibrates first
//! (`D·A·D`, see [`trisolv_matrix::equilibrate_sym`]); the componentwise
//! backward error is invariant under that symmetric scaling (the residual
//! and the denominator both pick up the same row factor `D`), so the ω
//! reported for the scaled system *is* the ω of the original one.

use crate::estimate;
use crate::seq::{SparseCholeskySolver, SparseCholeskySolverF32};
use trisolv_factor::seqchol::FactorOptions;
use trisolv_matrix::{equilibrate_sym, validate_finite, CscMatrix, DenseMatrix, MatrixError};

/// Stopping policy for the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Maximum number of correction sweeps (each one SpMV + one solve).
    pub max_iters: usize,
    /// Componentwise backward error at or below which the solve is
    /// **certified**.
    pub target: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_iters: 20,
            target: 1e-10,
        }
    }
}

/// What a (possibly refined) solve achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Correction sweeps actually applied (0 = the direct solve already
    /// met the target, or refinement could not improve it).
    pub iterations: usize,
    /// Final componentwise backward error ω of the returned solution.
    pub backward_error: f64,
    /// `backward_error <= target`: the solution is certified. When
    /// `false` the result is still the best iterate found — a structured
    /// *NotCertified* outcome, never a silent bad answer.
    pub certified: bool,
    /// ω after the direct solve and after each *accepted* correction, in
    /// order; non-increasing by construction (a sweep that fails to
    /// improve ω is discarded and stops the loop).
    pub omega_history: Vec<f64>,
    /// Diagonal boosts the (regularized) factorization applied; `0` for a
    /// plain factor.
    pub perturbations: usize,
    /// `dmax/dmin` of the equilibration scaling, when scaling ran.
    pub scaling_ratio: Option<f64>,
    /// 1-norm condition estimate `κ₁(A)`, when requested.
    pub condition_estimate: Option<f64>,
}

/// Componentwise (Oettli–Prager) backward error of `x` for `A·x = b`:
/// `max_i |b − A·x|_i / (|A|·|x| + |b|)_i`, maximized over all
/// right-hand-side columns. A zero residual component contributes 0 even
/// where the denominator vanishes; a nonzero residual over a zero
/// denominator is `+∞` (no perturbation of `(A, b)` explains it).
pub fn componentwise_backward_error(
    a: &CscMatrix,
    x: &DenseMatrix,
    b: &DenseMatrix,
) -> Result<f64, MatrixError> {
    let r = a.residual_sym_lower(x, b)?;
    let denom = a.spmv_sym_lower_abs(x)?;
    let mut omega = 0.0f64;
    for ((&ri, &di), &bi) in r.as_slice().iter().zip(denom.as_slice()).zip(b.as_slice()) {
        let d = di + bi.abs();
        let w = if ri == 0.0 {
            0.0
        } else if d == 0.0 {
            f64::INFINITY
        } else {
            ri.abs() / d
        };
        omega = omega.max(w);
    }
    Ok(omega)
}

/// Iteratively refine `solver.solve(b)` against the original matrix `a`
/// until the componentwise backward error meets `opts.target`, the sweep
/// budget runs out, or refinement stagnates (a sweep that fails to halve ω
/// — or worsens it — ends the loop; a worsening iterate is discarded).
///
/// `a` must be the matrix the solver was factored from — or, for a
/// regularized factor, the *unperturbed* original: the residual test is
/// what compensates for the recorded diagonal boosts.
pub fn refine(
    solver: &SparseCholeskySolver,
    a: &CscMatrix,
    b: &DenseMatrix,
    opts: &RefineOptions,
) -> Result<(DenseMatrix, SolveReport), MatrixError> {
    validate_finite("rhs", b.as_slice())?;
    let mut x = solver.solve(b);
    let mut omega = componentwise_backward_error(a, &x, b)?;
    let mut history = vec![omega];
    let mut iterations = 0usize;
    while omega > opts.target && iterations < opts.max_iters && omega.is_finite() {
        let r = a.residual_sym_lower(&x, b)?;
        let dx = solver.solve(&r);
        let mut xn = x.clone();
        xn.axpy(1.0, &dx).expect("same shape");
        let on = componentwise_backward_error(a, &xn, b)?;
        // NaN-safe "failed to improve" test: a NaN ω also ends the loop
        if on.partial_cmp(&omega) != Some(std::cmp::Ordering::Less) {
            // no progress: keep the previous (better) iterate
            break;
        }
        x = xn;
        let stagnated = on > 0.5 * omega;
        omega = on;
        history.push(omega);
        iterations += 1;
        if stagnated {
            break;
        }
    }
    let certified = omega <= opts.target;
    Ok((
        x,
        SolveReport {
            iterations,
            backward_error: omega,
            certified,
            omega_history: history,
            perturbations: solver.factor_matrix().perturbations().len(),
            scaling_ratio: None,
            condition_estimate: None,
        },
    ))
}

/// Iteratively refine against the original `f64` matrix using a **demoted
/// `f32` factor** for every triangular solve — the mixed-precision hot
/// path. Residuals are always formed in `f64` against `a`; only the
/// `A⁻¹`-application runs in the narrow lane.
///
/// Unlike [`refine`], the first correction sweep is applied
/// *unconditionally*: an `f32` direct solve carries ~`1e-7` relative
/// error and never meets a `1e-10` componentwise target, so measuring ω
/// before the first sweep only buys two wasted SpMVs. `omega_history`
/// therefore starts at the ω *after* the first sweep and `iterations`
/// counts that sweep (it is ≥ 1 on every call).
///
/// A result with `report.certified == false` means the narrow factor
/// cannot carry the refinement to the target (severe ill-conditioning:
/// `κ(A)·ε_f32 ≳ 1`); callers fall back to an `f64` refactorization — see
/// [`certified_solve_mixed`]. Never a panic, never a silent bad answer.
pub fn refine_mixed(
    solver: &SparseCholeskySolverF32,
    a: &CscMatrix,
    b: &DenseMatrix,
    opts: &RefineOptions,
) -> Result<(DenseMatrix, SolveReport), MatrixError> {
    validate_finite("rhs", b.as_slice())?;
    let mut x = solver.solve(b);
    let r = a.residual_sym_lower(&x, b)?;
    let dx = solver.solve(&r);
    x.axpy(1.0, &dx).expect("same shape");
    let mut omega = componentwise_backward_error(a, &x, b)?;
    let mut history = vec![omega];
    let mut iterations = 1usize;
    while omega > opts.target && iterations < opts.max_iters && omega.is_finite() {
        let r = a.residual_sym_lower(&x, b)?;
        let dx = solver.solve(&r);
        let mut xn = x.clone();
        xn.axpy(1.0, &dx).expect("same shape");
        let on = componentwise_backward_error(a, &xn, b)?;
        // NaN-safe "failed to improve" test: a NaN ω also ends the loop
        if on.partial_cmp(&omega) != Some(std::cmp::Ordering::Less) {
            break;
        }
        x = xn;
        let stagnated = on > 0.5 * omega;
        omega = on;
        history.push(omega);
        iterations += 1;
        if stagnated {
            break;
        }
    }
    let certified = omega <= opts.target;
    Ok((
        x,
        SolveReport {
            iterations,
            backward_error: omega,
            certified,
            omega_history: history,
            perturbations: solver.factor_matrix().perturbations().len(),
            scaling_ratio: None,
            condition_estimate: None,
        },
    ))
}

/// Policy for the end-to-end certified pipeline ([`certified_solve`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifyOptions {
    /// Symmetrically equilibrate (`D·A·D`) before factoring.
    pub scale: bool,
    /// Dynamic regularization: boost breakdown pivots instead of failing.
    pub regularize: bool,
    /// Pivot floor is `beta · max|a_ij|` when regularizing.
    pub beta: f64,
    /// Also compute a Hager–Higham 1-norm condition estimate (costs a few
    /// extra solves).
    pub condition: bool,
    /// Refinement stopping policy.
    pub refine: RefineOptions,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            scale: false,
            regularize: false,
            beta: f64::EPSILON,
            condition: false,
            refine: RefineOptions::default(),
        }
    }
}

/// A certified (or best-effort, with `report.certified == false`)
/// solution.
#[derive(Debug, Clone)]
pub struct CertifiedSolve {
    /// The solution in the original (unscaled) variables.
    pub x: DenseMatrix,
    /// What the pipeline did and how good the answer is.
    pub report: SolveReport,
}

/// End-to-end certified solve of `A·X = B`: optionally equilibrate,
/// factor (optionally with dynamic regularization), then iteratively
/// refine to a componentwise backward-error certificate.
///
/// Every outcome is structured: numerical breakdown without
/// `regularize` surfaces as [`MatrixError::NotPositiveDefinite`], and a
/// solve that cannot reach the target returns normally with
/// `report.certified == false` — never a panic, never a silently bad
/// answer.
pub fn certified_solve(
    a: &CscMatrix,
    b: &DenseMatrix,
    opts: &CertifyOptions,
) -> Result<CertifiedSolve, MatrixError> {
    validate_finite("rhs", b.as_slice())?;
    let scaling = if opts.scale {
        Some(equilibrate_sym(a)?)
    } else {
        validate_finite("matrix values", a.values())?;
        None
    };
    let work_a = scaling.as_ref().map_or(a, |s| &s.scaled);
    let fopts = FactorOptions {
        regularize: opts.regularize,
        beta: opts.beta,
    };
    let solver = SparseCholeskySolver::factor_opts(work_a, fopts)?;
    let work_b = match &scaling {
        Some(s) => s.scale_rhs(b)?,
        None => b.clone(),
    };
    let (xs, mut report) = refine(&solver, work_a, &work_b, &opts.refine)?;
    report.scaling_ratio = scaling.as_ref().map(|s| s.ratio());
    if opts.condition {
        report.condition_estimate =
            Some(estimate::condition_estimate(work_a, solver.factor_matrix()));
    }
    let x = match &scaling {
        Some(s) => s.unscale_solution(&xs)?,
        None => xs,
    };
    Ok(CertifiedSolve { x, report })
}

/// A certified solution from the mixed-precision pipeline
/// ([`certified_solve_mixed`]).
#[derive(Debug, Clone)]
pub struct MixedSolve {
    /// The solution in the original (unscaled) variables.
    pub x: DenseMatrix,
    /// What the pipeline did and how good the answer is. When
    /// `fell_back` is set this reports the `f64` lane that produced the
    /// answer, not the abandoned `f32` attempt.
    pub report: SolveReport,
    /// `true` when the `f32` lane stagnated short of the certificate and
    /// the pipeline transparently refactored in `f64`. A fallback is a
    /// counted outcome, never an error.
    pub fell_back: bool,
}

/// End-to-end **mixed-precision** certified solve of `A·X = B`: factor in
/// `f64`, demote the factor to `f32` (halving the resident bytes the
/// solve streams), then run [`refine_mixed`] — `f32` triangular solves,
/// `f64` residuals — to the same componentwise certificate as
/// [`certified_solve`]. If the narrow lane stagnates short of the target,
/// the pipeline transparently refactors in `f64` and refines there
/// (`fell_back = true`); the caller always gets either a certified answer
/// or an honest `certified == false` report from the wide lane.
///
/// The `f64` factor is dropped as soon as it is demoted — deliberately
/// mirroring cache residency in the server tier, where only the narrow
/// factor stays resident and a fallback really does refactor.
pub fn certified_solve_mixed(
    a: &CscMatrix,
    b: &DenseMatrix,
    opts: &CertifyOptions,
) -> Result<MixedSolve, MatrixError> {
    validate_finite("rhs", b.as_slice())?;
    let scaling = if opts.scale {
        Some(equilibrate_sym(a)?)
    } else {
        validate_finite("matrix values", a.values())?;
        None
    };
    let work_a = scaling.as_ref().map_or(a, |s| &s.scaled);
    let fopts = FactorOptions {
        regularize: opts.regularize,
        beta: opts.beta,
    };
    let solver32 = {
        let solver = SparseCholeskySolver::factor_opts(work_a, fopts)?;
        solver.demote()
        // f64 factor dropped here: only the narrow lane stays resident
    };
    let work_b = match &scaling {
        Some(s) => s.scale_rhs(b)?,
        None => b.clone(),
    };
    let (xs, report32) = refine_mixed(&solver32, work_a, &work_b, &opts.refine)?;
    let (xs, mut report, fell_back) = if report32.certified {
        (xs, report32, false)
    } else {
        let solver = SparseCholeskySolver::factor_opts(work_a, fopts)?;
        let (xw, repw) = refine(&solver, work_a, &work_b, &opts.refine)?;
        (xw, repw, true)
    };
    report.scaling_ratio = scaling.as_ref().map(|s| s.ratio());
    if opts.condition {
        // estimate on a fresh f64 factor: the narrow factor would skew the
        // Hager–Higham probe solves
        let est = SparseCholeskySolver::factor_opts(work_a, fopts)?;
        report.condition_estimate = Some(estimate::condition_estimate(work_a, est.factor_matrix()));
    }
    let x = match &scaling {
        Some(s) => s.unscale_solution(&xs)?,
        None => xs,
    };
    Ok(MixedSolve {
        x,
        report,
        fell_back,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn exact_solution_certifies_immediately() {
        let a = gen::grid2d_laplacian(8, 8);
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        let x_true = gen::random_rhs(64, 2, 3);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, rep) = refine(&solver, &a, &b, &RefineOptions::default()).unwrap();
        assert!(rep.certified, "ω = {}", rep.backward_error);
        assert!(rep.backward_error <= 1e-10);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
        assert_eq!(rep.omega_history.len(), rep.iterations + 1);
    }

    #[test]
    fn refinement_repairs_a_perturbed_factor() {
        // Factor a nearby matrix (values off by 1e-4 relative) and refine
        // against the true one: the factor is only a preconditioner, the
        // certificate must still be reached and ω must fall monotonically.
        let a = gen::fem2d(6, 5, 2);
        let mut near = a.clone();
        for (k, v) in near.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 1e-4 * ((k % 7) as f64 - 3.0);
        }
        let solver = SparseCholeskySolver::factor(&near).unwrap();
        let n = a.ncols();
        let x_true = gen::random_rhs(n, 1, 9);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, rep) = refine(&solver, &a, &b, &RefineOptions::default()).unwrap();
        assert!(rep.certified, "ω = {}", rep.backward_error);
        assert!(rep.iterations >= 1, "perturbed factor needs refinement");
        for w in rep.omega_history.windows(2) {
            assert!(w[1] <= w[0], "ω must not increase: {:?}", rep.omega_history);
        }
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-6);
    }

    #[test]
    fn certified_solve_full_pipeline_with_scaling() {
        // badly scaled SPD matrix: graded diagonal spanning 8 decades
        let a = gen::graded_diagonal(60, 8);
        let x_true = gen::random_rhs(60, 1, 5);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let opts = CertifyOptions {
            scale: true,
            condition: true,
            ..CertifyOptions::default()
        };
        let out = certified_solve(&a, &b, &opts).unwrap();
        assert!(out.report.certified, "ω = {}", out.report.backward_error);
        let ratio = out.report.scaling_ratio.unwrap();
        assert!(ratio > 1e3, "graded matrix should report heavy scaling");
        assert!(out.report.condition_estimate.unwrap() >= 1.0);
        // solution is recovered in the *original* variables
        let r = a.residual_sym_lower(&out.x, &b).unwrap();
        assert!(r.norm_max() / b.norm_max() < 1e-9);
    }

    #[test]
    fn regularized_indefinite_matrix_is_refined_against_original() {
        // flip one diagonal entry: plain Cholesky breaks down, the
        // regularized pipeline factors A + δe_jeⱼᵀ and refinement measures
        // against the original A — outcome is structured either way.
        let mut a = gen::grid2d_laplacian(5, 5);
        let j = 12;
        let base = a.colptr()[j];
        let pos = a.col_rows(j).iter().position(|&i| i == j).unwrap();
        a.values_mut()[base + pos] = -2.0;
        let b = gen::random_rhs(25, 1, 7);
        // default policy: structured breakdown error
        assert!(matches!(
            certified_solve(&a, &b, &CertifyOptions::default()),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
        // regularized: runs to a structured report
        let opts = CertifyOptions {
            regularize: true,
            ..CertifyOptions::default()
        };
        let out = certified_solve(&a, &b, &opts).unwrap();
        assert!(out.report.perturbations >= 1);
        // the boost here is O(|pivot|), so refinement may or may not reach
        // the certificate — but the outcome must be structured either way:
        // a report with an honest ω, never a panic or a silent bad answer
        if out.report.certified {
            assert!(out.report.backward_error <= 1e-10);
            let r = a.residual_sym_lower(&out.x, &b).unwrap();
            assert!(r.norm_max() / b.norm_max() < 1e-6);
        } else {
            assert!(out.report.backward_error > 1e-10);
        }
        assert_eq!(
            out.report.omega_history.len(),
            out.report.iterations + 1,
            "history tracks accepted sweeps"
        );
    }

    #[test]
    fn non_finite_rhs_is_a_structured_error() {
        let a = gen::grid2d_laplacian(4, 4);
        let mut b = gen::random_rhs(16, 1, 1);
        b[(3, 0)] = f64::NAN;
        assert!(matches!(
            certified_solve(&a, &b, &CertifyOptions::default()),
            Err(MatrixError::NonFinite { .. })
        ));
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        assert!(matches!(
            refine(&solver, &a, &b, &RefineOptions::default()),
            Err(MatrixError::NonFinite { .. })
        ));
    }

    #[test]
    fn mixed_refine_certifies_well_conditioned_systems() {
        for a in [gen::grid2d_laplacian(16, 16), gen::fem2d(8, 8, 3)] {
            let n = a.ncols();
            let solver = SparseCholeskySolver::factor(&a).unwrap();
            let solver32 = solver.demote();
            let x_true = gen::random_rhs(n, 2, 11);
            let b = a.spmv_sym_lower(&x_true).unwrap();
            let (x, rep) = refine_mixed(&solver32, &a, &b, &RefineOptions::default()).unwrap();
            assert!(rep.certified, "ω = {}", rep.backward_error);
            assert!(rep.backward_error <= 1e-10);
            assert!(rep.iterations >= 1, "first sweep is unconditional");
            assert!(x.max_abs_diff(&x_true).unwrap() < 1e-7);
            // deterministic: same inputs, same bits
            let (x2, rep2) = refine_mixed(&solver32, &a, &b, &RefineOptions::default()).unwrap();
            assert_eq!(x.as_slice(), x2.as_slice());
            assert_eq!(rep.omega_history, rep2.omega_history);
        }
    }

    #[test]
    fn mixed_pipeline_falls_back_on_near_singular_matrix_and_still_certifies() {
        // smallest eigenvalue exactly 1e-12: κ ≈ 1e13 is *spectral*
        // ill-conditioning (no diagonal scaling fixes it). Refinement on
        // the demoted factor stagnates near ω ≈ 1e-7 — backward-error
        // refinement is forgiving, but not thirteen decades forgiving —
        // while the f64 lane (κ·ε₆₄ ≈ 2e-3) still converges, so the
        // pipeline must transparently refactor and certify there.
        let a = gen::rank_deficient_grid(12, 12, 1e-12);
        let x_true = gen::random_rhs(144, 1, 3);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let out = certified_solve_mixed(&a, &b, &CertifyOptions::default()).unwrap();
        assert!(out.fell_back, "f32 lane should stagnate at κ ≈ 1e13");
        assert!(out.report.certified, "ω = {}", out.report.backward_error);
        let r = a.residual_sym_lower(&out.x, &b).unwrap();
        assert!(r.norm_max() / b.norm_max() < 1e-9);
    }

    #[test]
    fn equilibration_composes_with_demotion() {
        // the same graded matrix, scaled first: equilibration tames the
        // value range before demotion, so the narrow lane certifies
        // without falling back
        let a = gen::graded_diagonal(80, 10);
        let x_true = gen::random_rhs(80, 1, 3);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let opts = CertifyOptions {
            scale: true,
            condition: true,
            ..CertifyOptions::default()
        };
        let out = certified_solve_mixed(&a, &b, &opts).unwrap();
        assert!(!out.fell_back, "equilibration should rescue the f32 lane");
        assert!(out.report.certified, "ω = {}", out.report.backward_error);
        assert!(out.report.scaling_ratio.unwrap() > 1e3);
        assert!(out.report.condition_estimate.unwrap() >= 1.0);
        let r = a.residual_sym_lower(&out.x, &b).unwrap();
        assert!(r.norm_max() / b.norm_max() < 1e-9);
    }

    #[test]
    fn mixed_zero_rhs_certifies_after_one_free_sweep() {
        let a = gen::grid2d_laplacian(4, 4);
        let b = DenseMatrix::zeros(16, 1);
        let out = certified_solve_mixed(&a, &b, &CertifyOptions::default()).unwrap();
        assert!(out.report.certified);
        assert!(!out.fell_back);
        assert_eq!(out.report.backward_error, 0.0);
        assert!(out.x.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_rhs_certifies_trivially() {
        let a = gen::grid2d_laplacian(4, 4);
        let b = DenseMatrix::zeros(16, 1);
        let out = certified_solve(&a, &b, &CertifyOptions::default()).unwrap();
        assert!(out.report.certified);
        assert_eq!(out.report.backward_error, 0.0);
        assert_eq!(out.report.iterations, 0);
        assert!(out.x.as_slice().iter().all(|&v| v == 0.0));
    }
}
