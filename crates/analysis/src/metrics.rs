//! Speedup, efficiency, overhead, and isoefficiency search.

/// Speedup `S = T_S / T_P`.
pub fn speedup(t_serial: f64, t_parallel: f64) -> f64 {
    assert!(t_serial > 0.0 && t_parallel > 0.0);
    t_serial / t_parallel
}

/// Efficiency `E = S / p = T_S / (p·T_P)`.
pub fn efficiency(t_serial: f64, t_parallel: f64, p: usize) -> f64 {
    speedup(t_serial, t_parallel) / p as f64
}

/// Overhead function `T_o(W, p) = p·T_P − T_S` (paper §3.2).
pub fn overhead(t_serial: f64, t_parallel: f64, p: usize) -> f64 {
    p as f64 * t_parallel - t_serial
}

/// Empirical isoefficiency point: the smallest candidate problem size
/// whose measured efficiency reaches `target_e` on `p` processors.
///
/// `run` maps a candidate problem-size parameter (e.g. grid side) to
/// `(t_serial, t_parallel)`. Candidates must be in increasing size order.
/// Returns `None` if no candidate reaches the target.
pub fn isoefficiency_problem_size(
    candidates: &[usize],
    p: usize,
    target_e: f64,
    mut run: impl FnMut(usize) -> (f64, f64),
) -> Option<(usize, f64)> {
    for &c in candidates {
        let (ts, tp) = run(c);
        let e = efficiency(ts, tp, p);
        if e >= target_e {
            return Some((c, e));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(efficiency(10.0, 2.5, 8), 0.5);
    }

    #[test]
    fn overhead_zero_at_perfect_scaling() {
        assert_eq!(overhead(8.0, 2.0, 4), 0.0);
        assert!(overhead(8.0, 3.0, 4) > 0.0);
    }

    #[test]
    fn isoefficiency_search_finds_threshold() {
        // model: T_S = n, T_P = n/p + 1  ⇒  E = n / (n + p)
        // E ≥ 0.5  ⇔  n ≥ p
        let p = 16;
        let found = isoefficiency_problem_size(&[2, 4, 8, 16, 32], p, 0.5, |n| {
            (n as f64, n as f64 / p as f64 + 1.0)
        });
        assert_eq!(found.map(|(n, _)| n), Some(16));
    }

    #[test]
    fn isoefficiency_search_can_fail() {
        let found = isoefficiency_problem_size(&[1, 2], 64, 0.99, |n| (n as f64, n as f64));
        assert!(found.is_none());
    }

    #[test]
    #[should_panic]
    fn speedup_rejects_zero_time() {
        speedup(1.0, 0.0);
    }
}
