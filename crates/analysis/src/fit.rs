//! Power-law (log–log least squares) fitting.
//!
//! The Figure 5 reproduction compares *measured* overhead growth rates
//! against the paper's asymptotic entries (e.g. `T_o = O(p²)` for the 1-D
//! solvers): we fit `y = a·xᵇ` to measured `(x, y)` points and report the
//! exponent `b` with its coefficient of determination.

/// Result of a least-squares fit of `y = a·xᵇ` in log–log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Multiplicative constant `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// Coefficient of determination in log space (1 = perfect).
    pub r2: f64,
}

/// Fit `y = a·xᵇ` through positive data points. Panics on fewer than two
/// points or non-positive values.
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let b = (n * sxy - sx * sy) / denom;
    let intercept = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (intercept + b * p.0)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    PowerLawFit {
        a: intercept.exp(),
        b,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.b - 1.5).abs() < 1e-10);
        assert!((fit.a - 3.0).abs() < 1e-8);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn tolerates_noise() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = (2.0f64).powi(i);
                let noise = 1.0 + 0.05 * ((i * 37 % 11) as f64 / 11.0 - 0.5);
                (x, x.powf(2.0) * noise)
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.b - 2.0).abs() < 0.1, "exponent {}", fit.b);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn rejects_nonpositive() {
        fit_power_law(&[(1.0, 0.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        fit_power_law(&[(1.0, 1.0)]);
    }
}
