//! Fixed-width table and CSV rendering for the experiment harnesses.

/// A simple column-aligned text table with an optional title, rendered in
/// the style of the paper's result tables, plus CSV export for plotting.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            title: None,
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Attach a title line.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row (must match the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", cell, w = width[i]));
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with engineering-style precision (ms below 1 s).
pub fn fmt_secs(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3}")
    } else {
        format!("{:.3}ms", t * 1e3)
    }
}

/// Format a float with three significant-ish decimals.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["p", "time"]).with_title("demo");
        t.push_row(vec!["1", "10.0"]);
        t.push_row(vec!["128", "0.5"]);
        let s = t.render();
        assert!(s.starts_with("demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // all data lines same width
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push_row(vec!["a,b", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500");
        assert_eq!(fmt_secs(0.1234), "123.400ms");
        assert_eq!(fmt_f(123.456), "123");
        assert_eq!(fmt_f(12.34), "12.3");
        assert_eq!(fmt_f(1.234), "1.23");
    }
}
