//! Scalability metrics and experiment-table utilities.
//!
//! Implements the quantitative vocabulary of the paper's Section 3:
//! speedup, efficiency, the overhead function `T_o = p·T_P − T_S`, the
//! isoefficiency relation `W ∝ T_o(W, p)`, plus the growth-exponent
//! fitting and table formatting the `fig*` harness binaries use.

pub mod fit;
pub mod metrics;
pub mod table;

pub use fit::{fit_power_law, PowerLawFit};
pub use metrics::{efficiency, isoefficiency_problem_size, overhead, speedup};
pub use table::Table;
