//! Consistent-hash ring over matrix fingerprints.
//!
//! The ring is the router's placement function: each backend owns `vnodes`
//! points on a `u64` circle, and a fingerprint's replica set is the first
//! `R` *distinct* backends found walking clockwise from the fingerprint's
//! own point. Virtual nodes smooth the ownership distribution (a handful
//! of physical nodes with one point each would carve the circle into
//! wildly unequal arcs); replication pins each hot factor on `R` backends
//! so a SOLVE can fail over when its primary sheds, stalls, or dies.
//!
//! Placement is a pure function of `(backend count, vnodes, fingerprint)` —
//! no membership mutation exists. Dead backends stay *on* the ring and are
//! skipped at routing time by walking to the next replica, so a node
//! bouncing in and out of health never remaps keys between the survivors
//! (the classic consistent-hashing stability argument, applied to failover
//! instead of resharding).

use trisolv_server::Fingerprint;

/// SplitMix64 finalizer: a cheap, well-mixed `u64 -> u64` permutation.
/// Used both to place vnode points and to hash fingerprints onto the ring.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping fingerprints to ordered replica sets.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, u32)>,
    nbackends: usize,
}

impl Ring {
    /// Default virtual nodes per backend: enough to keep per-backend load
    /// within a few percent of uniform at small fleet sizes.
    pub const DEFAULT_VNODES: usize = 64;

    /// Build the ring for `nbackends` backends with `vnodes` points each.
    pub fn new(nbackends: usize, vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nbackends * vnodes);
        for b in 0..nbackends as u32 {
            for v in 0..vnodes as u64 {
                // hash (backend, vnode) into a point; the odd multiplier
                // decorrelates backend indices before mixing
                let key = (b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ v;
                points.push((mix(key), b));
            }
        }
        points.sort_unstable();
        Ring { points, nbackends }
    }

    /// Number of physical backends on the ring.
    pub fn nbackends(&self) -> usize {
        self.nbackends
    }

    /// The ordered replica set for `fp`: the first `min(r, nbackends)`
    /// distinct backends clockwise from the fingerprint's point. The first
    /// entry is the primary; failover walks the rest in order.
    pub fn replicas(&self, fp: Fingerprint, r: usize) -> Vec<usize> {
        let want = r.clamp(1, self.nbackends.max(1));
        let mut out = Vec::with_capacity(want);
        if self.points.is_empty() {
            return out;
        }
        let key = mix(fp.0 ^ mix(fp.1));
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            let b = b as usize;
            if !out.contains(&b) {
                out.push(b);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary backend for `fp`.
    pub fn primary(&self, fp: Fingerprint) -> Option<usize> {
        self.replicas(fp, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fps(n: usize) -> Vec<Fingerprint> {
        (0..n as u64)
            .map(|i| Fingerprint(mix(i), mix(!i)))
            .collect()
    }

    #[test]
    fn replicas_are_distinct_ordered_and_deterministic() {
        let ring = Ring::new(5, 64);
        for fp in fps(200) {
            let reps = ring.replicas(fp, 3);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct backends");
            // deterministic: a rebuilt ring agrees point for point
            assert_eq!(Ring::new(5, 64).replicas(fp, 3), reps);
            // prefix property: R=1 and R=2 are prefixes of R=3
            assert_eq!(ring.replicas(fp, 1), reps[..1]);
            assert_eq!(ring.replicas(fp, 2), reps[..2]);
        }
    }

    #[test]
    fn replication_clamps_to_fleet_size() {
        let ring = Ring::new(2, 16);
        let fp = Fingerprint(1, 2);
        assert_eq!(ring.replicas(fp, 5).len(), 2);
        assert_eq!(ring.replicas(fp, 0).len(), 1, "R=0 still routes somewhere");
        assert!(Ring::new(0, 16).replicas(fp, 2).is_empty());
    }

    #[test]
    fn load_is_roughly_balanced() {
        let nbackends = 4;
        let ring = Ring::new(nbackends, Ring::DEFAULT_VNODES);
        let mut counts = vec![0usize; nbackends];
        let keys = fps(4000);
        for fp in &keys {
            counts[ring.primary(*fp).unwrap()] += 1;
        }
        let ideal = keys.len() / nbackends;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "backend {b} owns {c} of {} keys (ideal {ideal})",
                keys.len()
            );
        }
    }

    #[test]
    fn survivor_placement_is_stable_under_failover_skips() {
        // Routing around a dead backend = taking the next replica in the
        // precomputed set; the ring itself never changes, so keys whose
        // replica set avoids the dead backend are completely untouched.
        let ring = Ring::new(4, 64);
        for fp in fps(500) {
            let reps = ring.replicas(fp, 2);
            if !reps.contains(&0) {
                // "kill" backend 0: nothing about this key's routing moves
                assert_eq!(ring.replicas(fp, 2), reps);
            }
        }
    }
}
