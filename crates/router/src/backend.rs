//! Backend bookkeeping: the per-backend circuit breaker and the retained
//! LOAD cache that makes warm-standby rejoin possible.
//!
//! Each backend cycles through a small health machine driven entirely by
//! the event loop (no locks, no timers of its own):
//!
//! ```text
//!              dial ok                 replays drained
//!   Probing ───────────▶ Standby ───────────────────▶ Healthy
//!      ▲  ◀──────────┐      │                            │
//!      │   dial err  │      └── conn lost ──┐            │
//!      │ (< 3 fails) │                      ▼            ▼
//!      └─────────────┴──────────────── note_failure ◀────┘
//!                                           │ (≥ 3 consecutive fails)
//!                                           ▼
//!                                         Dead  ── backoff ──▶ Probing
//! ```
//!
//! `Dead` is not removal: the backend keeps its ring points and its probe
//! schedule (with a longer backoff), so a rebooted process rejoins in
//! place. On reconnect the router replays every retained LOAD whose
//! replica set includes this backend (`Standby`); only when the replays
//! drain does the backend take new traffic again (`Healthy`) — a rejoined
//! replica never serves `UnknownFingerprint` for factors it is supposed
//! to hold.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use trisolv_server::conn::Conn;
use trisolv_server::Fingerprint;

/// Consecutive dial/connection failures before `Probing` hardens to `Dead`.
pub(crate) const DEAD_THRESHOLD: u32 = 3;
/// Cap on the probe-backoff exponent (`probe_interval * 2^exp`).
pub(crate) const MAX_BACKOFF_EXP: u32 = 6;

/// Breaker state of one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Connected, replays drained: takes new traffic.
    Healthy,
    /// Connected but replaying retained LOADs; no new traffic yet.
    Standby,
    /// Disconnected, probing on a short backoff.
    Probing,
    /// Disconnected after repeated failures; probing on a long backoff.
    Dead,
}

/// One in-flight sub-request on a backend connection, in send order. The
/// backend answers its connection strictly in order, so a FIFO of these is
/// the whole request→reply correlation state.
pub(crate) struct SubReq {
    /// Router request id this sub-request belongs to.
    pub req: u64,
    /// Backstop deadline: a reply later than this means the backend is hung
    /// and the whole connection is condemned (FIFO matching cannot survive
    /// skipping one reply).
    pub expires: Instant,
}

/// One backend: address, breaker, connection, and in-flight FIFO.
pub(crate) struct Backend {
    /// Dial address (as configured; also reported in EVICT outcomes).
    pub addr: String,
    /// Breaker state.
    pub health: Health,
    /// Live connection, when one exists (`Standby`/`Healthy`).
    pub conn: Option<Conn>,
    /// In-flight sub-requests in send order.
    pub fifo: VecDeque<SubReq>,
    /// Consecutive failures since the last successful connect.
    pub failures: u32,
    /// Earliest next dial attempt.
    pub next_probe: Instant,
    /// A dial is in flight on the dialer thread.
    pub dialing: bool,
    /// Retained-LOAD replays still pending before promotion to `Healthy`.
    pub rejoining: usize,
}

impl Backend {
    /// A new backend starts `Probing` with an immediate first dial.
    pub fn new(addr: String, now: Instant) -> Backend {
        Backend {
            addr,
            health: Health::Probing,
            conn: None,
            fifo: VecDeque::new(),
            failures: 0,
            next_probe: now,
            dialing: false,
            rejoining: 0,
        }
    }

    /// May new client traffic route here?
    pub fn usable(&self) -> bool {
        self.health == Health::Healthy && self.conn.is_some()
    }

    /// Record a dial failure or a lost connection: drop the conn, bump the
    /// consecutive-failure count, demote to `Probing` (or `Dead` past the
    /// threshold), and schedule the next probe with exponential backoff.
    /// The caller owns draining `fifo` *before* calling this.
    pub fn note_failure(&mut self, now: Instant, probe_interval: Duration) {
        self.conn = None;
        self.rejoining = 0;
        self.failures = self.failures.saturating_add(1);
        self.health = if self.failures >= DEAD_THRESHOLD {
            Health::Dead
        } else {
            Health::Probing
        };
        let exp = (self.failures - 1).min(MAX_BACKOFF_EXP);
        self.next_probe = now + probe_interval.max(Duration::from_millis(1)) * (1u32 << exp);
    }

    /// Record a successful connect: the breaker resets and the backend sits
    /// in `Standby` until its retained-LOAD replays (if any) drain. The
    /// caller installs the connection and queues the replays.
    pub fn note_connected(&mut self) {
        self.failures = 0;
        self.health = Health::Standby;
    }

    /// One replay sub-request finished. Returns `true` when this was the
    /// last one and the backend just promoted to `Healthy`.
    pub fn finish_rejoin(&mut self) -> bool {
        self.rejoining = self.rejoining.saturating_sub(1);
        if self.rejoining == 0 && self.health == Health::Standby {
            self.health = Health::Healthy;
            true
        } else {
            false
        }
    }

    /// Should the loop hand this backend to the dialer now?
    pub fn wants_dial(&self, now: Instant) -> bool {
        self.conn.is_none() && !self.dialing && now >= self.next_probe
    }
}

/// Retained LOAD payloads keyed by fingerprint, under a byte budget with
/// oldest-first eviction. This is what a rejoining backend replays: the
/// router re-sends the original LOAD frames for every fingerprint the ring
/// places on it, so a factor survives the death of any single replica.
pub(crate) struct Retained {
    map: HashMap<Fingerprint, Vec<u8>>,
    order: VecDeque<Fingerprint>,
    bytes: usize,
    budget: usize,
}

impl Retained {
    pub fn new(budget: usize) -> Retained {
        Retained {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            budget: budget.max(1),
        }
    }

    /// Retain (or refresh) a LOAD payload, evicting oldest entries past the
    /// budget. A payload larger than the whole budget is not retained.
    pub fn insert(&mut self, fp: Fingerprint, payload: Vec<u8>) {
        self.remove(fp);
        if payload.len() > self.budget {
            return;
        }
        self.bytes += payload.len();
        self.map.insert(fp, payload);
        self.order.push_back(fp);
        while self.bytes > self.budget {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if let Some(p) = self.map.remove(&old) {
                self.bytes -= p.len();
            }
        }
    }

    pub fn remove(&mut self, fp: Fingerprint) {
        if let Some(p) = self.map.remove(&fp) {
            self.bytes -= p.len();
            self.order.retain(|f| *f != fp);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Fingerprint, &Vec<u8>)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_probing_standby_healthy() {
        let t0 = Instant::now();
        let mut b = Backend::new("127.0.0.1:1".into(), t0);
        assert_eq!(b.health, Health::Probing);
        assert!(b.wants_dial(t0));
        b.dialing = true;
        assert!(!b.wants_dial(t0), "no double dials");
        // connect with two replays pending
        b.dialing = false;
        b.note_connected();
        b.rejoining = 2;
        assert_eq!(b.health, Health::Standby);
        assert!(!b.usable(), "standby takes no new traffic");
        assert!(!b.finish_rejoin());
        assert!(b.finish_rejoin(), "last replay promotes");
        assert_eq!(b.health, Health::Healthy);
        assert_eq!(b.failures, 0);
    }

    #[test]
    fn repeated_failures_harden_to_dead_with_growing_backoff() {
        let t0 = Instant::now();
        let step = Duration::from_millis(100);
        let mut b = Backend::new("127.0.0.1:1".into(), t0);
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Probing);
        let p1 = b.next_probe;
        assert_eq!(p1, t0 + step);
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Probing);
        let p2 = b.next_probe;
        assert!(p2 > p1, "backoff grows");
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Dead, "third consecutive failure");
        assert!(b.next_probe > p2);
        assert!(!b.wants_dial(t0), "dead backend waits out its backoff");
        assert!(b.wants_dial(b.next_probe), "…but keeps probing");
        // a successful reconnect fully resets the breaker
        b.note_connected();
        assert_eq!(b.failures, 0);
        assert!(b.finish_rejoin(), "no replays pending: immediate promote");
        assert_eq!(b.health, Health::Healthy);
    }

    #[test]
    fn backoff_exponent_saturates() {
        let t0 = Instant::now();
        let step = Duration::from_millis(10);
        let mut b = Backend::new("x".into(), t0);
        for _ in 0..100 {
            b.note_failure(t0, step);
        }
        assert_eq!(b.next_probe, t0 + step * (1 << MAX_BACKOFF_EXP));
    }

    #[test]
    fn retained_cache_enforces_budget_oldest_first() {
        let mut r = Retained::new(100);
        let fp = |i: u64| Fingerprint(i, i);
        r.insert(fp(1), vec![0; 40]);
        r.insert(fp(2), vec![0; 40]);
        assert_eq!((r.len(), r.bytes()), (2, 80));
        // refresh does not duplicate
        r.insert(fp(1), vec![0; 40]);
        assert_eq!((r.len(), r.bytes()), (2, 80));
        // pushing past the budget evicts the oldest (fp 2 now, after fp 1's refresh)
        r.insert(fp(3), vec![0; 40]);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|(f, _)| *f != fp(2)));
        // an entry larger than the whole budget is refused
        r.insert(fp(4), vec![0; 101]);
        assert!(r.iter().all(|(f, _)| *f != fp(4)));
        r.remove(fp(3));
        assert_eq!((r.len(), r.bytes()), (1, 40));
    }
}
