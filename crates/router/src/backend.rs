//! Backend bookkeeping: the per-backend circuit breaker and the retained
//! LOAD cache that makes warm-standby rejoin possible.
//!
//! Each backend cycles through a small health machine driven entirely by
//! the event loop (no locks, no timers of its own):
//!
//! ```text
//!              dial ok                 replays drained
//!   Probing ───────────▶ Standby ───────────────────▶ Healthy
//!      ▲  ◀──────────┐      │                            │
//!      │   dial err  │      └── conn lost ──┐            │
//!      │ (< 3 fails) │                      ▼            ▼
//!      └─────────────┴──────────────── note_failure ◀────┘
//!                                           │ (≥ 3 consecutive fails)
//!                                           ▼
//!                                         Dead  ── backoff ──▶ Probing
//! ```
//!
//! `Dead` is not removal: the backend keeps its ring points and its probe
//! schedule (with a longer backoff), so a rebooted process rejoins in
//! place. On reconnect the router replays every retained LOAD whose
//! replica set includes this backend (`Standby`); only when the replays
//! drain does the backend take new traffic again (`Healthy`) — a rejoined
//! replica never serves `UnknownFingerprint` for factors it is supposed
//! to hold.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use trisolv_server::conn::Conn;
use trisolv_server::Fingerprint;

/// Consecutive dial/connection failures before `Probing` hardens to `Dead`.
pub(crate) const DEAD_THRESHOLD: u32 = 3;
/// Cap on the probe-backoff exponent (`probe_interval * 2^exp`).
pub(crate) const MAX_BACKOFF_EXP: u32 = 6;

/// Wire protocol spoken on one backend connection, settled by the `HELLO`
/// handshake the router opens every connection with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proto {
    /// `HELLO` sent, answer pending; no sub-requests may be queued yet.
    Negotiating,
    /// v4: enveloped frames, replies correlate by request id (out-of-order
    /// legal), per-sub-request expiry.
    V4,
    /// Legacy (≤ v3) backend: plain frames, strict FIFO reply order.
    Fifo,
}

/// Breaker state of one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Connected, replays drained: takes new traffic.
    Healthy,
    /// Connected but replaying retained LOADs; no new traffic yet.
    Standby,
    /// Disconnected, probing on a short backoff.
    Probing,
    /// Disconnected after repeated failures; probing on a long backoff.
    Dead,
}

/// One in-flight sub-request on a backend connection. On a legacy (FIFO)
/// backend these sit in send order and the backend answers strictly in
/// order; on a v4 backend they live in a map keyed by the wire request id
/// and replies may land in any order.
pub(crate) struct SubReq {
    /// Router request id this sub-request belongs to.
    pub req: u64,
    /// Backstop deadline for the reply. On a FIFO backend a blown head
    /// condemns the whole connection (FIFO matching cannot survive
    /// skipping one reply); on a v4 backend only this sub-request fails.
    pub expires: Instant,
    /// When the sub-request was enqueued (latency samples, hedge timing).
    pub sent: Instant,
    /// Whether this is a SOLVE forward (only those are hedge candidates
    /// and only their completions feed the latency window).
    pub solve: bool,
    /// Whether this sub-request *is* a hedge (duplicate dispatch).
    pub hedge: bool,
    /// Cleared once the hedge scan has considered this sub-request, so a
    /// past-threshold sub that cannot be hedged (budget, no replica) does
    /// not wake the loop forever.
    pub hedge_eligible: bool,
}

impl SubReq {
    /// A plain (non-hedge) sub-request.
    pub fn new(req: u64, expires: Instant, sent: Instant, solve: bool) -> SubReq {
        SubReq {
            req,
            expires,
            sent,
            solve,
            hedge: false,
            hedge_eligible: solve,
        }
    }

    /// A hedge duplicate of a SOLVE sub-request.
    pub fn new_hedge(req: u64, expires: Instant, sent: Instant) -> SubReq {
        SubReq {
            req,
            expires,
            sent,
            solve: true,
            hedge: true,
            hedge_eligible: false,
        }
    }
}

/// Windowed completion-latency tracker feeding the adaptive hedge
/// threshold: a ring of the last [`LatencyWindow::CAP`] non-hedged SOLVE
/// completion times, queried at p99. Hedged completions are excluded so a
/// stalled replica cannot poison the threshold through its own rescues.
#[derive(Default)]
pub(crate) struct LatencyWindow {
    samples: Vec<u32>,
    next: usize,
}

impl LatencyWindow {
    const CAP: usize = 64;

    pub fn record(&mut self, d: Duration) {
        let ms = d.as_millis().min(u128::from(u32::MAX)) as u32;
        if self.samples.len() < Self::CAP {
            self.samples.push(ms);
        } else {
            self.samples[self.next] = ms;
        }
        self.next = (self.next + 1) % Self::CAP;
    }

    /// The windowed p99 (max of the top 1%; with ≤ 100 samples, the max).
    /// Zero when no samples have landed yet.
    pub fn p99(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() * 99).div_ceil(100).saturating_sub(1);
        Duration::from_millis(u64::from(sorted[idx]))
    }
}

/// One backend: address, breaker, connection, and in-flight bookkeeping.
pub(crate) struct Backend {
    /// Dial address (as configured; also reported in EVICT outcomes).
    pub addr: String,
    /// Breaker state.
    pub health: Health,
    /// Live connection, when one exists (`Standby`/`Healthy`).
    pub conn: Option<Conn>,
    /// Negotiated wire protocol for the live connection.
    pub proto: Proto,
    /// Backstop for the `HELLO` answer while `Negotiating`.
    pub hello_deadline: Option<Instant>,
    /// In-flight sub-requests in send order (legacy FIFO backends).
    pub fifo: VecDeque<SubReq>,
    /// In-flight sub-requests keyed by wire request id (v4 backends).
    pub inflight: HashMap<u64, SubReq>,
    /// Next wire request id on a v4 connection.
    pub next_wire: u64,
    /// Completion-latency window feeding the adaptive hedge threshold.
    pub latency: LatencyWindow,
    /// Consecutive failures since the last successful connect.
    pub failures: u32,
    /// Earliest next dial attempt.
    pub next_probe: Instant,
    /// A dial is in flight on the dialer thread.
    pub dialing: bool,
    /// Retained-LOAD replays still pending before promotion to `Healthy`.
    pub rejoining: usize,
}

impl Backend {
    /// A new backend starts `Probing` with an immediate first dial.
    pub fn new(addr: String, now: Instant) -> Backend {
        Backend {
            addr,
            health: Health::Probing,
            conn: None,
            proto: Proto::Negotiating,
            hello_deadline: None,
            fifo: VecDeque::new(),
            inflight: HashMap::new(),
            next_wire: 1,
            latency: LatencyWindow::default(),
            failures: 0,
            next_probe: now,
            dialing: false,
            rejoining: 0,
        }
    }

    /// May new client traffic route here?
    pub fn usable(&self) -> bool {
        self.health == Health::Healthy && self.conn.is_some()
    }

    /// Record a dial failure or a lost connection: drop the conn, bump the
    /// consecutive-failure count, demote to `Probing` (or `Dead` past the
    /// threshold), and schedule the next probe with exponential backoff.
    /// The caller owns draining `fifo` *before* calling this.
    pub fn note_failure(&mut self, now: Instant, probe_interval: Duration) {
        self.conn = None;
        self.proto = Proto::Negotiating;
        self.hello_deadline = None;
        self.rejoining = 0;
        self.failures = self.failures.saturating_add(1);
        self.health = if self.failures >= DEAD_THRESHOLD {
            Health::Dead
        } else {
            Health::Probing
        };
        let exp = (self.failures - 1).min(MAX_BACKOFF_EXP);
        self.next_probe = now + probe_interval.max(Duration::from_millis(1)) * (1u32 << exp);
    }

    /// Record a successful connect: the breaker resets and the backend sits
    /// in `Standby` until its retained-LOAD replays (if any) drain. The
    /// caller installs the connection and queues the replays.
    pub fn note_connected(&mut self) {
        self.failures = 0;
        self.health = Health::Standby;
    }

    /// One replay sub-request finished. Returns `true` when this was the
    /// last one and the backend just promoted to `Healthy`.
    pub fn finish_rejoin(&mut self) -> bool {
        self.rejoining = self.rejoining.saturating_sub(1);
        if self.rejoining == 0 && self.health == Health::Standby {
            self.health = Health::Healthy;
            true
        } else {
            false
        }
    }

    /// Should the loop hand this backend to the dialer now?
    pub fn wants_dial(&self, now: Instant) -> bool {
        self.conn.is_none() && !self.dialing && now >= self.next_probe
    }
}

/// Retained LOAD payloads keyed by fingerprint, under a byte budget with
/// oldest-first eviction. This is what a rejoining backend replays: the
/// router re-sends the original LOAD frames for every fingerprint the ring
/// places on it, so a factor survives the death of any single replica.
pub(crate) struct Retained {
    map: HashMap<Fingerprint, Vec<u8>>,
    order: VecDeque<Fingerprint>,
    bytes: usize,
    budget: usize,
}

impl Retained {
    pub fn new(budget: usize) -> Retained {
        Retained {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            budget: budget.max(1),
        }
    }

    /// Retain (or refresh) a LOAD payload, evicting oldest entries past the
    /// budget. A payload larger than the whole budget is not retained.
    pub fn insert(&mut self, fp: Fingerprint, payload: Vec<u8>) {
        self.remove(fp);
        if payload.len() > self.budget {
            return;
        }
        self.bytes += payload.len();
        self.map.insert(fp, payload);
        self.order.push_back(fp);
        while self.bytes > self.budget {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if let Some(p) = self.map.remove(&old) {
                self.bytes -= p.len();
            }
        }
    }

    pub fn remove(&mut self, fp: Fingerprint) {
        if let Some(p) = self.map.remove(&fp) {
            self.bytes -= p.len();
            self.order.retain(|f| *f != fp);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Fingerprint, &Vec<u8>)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_probing_standby_healthy() {
        let t0 = Instant::now();
        let mut b = Backend::new("127.0.0.1:1".into(), t0);
        assert_eq!(b.health, Health::Probing);
        assert!(b.wants_dial(t0));
        b.dialing = true;
        assert!(!b.wants_dial(t0), "no double dials");
        // connect with two replays pending
        b.dialing = false;
        b.note_connected();
        b.rejoining = 2;
        assert_eq!(b.health, Health::Standby);
        assert!(!b.usable(), "standby takes no new traffic");
        assert!(!b.finish_rejoin());
        assert!(b.finish_rejoin(), "last replay promotes");
        assert_eq!(b.health, Health::Healthy);
        assert_eq!(b.failures, 0);
    }

    #[test]
    fn repeated_failures_harden_to_dead_with_growing_backoff() {
        let t0 = Instant::now();
        let step = Duration::from_millis(100);
        let mut b = Backend::new("127.0.0.1:1".into(), t0);
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Probing);
        let p1 = b.next_probe;
        assert_eq!(p1, t0 + step);
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Probing);
        let p2 = b.next_probe;
        assert!(p2 > p1, "backoff grows");
        b.note_failure(t0, step);
        assert_eq!(b.health, Health::Dead, "third consecutive failure");
        assert!(b.next_probe > p2);
        assert!(!b.wants_dial(t0), "dead backend waits out its backoff");
        assert!(b.wants_dial(b.next_probe), "…but keeps probing");
        // a successful reconnect fully resets the breaker
        b.note_connected();
        assert_eq!(b.failures, 0);
        assert!(b.finish_rejoin(), "no replays pending: immediate promote");
        assert_eq!(b.health, Health::Healthy);
    }

    #[test]
    fn backoff_exponent_saturates() {
        let t0 = Instant::now();
        let step = Duration::from_millis(10);
        let mut b = Backend::new("x".into(), t0);
        for _ in 0..100 {
            b.note_failure(t0, step);
        }
        assert_eq!(b.next_probe, t0 + step * (1 << MAX_BACKOFF_EXP));
    }

    #[test]
    fn latency_window_p99_tracks_recent_samples() {
        let mut w = LatencyWindow::default();
        assert_eq!(w.p99(), Duration::ZERO, "empty window contributes nothing");
        for _ in 0..50 {
            w.record(Duration::from_millis(10));
        }
        assert_eq!(w.p99(), Duration::from_millis(10));
        w.record(Duration::from_millis(500));
        assert_eq!(
            w.p99(),
            Duration::from_millis(500),
            "a tail spike is visible at p99"
        );
        // the window is a ring: a full turn of fresh fast samples pushes
        // the spike out again
        for _ in 0..LatencyWindow::CAP {
            w.record(Duration::from_millis(5));
        }
        assert_eq!(w.p99(), Duration::from_millis(5));
    }

    #[test]
    fn retained_cache_enforces_budget_oldest_first() {
        let mut r = Retained::new(100);
        let fp = |i: u64| Fingerprint(i, i);
        r.insert(fp(1), vec![0; 40]);
        r.insert(fp(2), vec![0; 40]);
        assert_eq!((r.len(), r.bytes()), (2, 80));
        // refresh does not duplicate
        r.insert(fp(1), vec![0; 40]);
        assert_eq!((r.len(), r.bytes()), (2, 80));
        // pushing past the budget evicts the oldest (fp 2 now, after fp 1's refresh)
        r.insert(fp(3), vec![0; 40]);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|(f, _)| *f != fp(2)));
        // an entry larger than the whole budget is refused
        r.insert(fp(4), vec![0; 101]);
        assert!(r.iter().all(|(f, _)| *f != fp(4)));
        r.remove(fp(3));
        assert_eq!((r.len(), r.bytes()), (1, 40));
    }
}
