//! Minimal backend launcher for router integration tests and smoke runs.
//!
//! A thin wrapper over [`trisolv_server::Server`] that binds an ephemeral
//! port by default and prints a parseable banner (`trisolv-backend
//! listening on ADDR`). Integration tests spawn this as a *real process*
//! via `env!("CARGO_BIN_EXE_trisolv-backend")` so chaos tests can SIGKILL
//! a backend mid-load — an in-process `RunningServer` cannot die that way.

use std::time::Duration;

use trisolv_server::{ExecMode, FaultPlan, Server, ServerOptions};

fn usage() -> String {
    "usage: trisolv-backend [--addr HOST:PORT] [--workers N] [--exec MODE] \
     [--fault-spec SPEC] [--io-timeout-ms MS] [--deadline-cap-ms MS]"
        .to_string()
}

fn parse(args: &[String]) -> Result<ServerOptions, String> {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        ..ServerOptions::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => opts.addr = val()?,
            "--workers" => {
                opts.workers = val()?.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--exec" => {
                opts.engine.exec = ExecMode::parse(&val()?)?;
            }
            "--fault-spec" => {
                opts.fault = FaultPlan::parse(&val()?)?;
            }
            "--io-timeout-ms" => {
                opts.io_timeout = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("bad --io-timeout-ms: {e}"))?,
                );
            }
            "--deadline-cap-ms" => {
                opts.deadline_cap = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("bad --deadline-cap-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let server = match Server::spawn(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serve: {e}");
            std::process::exit(1);
        }
    };
    println!("trisolv-backend listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
}
