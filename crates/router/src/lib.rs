//! Distributed solve tier: a sharded, replicated router in front of a
//! fleet of `trisolv serve` backends.
//!
//! The router speaks the same protocol v3 as a single server — any
//! existing client points at it unchanged — and shards *matrices* (not
//! connections) across backends with a consistent-hash ring keyed on the
//! matrix fingerprint. Each factor is `LOAD`ed on `R` replicas; `SOLVE`s
//! go to the first healthy replica and deterministically fail over to the
//! next on shed (`ERR Busy`), stall (`ERR Timeout` / backstop expiry), a
//! stale cache (`ERR UnknownFingerprint`), or connection loss. A per-
//! backend circuit breaker schedules reconnects with exponential backoff,
//! and a rejoining backend is replayed its share of retained `LOAD`s
//! before it takes traffic again (warm standby).
//!
//! Module map:
//!
//! * [`ring`] — the placement function (consistent hashing, vnodes,
//!   ordered replica sets).
//! * [`router`] — the event-loop proxy itself ([`Router::spawn`] →
//!   [`RunningRouter`]).
//! * [`launch`] — process supervision for spawning a local backend fleet
//!   ([`Fleet`]).
//!
//! See `DESIGN.md` §15 for the full design discussion.

mod backend;
pub mod launch;
pub mod ring;
pub mod router;

pub use launch::Fleet;
pub use ring::Ring;
pub use router::{Router, RouterOptions, RunningRouter};
