//! The router proper: a protocol-v4 proxy event loop with consistent-hash
//! placement, replication, deterministic failover, and hedged dispatch.
//!
//! One loop thread owns every socket — the client-facing listener plus one
//! outbound connection per backend — through the same [`poller`] /
//! [`Conn`] machinery as the server front end (reused, not forked; the
//! backend side uses [`Conn::enqueue`] for requests and the incremental
//! frame parser for replies). There is no worker pool: proxying is cheap.
//!
//! Every backend connection opens with a `HELLO` handshake. A v4 backend
//! gets enveloped frames (64-bit wire request id + payload checksum
//! trailer): replies correlate through a per-connection id map, may land
//! out of order, and a hung reply expires *alone* instead of condemning
//! the connection. A reply whose checksum fails is counted
//! (`router_crc_rejects`) and dropped — its id is untrustworthy — and the
//! sub-request runs into its own expiry. A reply that correlates to
//! nothing (duplicate, or late after its sub expired) is counted
//! (`router_orphan_replies`) and dropped; the connection keeps serving. A
//! backend that answers the handshake with `ERR UnknownOpcode` is a
//! legacy (≤ v3) peer: it keeps the plain framing and the strict-FIFO
//! correlation, where a blown reply deadline still condemns the whole
//! connection (FIFO matching cannot skip a reply).
//!
//! The same envelope is offered to clients: a client that opens with
//! `HELLO` gets v4 framing end-to-end (ids echoed verbatim, checksummed
//! both ways — a corrupt request is refused with `ERR Corrupt` and the
//! connection survives); clients that skip the handshake keep the legacy
//! protocol byte-for-byte.
//!
//! Hedged SOLVE (DESIGN.md §18): once a forwarded SOLVE outlives an
//! adaptive per-backend threshold — `max(`windowed p99 of that backend's
//! completions`, hedge_after)` — the router duplicates it to the next
//! replica, first valid reply wins, and the loser is discarded safely by
//! request id. Hedges are capped by `hedge_budget` (a fraction of SOLVE
//! sub-requests sent) and never re-hedged.
//!
//! Per-opcode routing (DESIGN.md §15):
//!
//! * `LOAD` — fingerprint computed at the edge (same digest the backend
//!   will derive), payload retained for rejoin replay, fanned out to every
//!   healthy replica; replies when all answer, with the first `OK_LOADED`.
//! * `SOLVE` — forwarded to the first healthy replica in ring order with
//!   the deadline field rewritten to the *remaining* budget; fails over to
//!   the next replica on `ERR Busy`, `ERR UnknownFingerprint`,
//!   `ERR Timeout`, connection loss, or a hung-backend backstop timeout.
//!   Permanent errors propagate as-is; an exhausted replica set propagates
//!   the last error (or `Busy` with a retry hint if none was reachable).
//! * `EVICT` — broadcast to every replica, answered with the aggregate
//!   `existed` plus the per-backend outcome trailer.
//! * `STATS` — fanned out to every healthy backend, summed per key, and
//!   annotated with `router_*` gauges.
//! * `SHUTDOWN` — answered with `OK_BYE`; stops the router only (backend
//!   lifecycles belong to whoever spawned them, e.g. [`crate::launch`]).
//!
//! Deadlines propagate end-to-end: the client's budget is clamped to the
//! router's cap, each forward carries only the remaining time, and a
//! failover that would start past the deadline answers `ERR Deadline`
//! instead of burning a backend on a doomed request. `retry_after_ms`
//! hints survive the trip back verbatim.
//!
//! [`poller`]: trisolv_server::poller
//! [`Conn`]: trisolv_server::conn::Conn
//! [`Conn::enqueue`]: trisolv_server::conn::Conn::enqueue

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trisolv_server::conn::{Conn, FrameStep, Outcome, ReadStatus};
use trisolv_server::poller::{self, Interest, PollFd, Waker};
use trisolv_server::protocol::{
    encode_frame, err_payload, op, parse_err, unwrap_v4, v4_req_id_hint, wrap_v4, write_frame,
    Builder, Cursor, ErrorCode, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use trisolv_server::Fingerprint;

use crate::backend::{Backend, Proto, Retained, SubReq};
use crate::ring::Ring;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Client-facing bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend addresses (`host:port` of running `trisolv serve`
    /// processes). The ring is built over this list in order, so the same
    /// list always yields the same placement.
    pub backends: Vec<String>,
    /// Replication factor: each fingerprint lives on this many backends
    /// (clamped to the fleet size).
    pub replication: usize,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Slow-peer guard for client sockets and backend writes, and part of
    /// the hung-backend reply backstop. Zero disables the client guard.
    pub io_timeout: Duration,
    /// Cap on client SOLVE deadlines; also the default budget when a
    /// client sends none.
    pub deadline_cap: Duration,
    /// Maximum concurrent client connections (0 = unlimited).
    pub max_conns: usize,
    /// Per-client-connection pipelining cap.
    pub max_pipeline: usize,
    /// Base interval between reconnect probes to an unhealthy backend
    /// (doubles per consecutive failure, capped).
    pub probe_interval: Duration,
    /// Byte budget for retained LOAD payloads (rejoin replay).
    pub retained_budget: usize,
    /// Floor on the adaptive hedge threshold: a forwarded SOLVE is never
    /// hedged before it is at least this old. Zero disables hedging.
    pub hedge_after: Duration,
    /// Hedge budget as a fraction of SOLVE sub-requests sent (0.10 = at
    /// most ~10% extra dispatches). Zero disables hedging.
    pub hedge_budget: f64,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replication: 2,
            vnodes: Ring::DEFAULT_VNODES,
            io_timeout: Duration::from_secs(10),
            deadline_cap: Duration::from_secs(30),
            max_conns: 0,
            max_pipeline: 64,
            probe_interval: Duration::from_millis(100),
            retained_budget: 256 << 20,
            hedge_after: Duration::from_millis(50),
            hedge_budget: 0.10,
        }
    }
}

/// Gauges shared between the loop thread and [`RunningRouter`].
struct Shared {
    healthy: AtomicUsize,
    requests: AtomicU64,
    failovers: AtomicU64,
    rejoins: AtomicU64,
    hedges_sent: AtomicU64,
    hedge_wins: AtomicU64,
    crc_rejects: AtomicU64,
    orphan_replies: AtomicU64,
}

/// Handle to a spawned router; dropping it shuts the router down.
pub struct RunningRouter {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// The router entry point.
pub struct Router;

impl Router {
    /// Bind the client-facing listener, spawn the event loop and the
    /// dialer thread, and return immediately. Backends start `Probing`;
    /// use [`RunningRouter::wait_healthy`] to block until the fleet is up.
    pub fn spawn(opts: RouterOptions) -> io::Result<RunningRouter> {
        if opts.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = poller::wake_pair()?;
        let waker = Arc::new(waker);
        let shared = Arc::new(Shared {
            healthy: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            hedges_sent: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            crc_rejects: AtomicU64::new(0),
            orphan_replies: AtomicU64::new(0),
        });
        let (dial_tx, dial_rx) = mpsc::channel::<Dial>();
        let dials = Arc::new(DialQueue {
            items: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        let mut threads = Vec::with_capacity(2);
        {
            let dials = Arc::clone(&dials);
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("tsv-dialer".to_string())
                    .spawn(move || dialer_loop(dial_rx, &dials, &shutdown))?,
            );
        }
        let now = Instant::now();
        let ring = Ring::new(opts.backends.len(), opts.vnodes);
        let backends = opts
            .backends
            .iter()
            .map(|a| Backend::new(a.clone(), now))
            .collect();
        let retained = Retained::new(opts.retained_budget);
        let lp = RouterLoop {
            listener,
            wake_rx,
            dial_tx,
            dials,
            shutdown: Arc::clone(&shutdown),
            shared: Arc::clone(&shared),
            opts,
            ring,
            clients: HashMap::new(),
            next_client: 0,
            backends,
            requests: HashMap::new(),
            next_req: 0,
            retained,
            touched: Vec::new(),
            solve_subs_sent: 0,
        };
        threads.push(
            std::thread::Builder::new()
                .name("tsv-router".to_string())
                .spawn(move || router_loop(lp))?,
        );
        Ok(RunningRouter {
            local_addr,
            shutdown,
            waker,
            shared,
            threads,
        })
    }
}

impl RunningRouter {
    /// The bound client-facing address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Backends currently `Healthy` (connected, replays drained).
    pub fn healthy_backends(&self) -> usize {
        self.shared.healthy.load(Ordering::Acquire)
    }

    /// SOLVE re-routes performed so far (replica failovers).
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Acquire)
    }

    /// Hedge duplicates dispatched so far.
    pub fn hedges_sent(&self) -> u64 {
        self.shared.hedges_sent.load(Ordering::Acquire)
    }

    /// Requests answered by a hedge duplicate rather than the primary.
    pub fn hedge_wins(&self) -> u64 {
        self.shared.hedge_wins.load(Ordering::Acquire)
    }

    /// Frames rejected for a payload-checksum mismatch (corrupt backend
    /// replies and corrupt v4 client requests).
    pub fn crc_rejects(&self) -> u64 {
        self.shared.crc_rejects.load(Ordering::Acquire)
    }

    /// Backend replies that correlated to nothing (duplicates, or replies
    /// landing after their sub-request expired) — dropped, not fatal.
    pub fn orphan_replies(&self) -> u64 {
        self.shared.orphan_replies.load(Ordering::Acquire)
    }

    /// Block until at least `min` backends are `Healthy`, up to `timeout`.
    /// Returns whether the threshold was reached.
    pub fn wait_healthy(&self, min: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.healthy_backends() >= min {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Signal shutdown and join every thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the router shuts down (via a `SHUTDOWN` frame or a
    /// [`RunningRouter::shutdown`] call from another thread), joining every
    /// thread without itself requesting shutdown.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningRouter {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Dialer thread: blocking connects off the event loop
// ---------------------------------------------------------------------------

struct Dial {
    idx: usize,
    addr: String,
}

struct DialDone {
    idx: usize,
    result: io::Result<TcpStream>,
}

struct DialQueue {
    items: Mutex<Vec<DialDone>>,
    waker: Arc<Waker>,
}

impl DialQueue {
    fn push(&self, d: DialDone) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).push(d);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<DialDone> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

fn dialer_loop(rx: Receiver<Dial>, dials: &DialQueue, shutdown: &AtomicBool) {
    while let Ok(d) = rx.recv() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let result = dial(&d.addr);
        dials.push(DialDone { idx: d.idx, result });
    }
}

fn dial(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, Duration::from_secs(1)) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")))
}

// ---------------------------------------------------------------------------
// Request state
// ---------------------------------------------------------------------------

/// Sentinel client id for router-internal requests (rejoin replays).
const INTERNAL: u64 = u64::MAX;

/// A parsed error triple as it travels through failover bookkeeping.
type ErrInfo = (ErrorCode, String, Option<u64>);

enum Kind {
    Solve {
        /// Original SOLVE payload; bytes 16..24 are rewritten with the
        /// remaining budget on each forward.
        payload: Vec<u8>,
        replicas: Vec<usize>,
        /// Next replica index to try.
        next: usize,
        deadline: Instant,
        last_err: Option<ErrInfo>,
        /// Sub-requests currently in flight for this request (> 1 while a
        /// hedge races the primary). A transient failure on one arm only
        /// fails over once the other arm has also resolved.
        subs: usize,
        /// Whether a hedge was already dispatched (one per request).
        hedged: bool,
    },
    Load {
        outstanding: usize,
        reply: Option<Vec<u8>>,
        last_err: Option<ErrInfo>,
    },
    Evict {
        existed: bool,
        outstanding: usize,
        /// `(backend index, status)` per replica in ring order; status
        /// defaults to `2` (unreachable) until a reply lands.
        outcomes: Vec<(usize, u8)>,
    },
    Stats {
        outstanding: usize,
        acc: BTreeMap<String, u64>,
    },
    /// Internal retained-LOAD replay toward a rejoining backend.
    Rejoin { backend: usize },
}

struct Request {
    client: u64,
    seq: u64,
    /// The client's wire request id, echoed in the reply envelope when the
    /// client negotiated v4 (`None` on legacy client connections).
    cwire: Option<u64>,
    kind: Kind,
}

/// What a backend reply (or sub-request failure) resolved into, computed
/// under the `requests` borrow and acted on after it drops.
enum Step {
    /// Fan-out still has outstanding sub-requests.
    Pending,
    /// The request is complete: answer the client with this reply
    /// (opcode, payload) — enveloped at the edge if the client is v4.
    Reply(u8, Vec<u8>),
    /// Solve failover: try the next replica.
    Retry,
    /// A STATS fan-out completed; build the fleet reply from this
    /// accumulator (carried out of the `requests` borrow because the
    /// reply also reads router-wide state).
    StatsDone(BTreeMap<String, u64>),
    /// A rejoin replay finished for this backend.
    Rejoined(usize),
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

enum Token {
    Client(u64),
    Backend(usize),
}

struct RouterLoop {
    listener: TcpListener,
    wake_rx: TcpStream,
    dial_tx: Sender<Dial>,
    dials: Arc<DialQueue>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    opts: RouterOptions,
    ring: Ring,
    clients: HashMap<u64, Conn>,
    next_client: u64,
    backends: Vec<Backend>,
    requests: HashMap<u64, Request>,
    next_req: u64,
    retained: Retained,
    /// Clients whose reply state changed off the socket-readiness path
    /// (backend replies, failures); they need a write/extract pass.
    touched: Vec<u64>,
    /// SOLVE sub-requests dispatched (hedges included); the denominator of
    /// the hedge budget.
    solve_subs_sent: u64,
}

fn router_loop(mut lp: RouterLoop) {
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    loop {
        let now = Instant::now();
        for d in lp.dials.drain() {
            lp.on_dial_done(d, now);
        }
        if lp.shutdown.load(Ordering::SeqCst) {
            lp.drain_and_exit();
            return;
        }
        lp.check_backend_timeouts(now);
        lp.check_hedges(now);
        lp.start_due_dials(now);
        lp.flush_touched();

        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(poller::fd_of(&lp.listener), Interest::read()));
        fds.push(PollFd::new(poller::fd_of(&lp.wake_rx), Interest::read()));
        for (&id, conn) in lp.clients.iter() {
            fds.push(PollFd::new(
                poller::fd_of(&conn.stream),
                Interest {
                    readable: conn.wants_read(lp.opts.max_pipeline),
                    writable: conn.wants_write(),
                },
            ));
            tokens.push(Token::Client(id));
        }
        for (i, b) in lp.backends.iter().enumerate() {
            if let Some(conn) = &b.conn {
                fds.push(PollFd::new(
                    poller::fd_of(&conn.stream),
                    Interest {
                        readable: true,
                        writable: conn.wants_write(),
                    },
                ));
                tokens.push(Token::Backend(i));
            }
        }

        let timeout = lp.nearest_deadline();
        if poller::wait(&mut fds, timeout).is_err() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if fds[1].ready.readable || fds[1].ready.hangup {
            poller::drain(&mut lp.wake_rx);
        }
        if fds[0].ready.readable {
            lp.accept_ready();
        }
        let now = Instant::now();
        for (k, tok) in tokens.iter().enumerate() {
            let ready = fds[k + 2].ready;
            match *tok {
                Token::Backend(b) => lp.service_backend(b, ready, now),
                Token::Client(id) => lp.service_client(id, ready, now),
            }
        }
        lp.flush_touched();
    }
}

impl RouterLoop {
    // -- time-driven maintenance --------------------------------------------

    /// Reply-deadline sweep. On a legacy (FIFO) backend a blown head
    /// condemns the whole connection — FIFO correlation cannot skip a
    /// reply. On a v4 backend each expired sub-request fails *alone* (the
    /// id map correlates whatever else still arrives), and only a stuck
    /// write or a hung `HELLO` answer condemns the connection.
    fn check_backend_timeouts(&mut self, now: Instant) {
        for b in 0..self.backends.len() {
            let condemned = self.backends[b]
                .fifo
                .front()
                .is_some_and(|h| now >= h.expires)
                || self.backends[b].hello_deadline.is_some_and(|d| now >= d)
                || self.backends[b]
                    .conn
                    .as_ref()
                    .is_some_and(|c| c.write_deadline.is_some_and(|d| now >= d));
            if condemned {
                self.backend_failure(b, now);
                continue;
            }
            let expired: Vec<u64> = self.backends[b]
                .inflight
                .iter()
                .filter(|(_, s)| now >= s.expires)
                .map(|(&w, _)| w)
                .collect();
            let hint = self.retry_hint_ms();
            for wire in expired {
                if let Some(sub) = self.backends[b].inflight.remove(&wire) {
                    self.fail_sub(b, sub, now, hint);
                }
            }
        }
    }

    /// Dispatch hedge duplicates for SOLVE sub-requests that outlived
    /// their backend's adaptive threshold. Each sub-request is considered
    /// exactly once — a hedge that cannot be dispatched (budget spent, no
    /// spare replica, request already hedged) is forfeited rather than
    /// retried, so this sweep never wakes the loop twice for the same sub.
    fn check_hedges(&mut self, now: Instant) {
        if !self.hedging_enabled() {
            return;
        }
        let floor = self.opts.hedge_after;
        let mut due: Vec<u64> = Vec::new();
        for b in &mut self.backends {
            let thr = b.latency.p99().max(floor);
            for sub in b.inflight.values_mut().chain(b.fifo.iter_mut()) {
                if sub.hedge_eligible && now >= sub.sent + thr {
                    sub.hedge_eligible = false;
                    due.push(sub.req);
                }
            }
        }
        for rid in due {
            self.try_send_hedge(rid, now);
        }
    }

    fn hedging_enabled(&self) -> bool {
        self.opts.hedge_budget > 0.0 && !self.opts.hedge_after.is_zero()
    }

    /// `hedges_sent + 1 ≤ ceil(hedge_budget · solve_subs_sent)`?
    fn hedge_budget_allows(&self) -> bool {
        let cap = (self.opts.hedge_budget * self.solve_subs_sent as f64).ceil() as u64;
        self.shared.hedges_sent.load(Ordering::Relaxed) < cap
    }

    fn start_due_dials(&mut self, now: Instant) {
        for (i, b) in self.backends.iter_mut().enumerate() {
            if b.wants_dial(now) {
                b.dialing = true;
                let _ = self.dial_tx.send(Dial {
                    idx: i,
                    addr: b.addr.clone(),
                });
            }
        }
    }

    fn nearest_deadline(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut best: Option<Instant> = None;
        let mut consider = |t: Option<Instant>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: Instant| b.min(t)));
            }
        };
        for conn in self.clients.values() {
            consider(conn.read_deadline);
            consider(conn.write_deadline);
        }
        let hedging = self.hedging_enabled();
        let floor = self.opts.hedge_after;
        for b in &self.backends {
            if let Some(conn) = &b.conn {
                consider(conn.write_deadline);
                consider(b.hello_deadline);
                consider(b.fifo.front().map(|h| h.expires));
                let thr = if hedging {
                    Some(b.latency.p99().max(floor))
                } else {
                    None
                };
                for sub in b.inflight.values().chain(b.fifo.iter()) {
                    consider(Some(sub.expires));
                    if let Some(thr) = thr {
                        if sub.hedge_eligible {
                            consider(Some(sub.sent + thr));
                        }
                    }
                }
            } else if !b.dialing {
                consider(Some(b.next_probe));
            }
        }
        best.map(|t| t.saturating_duration_since(now))
    }

    fn set_healthy_gauge(&self) {
        let n = self.backends.iter().filter(|b| b.usable()).count();
        self.shared.healthy.store(n, Ordering::Release);
    }

    // -- dialing and rejoin --------------------------------------------------

    fn on_dial_done(&mut self, d: DialDone, now: Instant) {
        self.backends[d.idx].dialing = false;
        match d.result {
            Err(_) => {
                self.backends[d.idx].note_failure(now, self.opts.probe_interval);
            }
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    self.backends[d.idx].note_failure(now, self.opts.probe_interval);
                    return;
                }
                let mut conn = Conn::new(stream);
                // Version negotiation opens every backend connection; the
                // rejoin replays queue only once the answer settles the
                // framing (they must be enveloped iff the peer is v4).
                conn.enqueue(&encode_frame(
                    op::HELLO,
                    &Builder::new().u16(PROTOCOL_VERSION).build(),
                ));
                self.backends[d.idx].conn = Some(conn);
                self.backends[d.idx].note_connected();
                self.backends[d.idx].proto = Proto::Negotiating;
                self.backends[d.idx].hello_deadline =
                    Some(now + self.opts.io_timeout.max(Duration::from_secs(1)));
                self.shared.rejoins.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The `HELLO` answer landed: settle the connection's framing, then
    /// queue the warm-standby replays (re-LOAD every retained factor the
    /// ring places on this backend) before it takes new traffic.
    fn finish_negotiation(&mut self, b: usize, opcode: u8, payload: &[u8], now: Instant) {
        let proto = match opcode {
            op::OK_HELLO => match Cursor::new(payload).u16() {
                Ok(theirs) if theirs >= 4 => Proto::V4,
                Ok(_) => Proto::Fifo,
                Err(_) => {
                    self.backend_failure(b, now);
                    return;
                }
            },
            // A pre-v4 backend does not know HELLO; the refusal leaves its
            // connection open and IS the downgrade signal.
            op::ERR => match parse_err(payload) {
                Ok((Some(ErrorCode::UnknownOpcode), _, _)) => Proto::Fifo,
                _ => {
                    self.backend_failure(b, now);
                    return;
                }
            },
            _ => {
                self.backend_failure(b, now);
                return;
            }
        };
        self.backends[b].proto = proto;
        self.backends[b].hello_deadline = None;
        let replays: Vec<Vec<u8>> = self
            .retained
            .iter()
            .filter(|(fp, _)| self.ring.replicas(**fp, self.opts.replication).contains(&b))
            .map(|(_, payload)| payload.clone())
            .collect();
        let expires = now + self.sub_request_backstop();
        for payload in replays {
            let rid = self.new_request(Request {
                client: INTERNAL,
                seq: 0,
                cwire: None,
                kind: Kind::Rejoin { backend: b },
            });
            self.backends[b].rejoining += 1;
            self.send_sub(b, op::LOAD, &payload, SubReq::new(rid, expires, now, false));
        }
        if self.backends[b].rejoining == 0 {
            self.backends[b].finish_rejoin();
        }
        self.set_healthy_gauge();
    }

    /// Backstop for a backend to answer a fan-out/replay sub-request.
    fn sub_request_backstop(&self) -> Duration {
        self.opts
            .io_timeout
            .max(self.opts.deadline_cap)
            .max(Duration::from_secs(1))
    }

    /// Hint handed to clients when no replica is reachable: roughly one
    /// probe cycle out.
    fn retry_hint_ms(&self) -> u64 {
        (self.opts.probe_interval.as_millis() as u64).max(1) * 2
    }

    // -- backend I/O ---------------------------------------------------------

    fn send_sub(&mut self, b: usize, opcode: u8, payload: &[u8], sub: SubReq) {
        if sub.solve {
            self.solve_subs_sent += 1;
        }
        let backend = &mut self.backends[b];
        let Some(conn) = backend.conn.as_mut() else {
            return;
        };
        if backend.proto == Proto::V4 {
            let wire = backend.next_wire;
            backend.next_wire += 1;
            conn.enqueue(&encode_frame(opcode, &wrap_v4(opcode, wire, payload)));
            backend.inflight.insert(wire, sub);
        } else {
            conn.enqueue(&encode_frame(opcode, payload));
            backend.fifo.push_back(sub);
        }
    }

    fn service_backend(&mut self, b: usize, ready: poller::Readiness, now: Instant) {
        if ready.readable || ready.hangup {
            let status = {
                let Some(conn) = self.backends[b].conn.as_mut() else {
                    return;
                };
                conn.read_some()
            };
            let status = match status {
                Ok(s) => s,
                Err(_) => {
                    self.backend_failure(b, now);
                    return;
                }
            };
            loop {
                let step = {
                    let Some(conn) = self.backends[b].conn.as_mut() else {
                        return;
                    };
                    conn.next_frame()
                };
                match step {
                    FrameStep::Incomplete => break,
                    FrameStep::BadLength(_) => {
                        self.backend_failure(b, now);
                        return;
                    }
                    FrameStep::Frame { opcode, payload } => {
                        self.handle_backend_reply(b, opcode, payload, now);
                    }
                }
            }
            if let Some(conn) = self.backends[b].conn.as_mut() {
                conn.compact();
            }
            if status == ReadStatus::Eof {
                self.backend_failure(b, now);
                return;
            }
        }
        let write_failed = match self.backends[b].conn.as_mut() {
            Some(conn) if ready.writable || conn.wants_write() => {
                conn.try_write(self.opts.io_timeout).is_err()
            }
            _ => false,
        };
        if write_failed {
            self.backend_failure(b, now);
        }
    }

    fn handle_backend_reply(&mut self, b: usize, opcode: u8, payload: Vec<u8>, now: Instant) {
        if self.backends[b].proto == Proto::Negotiating {
            self.finish_negotiation(b, opcode, &payload, now);
            return;
        }
        let (sub, payload) = if self.backends[b].proto == Proto::V4 {
            match unwrap_v4(opcode, &payload) {
                Ok((wire, inner)) => {
                    let inner = inner.to_vec();
                    match self.backends[b].inflight.remove(&wire) {
                        Some(sub) => (sub, inner),
                        None => {
                            // Duplicate, or late after its sub-request
                            // expired: correlates to nothing. Ids never
                            // reuse, so dropping it is safe and the
                            // connection keeps serving.
                            self.shared.orphan_replies.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                Err(_) => {
                    // Corrupt frame (or a legacy-encoded close-path ERR):
                    // the id field cannot be trusted, so count and drop.
                    // The owning sub-request runs into its own expiry; if
                    // the connection is really dying, the EOF that follows
                    // a close-path ERR tears it down.
                    self.shared.crc_rejects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        } else {
            match self.backends[b].fifo.pop_front() {
                Some(sub) => (sub, payload),
                None => {
                    // A reply with nothing in flight: a duplicate, or one
                    // that arrived after a condemnation already drained the
                    // FIFO. Count it and drop it — condemning the
                    // connection here (as the router once did) turns one
                    // stray frame into a full teardown and a rejoin storm.
                    self.shared.orphan_replies.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        // The adaptive hedge threshold learns from replies that *served* a
        // request, and only from un-hedged SOLVEs. Hedge arms are born
        // past the threshold (counting them skews the window upward), and
        // late losers are exactly the tail the hedge routed around —
        // feeding them back in would walk the threshold up to the stall
        // and the hedger would never fire early again.
        if sub.solve && !sub.hedge && self.requests.contains_key(&sub.req) {
            self.backends[b]
                .latency
                .record(now.saturating_duration_since(sub.sent));
        }
        let rid = sub.req;
        let step = {
            let Some(req) = self.requests.get_mut(&rid) else {
                // Already resolved: a hedge raced this arm and won (or the
                // request failed over past it). A late loser, not an error.
                return;
            };
            match &mut req.kind {
                Kind::Solve { last_err, subs, .. } => {
                    *subs = subs.saturating_sub(1);
                    match opcode {
                        op::OK_SOLVED => {
                            if sub.hedge {
                                self.shared.hedge_wins.fetch_add(1, Ordering::Relaxed);
                            }
                            Step::Reply(op::OK_SOLVED, payload)
                        }
                        op::ERR => {
                            let parsed = parse_err(&payload).unwrap_or_else(|e| {
                                (
                                    Some(ErrorCode::Internal),
                                    format!("undecodable backend error: {e}"),
                                    None,
                                )
                            });
                            let code = parsed.0.unwrap_or(ErrorCode::Internal);
                            *last_err = Some((code, parsed.1, parsed.2));
                            match code {
                                // Transient-at-this-replica: shed under
                                // load, a stale rejoin, or a backend-side
                                // stall. The factor lives elsewhere too —
                                // go there, once every arm has resolved.
                                ErrorCode::Busy
                                | ErrorCode::UnknownFingerprint
                                | ErrorCode::Timeout => {
                                    if *subs > 0 {
                                        Step::Pending
                                    } else {
                                        Step::Retry
                                    }
                                }
                                _ => {
                                    let (c, m, h) = last_err.clone().expect("just set");
                                    Step::Reply(op::ERR, err_payload(c, &m, h))
                                }
                            }
                        }
                        other => Step::Reply(
                            op::ERR,
                            err_payload(
                                ErrorCode::Internal,
                                &format!("unexpected backend reply opcode 0x{other:02x}"),
                                None,
                            ),
                        ),
                    }
                }
                Kind::Load {
                    outstanding,
                    reply,
                    last_err,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    match opcode {
                        op::OK_LOADED if reply.is_none() => *reply = Some(payload),
                        op::OK_LOADED => {}
                        op::ERR => {
                            let parsed = parse_err(&payload).unwrap_or_else(|e| {
                                (
                                    Some(ErrorCode::Internal),
                                    format!("undecodable backend error: {e}"),
                                    None,
                                )
                            });
                            *last_err =
                                Some((parsed.0.unwrap_or(ErrorCode::Internal), parsed.1, parsed.2));
                        }
                        _ => {
                            *last_err = Some((
                                ErrorCode::Internal,
                                "unexpected backend reply".into(),
                                None,
                            ));
                        }
                    }
                    finish_load(*outstanding, reply, last_err)
                }
                Kind::Evict {
                    existed,
                    outstanding,
                    outcomes,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    let status = match opcode {
                        op::OK_EVICTED => {
                            let hit = payload.first().copied().unwrap_or(0) != 0;
                            *existed |= hit;
                            u8::from(hit)
                        }
                        op::ERR => match parse_err(&payload) {
                            Ok((Some(ErrorCode::UnknownFingerprint), _, _)) => 0,
                            _ => 2,
                        },
                        _ => 2,
                    };
                    if let Some(slot) = outcomes.iter_mut().find(|(bb, _)| *bb == b) {
                        slot.1 = status;
                    }
                    if *outstanding == 0 {
                        Step::Reply(
                            op::OK_EVICTED,
                            evict_reply(*existed, outcomes, &self.opts.backends),
                        )
                    } else {
                        Step::Pending
                    }
                }
                Kind::Stats { outstanding, acc } => {
                    *outstanding = outstanding.saturating_sub(1);
                    if opcode == op::OK_STATS {
                        accumulate_stats(acc, &payload);
                    }
                    if *outstanding == 0 {
                        Step::StatsDone(std::mem::take(acc))
                    } else {
                        Step::Pending
                    }
                }
                Kind::Rejoin { backend } => Step::Rejoined(*backend),
            }
        };
        self.apply_step(rid, step, now);
    }

    fn apply_step(&mut self, rid: u64, step: Step, now: Instant) {
        match step {
            Step::Pending => {}
            Step::Reply(opcode, payload) => {
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(req.client, req.seq, req.cwire, opcode, &payload, false);
                }
            }
            Step::Retry => {
                self.shared.failovers.fetch_add(1, Ordering::Relaxed);
                self.try_send_solve(rid, now);
            }
            Step::StatsDone(acc) => {
                let payload = self.stats_reply_payload(&acc);
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(
                        req.client,
                        req.seq,
                        req.cwire,
                        op::OK_STATS,
                        &payload,
                        false,
                    );
                }
            }
            Step::Rejoined(b) => {
                self.requests.remove(&rid);
                if self.backends[b].finish_rejoin() {
                    self.set_healthy_gauge();
                }
            }
        }
    }

    /// Tear down a backend connection: every in-flight sub-request on it
    /// (FIFO and id-correlated alike) fails over (solves) or counts
    /// against its fan-out (everything else), and the breaker schedules a
    /// reconnect probe.
    fn backend_failure(&mut self, b: usize, now: Instant) {
        let mut drained: Vec<SubReq> = self.backends[b].fifo.drain(..).collect();
        drained.extend(self.backends[b].inflight.drain().map(|(_, s)| s));
        self.backends[b].note_failure(now, self.opts.probe_interval);
        self.set_healthy_gauge();
        let hint = self.retry_hint_ms();
        for sub in drained {
            self.fail_sub(b, sub, now, hint);
        }
    }

    /// Resolve one failed sub-request — expired individually on a v4
    /// backend, or drained from a torn-down connection — against its
    /// request. A hedged SOLVE with another arm still running stays
    /// pending; failover happens only once every arm has resolved.
    fn fail_sub(&mut self, b: usize, sub: SubReq, now: Instant, hint: u64) {
        let rid = sub.req;
        let step = {
            let Some(req) = self.requests.get_mut(&rid) else {
                return;
            };
            match &mut req.kind {
                Kind::Solve { last_err, subs, .. } => {
                    *subs = subs.saturating_sub(1);
                    *last_err = Some((
                        ErrorCode::Busy,
                        format!("backend {} unreachable", self.backends[b].addr),
                        Some(hint),
                    ));
                    if *subs > 0 {
                        Step::Pending
                    } else {
                        Step::Retry
                    }
                }
                Kind::Load {
                    outstanding,
                    reply,
                    last_err,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    if last_err.is_none() {
                        *last_err = Some((
                            ErrorCode::Busy,
                            format!("backend {} unreachable", self.backends[b].addr),
                            Some(hint),
                        ));
                    }
                    finish_load(*outstanding, reply, last_err)
                }
                Kind::Evict {
                    existed,
                    outstanding,
                    outcomes,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    if *outstanding == 0 {
                        Step::Reply(
                            op::OK_EVICTED,
                            evict_reply(*existed, outcomes, &self.opts.backends),
                        )
                    } else {
                        Step::Pending
                    }
                }
                Kind::Stats { outstanding, acc } => {
                    *outstanding = outstanding.saturating_sub(1);
                    if *outstanding == 0 {
                        Step::StatsDone(std::mem::take(acc))
                    } else {
                        Step::Pending
                    }
                }
                // The replay died with its sub-request; account for it so a
                // Standby backend still promotes (solve failover covers a
                // replica that genuinely lacks the factor).
                Kind::Rejoin { backend } => Step::Rejoined(*backend),
            }
        };
        self.apply_step(rid, step, now);
    }

    // -- solve forwarding / failover ----------------------------------------

    fn try_send_solve(&mut self, rid: u64, now: Instant) {
        enum Action {
            Send {
                b: usize,
                frame_payload: Vec<u8>,
                expires: Instant,
            },
            Fail(ErrInfo),
            Gone,
        }
        let action = {
            let Some(req) = self.requests.get_mut(&rid) else {
                return;
            };
            if req.client != INTERNAL && !self.clients.contains_key(&req.client) {
                Action::Gone
            } else {
                let Kind::Solve {
                    payload,
                    replicas,
                    next,
                    deadline,
                    last_err,
                    subs,
                    ..
                } = &mut req.kind
                else {
                    return;
                };
                if now >= *deadline {
                    Action::Fail((
                        ErrorCode::Deadline,
                        "deadline expired during routing".into(),
                        None,
                    ))
                } else {
                    let mut chosen = None;
                    let mut skipped = 0u64;
                    while *next < replicas.len() {
                        let b = replicas[*next];
                        *next += 1;
                        if self.backends[b].usable() {
                            chosen = Some(b);
                            break;
                        }
                        // routing around a down replica is a failover even
                        // when no request ever reached it
                        skipped += 1;
                    }
                    self.shared.failovers.fetch_add(skipped, Ordering::Relaxed);
                    match chosen {
                        Some(b) => {
                            *subs += 1;
                            let remaining =
                                deadline.saturating_duration_since(now).as_millis() as u64;
                            let mut fwd = payload.clone();
                            fwd[16..24].copy_from_slice(&remaining.max(1).to_le_bytes());
                            Action::Send {
                                b,
                                frame_payload: fwd,
                                expires: *deadline
                                    + self.opts.io_timeout.max(Duration::from_secs(1)),
                            }
                        }
                        None => Action::Fail(last_err.clone().unwrap_or((
                            ErrorCode::Busy,
                            "no healthy replica for fingerprint".into(),
                            Some(self.retry_hint_ms()),
                        ))),
                    }
                }
            }
        };
        match action {
            Action::Gone => {
                self.requests.remove(&rid);
            }
            Action::Fail((code, msg, hint)) => {
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(
                        req.client,
                        req.seq,
                        req.cwire,
                        op::ERR,
                        &err_payload(code, &msg, hint),
                        false,
                    );
                }
            }
            Action::Send {
                b,
                frame_payload,
                expires,
            } => {
                self.send_sub(
                    b,
                    op::SOLVE,
                    &frame_payload,
                    SubReq::new(rid, expires, now, true),
                );
            }
        }
    }

    /// Duplicate a slow SOLVE to the next replica in ring order: the first
    /// valid reply wins, the loser resolves by request id without harm.
    /// The remaining deadline is rewritten for the hedge hop exactly as it
    /// is for a failover. At most one hedge per request, and only within
    /// the hedge budget.
    fn try_send_hedge(&mut self, rid: u64, now: Instant) {
        if !self.hedge_budget_allows() {
            return;
        }
        struct Hedge {
            b: usize,
            frame_payload: Vec<u8>,
            expires: Instant,
        }
        let action = {
            let Some(req) = self.requests.get_mut(&rid) else {
                return;
            };
            let Kind::Solve {
                payload,
                replicas,
                next,
                deadline,
                subs,
                hedged,
                ..
            } = &mut req.kind
            else {
                return;
            };
            if *hedged || now >= *deadline {
                None
            } else {
                let mut chosen = None;
                let mut skipped = 0u64;
                let mut i = *next;
                while i < replicas.len() {
                    let b = replicas[i];
                    i += 1;
                    if self.backends[b].usable() {
                        chosen = Some(b);
                        break;
                    }
                    skipped += 1;
                }
                chosen.map(|b| {
                    // replicas skipped here are consumed exactly as the
                    // failover path consumes them, so count them the same
                    self.shared.failovers.fetch_add(skipped, Ordering::Relaxed);
                    *next = i;
                    *hedged = true;
                    *subs += 1;
                    let remaining = deadline.saturating_duration_since(now).as_millis() as u64;
                    let mut fwd = payload.clone();
                    fwd[16..24].copy_from_slice(&remaining.max(1).to_le_bytes());
                    Hedge {
                        b,
                        frame_payload: fwd,
                        expires: *deadline + self.opts.io_timeout.max(Duration::from_secs(1)),
                    }
                })
            }
        };
        if let Some(h) = action {
            self.shared.hedges_sent.fetch_add(1, Ordering::Relaxed);
            self.send_sub(
                h.b,
                op::SOLVE,
                &h.frame_payload,
                SubReq::new_hedge(rid, h.expires, now),
            );
        }
    }

    // -- client I/O ----------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.opts.max_conns != 0 && self.clients.len() >= self.opts.max_conns {
                let mut stream = stream;
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = write_frame(
                    &mut stream,
                    op::ERR,
                    &err_payload(
                        ErrorCode::Busy,
                        "router connection limit reached",
                        Some(self.retry_hint_ms()),
                    ),
                );
                continue;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let id = self.next_client;
            self.next_client += 1;
            self.clients.insert(id, Conn::new(stream));
        }
    }

    fn service_client(&mut self, id: u64, ready: poller::Readiness, now: Instant) {
        let mut close = false;
        if ready.readable || ready.hangup {
            let status = {
                let Some(conn) = self.clients.get_mut(&id) else {
                    return;
                };
                conn.read_some()
            };
            match status {
                Err(_) => close = true,
                Ok(st) => {
                    self.extract_client_frames(id, now);
                    if st == ReadStatus::Eof {
                        if let Some(conn) = self.clients.get_mut(&id) {
                            conn.close_input();
                        }
                    }
                }
            }
        }
        let Some(conn) = self.clients.get_mut(&id) else {
            return;
        };
        if !close && (ready.writable || conn.wants_write()) {
            close = conn.try_write(self.opts.io_timeout).is_err();
        }
        if !close {
            if conn.read_deadline.is_some_and(|d| now >= d) {
                conn.fail_and_close(encode_frame(
                    op::ERR,
                    &err_payload(ErrorCode::Timeout, "slow peer: frame stalled", None),
                ));
                let _ = conn.try_write(self.opts.io_timeout);
            }
            if conn.write_deadline.is_some_and(|d| now >= d) {
                close = true;
            }
        }
        if close || conn.finished() {
            self.clients.remove(&id);
        }
    }

    fn extract_client_frames(&mut self, id: u64, now: Instant) {
        let mut extracted = false;
        loop {
            let step = {
                let Some(conn) = self.clients.get_mut(&id) else {
                    return;
                };
                if !conn.can_extract(self.opts.max_pipeline) {
                    break;
                }
                conn.next_frame()
            };
            match step {
                FrameStep::Incomplete => break,
                FrameStep::BadLength(len) => {
                    let code = if len > MAX_FRAME_LEN {
                        ErrorCode::TooLarge
                    } else {
                        ErrorCode::Malformed
                    };
                    if let Some(conn) = self.clients.get_mut(&id) {
                        conn.fail_and_close(encode_frame(
                            op::ERR,
                            &err_payload(code, &format!("bad frame length {len}"), None),
                        ));
                    }
                    break;
                }
                FrameStep::Frame { opcode, payload } => {
                    extracted = true;
                    let (is_v4, begun) = {
                        let Some(conn) = self.clients.get_mut(&id) else {
                            return;
                        };
                        (conn.is_v4(), conn.requests_begun())
                    };
                    // Version negotiation: first frame only, answered
                    // inline (it must settle the framing before any
                    // pipelined request is parsed).
                    if opcode == op::HELLO && !is_v4 && begun == 0 {
                        let reply = match Cursor::new(&payload).u16() {
                            Ok(theirs) => {
                                let negotiated = theirs.min(PROTOCOL_VERSION);
                                if negotiated >= 4 {
                                    if let Some(conn) = self.clients.get_mut(&id) {
                                        conn.set_v4();
                                    }
                                }
                                encode_frame(op::OK_HELLO, &Builder::new().u16(negotiated).build())
                            }
                            Err(msg) => encode_frame(
                                op::ERR,
                                &err_payload(ErrorCode::Malformed, &msg, None),
                            ),
                        };
                        if let Some(conn) = self.clients.get_mut(&id) {
                            conn.enqueue(&reply);
                        }
                        continue;
                    }
                    let mut payload = payload;
                    let mut cwire = None;
                    if is_v4 {
                        match unwrap_v4(opcode, &payload) {
                            Ok((w, inner)) => {
                                cwire = Some(w);
                                payload = inner.to_vec();
                            }
                            Err(e) => {
                                // Refuse the damaged frame, keep the
                                // connection: framing is still intact, and
                                // the id hint lets the client correlate.
                                let (code, msg) = match e {
                                    trisolv_server::protocol::EnvelopeError::Checksum => {
                                        self.shared.crc_rejects.fetch_add(1, Ordering::Relaxed);
                                        (ErrorCode::Corrupt, "payload checksum mismatch")
                                    }
                                    trisolv_server::protocol::EnvelopeError::TooShort => (
                                        ErrorCode::Malformed,
                                        "payload shorter than the v4 envelope",
                                    ),
                                };
                                let hint = v4_req_id_hint(&payload);
                                let err = err_payload(code, msg, None);
                                let frame = encode_frame(op::ERR, &wrap_v4(op::ERR, hint, &err));
                                if let Some(conn) = self.clients.get_mut(&id) {
                                    conn.enqueue(&frame);
                                }
                                continue;
                            }
                        }
                    }
                    let seq = {
                        let Some(conn) = self.clients.get_mut(&id) else {
                            return;
                        };
                        conn.begin_request()
                    };
                    self.dispatch_client(id, seq, cwire, opcode, payload, now);
                }
            }
        }
        if let Some(conn) = self.clients.get_mut(&id) {
            conn.compact();
            conn.update_read_deadline(self.opts.io_timeout, extracted);
        }
    }

    /// Complete one client request: the reply is enveloped (echoing the
    /// client's wire request id) when the client negotiated v4, and sent
    /// bare on legacy connections.
    fn finish_client(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        opcode: u8,
        payload: &[u8],
        close: bool,
    ) {
        let frame = match cwire {
            Some(w) => encode_frame(opcode, &wrap_v4(opcode, w, payload)),
            None => encode_frame(opcode, payload),
        };
        if let Some(conn) = self.clients.get_mut(&id) {
            conn.finish(
                seq,
                if close {
                    Outcome::ReplyThenClose(frame)
                } else {
                    Outcome::Reply(frame)
                },
            );
            self.touched.push(id);
        }
    }

    /// Write/extract pass over clients whose state changed off the
    /// readiness path (a backend reply finished one of their requests).
    /// The re-extraction mirrors the server loop's completion edge: frames
    /// past the pipeline cap sit in `read_buf` where poll cannot see them,
    /// so a freed slot must resume the parser.
    fn flush_touched(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.touched);
        ids.sort_unstable();
        ids.dedup();
        let now = Instant::now();
        for id in ids {
            self.extract_client_frames(id, now);
            let Some(conn) = self.clients.get_mut(&id) else {
                continue;
            };
            let close = conn.try_write(self.opts.io_timeout).is_err() || conn.finished();
            if close {
                self.clients.remove(&id);
            }
        }
    }

    // -- request dispatch ----------------------------------------------------

    fn new_request(&mut self, req: Request) -> u64 {
        let rid = self.next_req;
        self.next_req += 1;
        self.requests.insert(rid, req);
        rid
    }

    fn reply_err(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        code: ErrorCode,
        msg: &str,
        hint: Option<u64>,
    ) {
        self.finish_client(
            id,
            seq,
            cwire,
            op::ERR,
            &err_payload(code, msg, hint),
            false,
        );
    }

    fn dispatch_client(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        opcode: u8,
        payload: Vec<u8>,
        now: Instant,
    ) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        match opcode {
            op::SOLVE => self.dispatch_solve(id, seq, cwire, payload, now),
            op::LOAD => self.dispatch_load(id, seq, cwire, payload, now),
            op::EVICT => self.dispatch_evict(id, seq, cwire, &payload, now),
            op::STATS => self.dispatch_stats(id, seq, cwire, now),
            op::SHUTDOWN => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.finish_client(id, seq, cwire, op::OK_BYE, &[], true);
            }
            other => self.reply_err(
                id,
                seq,
                cwire,
                ErrorCode::UnknownOpcode,
                &format!("unknown request opcode 0x{other:02x}"),
                None,
            ),
        }
    }

    fn dispatch_solve(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        payload: Vec<u8>,
        now: Instant,
    ) {
        if payload.len() < 32 {
            self.reply_err(
                id,
                seq,
                cwire,
                ErrorCode::Malformed,
                "short SOLVE payload",
                None,
            );
            return;
        }
        let fp = Fingerprint::from_bytes(payload[..16].try_into().expect("16 bytes"));
        let client_ms = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
        let budget = effective_budget(client_ms, self.opts.deadline_cap);
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let rid = self.new_request(Request {
            client: id,
            seq,
            cwire,
            kind: Kind::Solve {
                payload,
                replicas,
                next: 0,
                deadline: now + budget,
                last_err: None,
                subs: 0,
                hedged: false,
            },
        });
        self.try_send_solve(rid, now);
    }

    fn dispatch_load(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        payload: Vec<u8>,
        now: Instant,
    ) {
        let fp = match load_fingerprint(&payload) {
            Ok(fp) => fp,
            Err(msg) => {
                self.reply_err(id, seq, cwire, ErrorCode::Malformed, &msg, None);
                return;
            }
        };
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let targets: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let hint = self.retry_hint_ms();
            self.reply_err(
                id,
                seq,
                cwire,
                ErrorCode::Busy,
                "no healthy replica to load onto",
                Some(hint),
            );
            return;
        }
        self.retained.insert(fp, payload.clone());
        let rid = self.new_request(Request {
            client: id,
            seq,
            cwire,
            kind: Kind::Load {
                outstanding: targets.len(),
                reply: None,
                last_err: None,
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(b, op::LOAD, &payload, SubReq::new(rid, expires, now, false));
        }
    }

    fn dispatch_evict(
        &mut self,
        id: u64,
        seq: u64,
        cwire: Option<u64>,
        payload: &[u8],
        now: Instant,
    ) {
        let fp = {
            let mut c = Cursor::new(payload);
            match c.fingerprint().and_then(|fp| c.finish().map(|_| fp)) {
                Ok(fp) => fp,
                Err(msg) => {
                    self.reply_err(id, seq, cwire, ErrorCode::Malformed, &msg, None);
                    return;
                }
            }
        };
        self.retained.remove(fp);
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let outcomes: Vec<(usize, u8)> = replicas.iter().map(|&b| (b, 2u8)).collect();
        let targets: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let payload = evict_reply(false, &outcomes, &self.opts.backends);
            self.finish_client(id, seq, cwire, op::OK_EVICTED, &payload, false);
            return;
        }
        let rid = self.new_request(Request {
            client: id,
            seq,
            cwire,
            kind: Kind::Evict {
                existed: false,
                outstanding: targets.len(),
                outcomes,
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(
                b,
                op::EVICT,
                &fp.to_bytes(),
                SubReq::new(rid, expires, now, false),
            );
        }
    }

    fn dispatch_stats(&mut self, id: u64, seq: u64, cwire: Option<u64>, now: Instant) {
        let targets: Vec<usize> = (0..self.backends.len())
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let payload = self.stats_reply_payload(&BTreeMap::new());
            self.finish_client(id, seq, cwire, op::OK_STATS, &payload, false);
            return;
        }
        let rid = self.new_request(Request {
            client: id,
            seq,
            cwire,
            kind: Kind::Stats {
                outstanding: targets.len(),
                acc: BTreeMap::new(),
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(b, op::STATS, &[], SubReq::new(rid, expires, now, false));
        }
    }

    /// The fleet STATS view: summed backend counters plus `router_*` keys.
    fn stats_reply_payload(&self, acc: &BTreeMap<String, u64>) -> Vec<u8> {
        let router_pairs: [(&str, u64); 11] = [
            ("router_backends", self.backends.len() as u64),
            (
                "router_backends_healthy",
                self.backends.iter().filter(|b| b.usable()).count() as u64,
            ),
            (
                "router_failovers",
                self.shared.failovers.load(Ordering::Relaxed),
            ),
            (
                "router_rejoins",
                self.shared.rejoins.load(Ordering::Relaxed),
            ),
            (
                "router_requests",
                self.shared.requests.load(Ordering::Relaxed),
            ),
            ("router_retained_loads", self.retained.len() as u64),
            ("router_retained_bytes", self.retained.bytes() as u64),
            (
                "router_hedges_sent",
                self.shared.hedges_sent.load(Ordering::Relaxed),
            ),
            (
                "router_hedge_wins",
                self.shared.hedge_wins.load(Ordering::Relaxed),
            ),
            (
                "router_crc_rejects",
                self.shared.crc_rejects.load(Ordering::Relaxed),
            ),
            (
                "router_orphan_replies",
                self.shared.orphan_replies.load(Ordering::Relaxed),
            ),
        ];
        let mut b = Builder::new().u64((acc.len() + router_pairs.len()) as u64);
        for (key, val) in acc {
            b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(*val);
        }
        for (key, val) in router_pairs {
            b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(val);
        }
        b.build()
    }

    // -- shutdown ------------------------------------------------------------

    /// Bounded post-shutdown grace: flush buffered client replies (the
    /// `OK_BYE` in particular), then close everything. Requests still
    /// waiting on backends are abandoned — their clients see the close and
    /// retry elsewhere.
    fn drain_and_exit(&mut self) {
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            let mut done: Vec<u64> = Vec::new();
            for (&id, conn) in self.clients.iter_mut() {
                if conn.try_write(self.opts.io_timeout).is_err() || !conn.wants_write() {
                    done.push(id);
                }
            }
            for id in done {
                self.clients.remove(&id);
            }
            if self.clients.is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.clients.clear();
    }
}

// ---------------------------------------------------------------------------
// Pure helpers
// ---------------------------------------------------------------------------

/// The solve budget: client ask clamped to the router cap, the cap alone
/// when the client sent none, and a one-minute backstop when both are zero
/// (the failover timer needs *some* horizon).
fn effective_budget(client_ms: u64, cap: Duration) -> Duration {
    let client = (client_ms > 0).then(|| Duration::from_millis(client_ms));
    let cap = (!cap.is_zero()).then_some(cap);
    match (client, cap) {
        (Some(c), Some(k)) => c.min(k),
        (Some(c), None) => c,
        (None, Some(k)) => k,
        (None, None) => Duration::from_secs(60),
    }
}

/// Resolve a `LOAD` fan-out: `Pending` while replies are outstanding, the
/// first `OK_LOADED` when any replica succeeded, else the last error.
fn finish_load(outstanding: usize, reply: &Option<Vec<u8>>, last_err: &Option<ErrInfo>) -> Step {
    if outstanding > 0 {
        return Step::Pending;
    }
    match reply {
        Some(ok) => Step::Reply(op::OK_LOADED, ok.clone()),
        None => {
            let (code, msg, hint) = last_err.clone().unwrap_or((
                ErrorCode::Internal,
                "load fan-out resolved without any reply".into(),
                None,
            ));
            Step::Reply(op::ERR, err_payload(code, &msg, hint))
        }
    }
}

/// Build the router `OK_EVICTED` payload: aggregate `existed`, then the
/// per-replica outcome trailer (`u8 count`, then per replica `u16 addrlen`,
/// addr bytes, `u8 status`).
fn evict_reply(existed: bool, outcomes: &[(usize, u8)], addrs: &[String]) -> Vec<u8> {
    let mut b = Builder::new()
        .u8(u8::from(existed))
        .u8(outcomes.len() as u8);
    for &(idx, status) in outcomes {
        let addr = addrs.get(idx).map(String::as_str).unwrap_or("?");
        b = b.u16(addr.len() as u16).bytes(addr.as_bytes()).u8(status);
    }
    b.build()
}

/// Sum one backend's `OK_STATS` payload into the fleet accumulator.
/// Undecodable tails are simply truncated — a partial sum beats no reply.
fn accumulate_stats(acc: &mut BTreeMap<String, u64>, payload: &[u8]) {
    let mut c = Cursor::new(payload);
    let Ok(count) = c.u64() else { return };
    for _ in 0..count {
        let Ok(klen) = c.u16() else { return };
        let Ok(key) = c.bytes(klen as usize) else {
            return;
        };
        let Ok(val) = c.u64() else { return };
        let key = String::from_utf8_lossy(key).into_owned();
        *acc.entry(key).or_insert(0) += val;
    }
}

/// Compute the fingerprint a backend will assign to this LOAD payload —
/// the same digest over the same arrays — so placement is decided at the
/// edge without building the matrix.
fn load_fingerprint(payload: &[u8]) -> Result<Fingerprint, String> {
    let mut c = Cursor::new(payload);
    let nrows = c.usize()?;
    let ncols = c.usize()?;
    let nnz = c.usize()?;
    let cols1 = ncols.checked_add(1).ok_or("ncols overflow")?;
    let need = cols1
        .checked_add(nnz.checked_mul(2).ok_or("nnz overflow")?)
        .and_then(|w| w.checked_mul(8))
        .ok_or("size overflow")?;
    if need > payload.len() {
        return Err(format!(
            "LOAD arrays need {need} bytes but payload has {}",
            payload.len()
        ));
    }
    let colptr = c.usize_vec(cols1)?;
    let rowidx = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    c.finish()?;
    Ok(Fingerprint::of_parts(
        nrows, ncols, &colptr, &rowidx, &values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn effective_budget_clamps() {
        let cap = Duration::from_secs(30);
        assert_eq!(effective_budget(0, cap), cap);
        assert_eq!(effective_budget(500, cap), Duration::from_millis(500));
        assert_eq!(effective_budget(120_000, cap), cap);
        assert_eq!(effective_budget(0, Duration::ZERO), Duration::from_secs(60));
        assert_eq!(
            effective_budget(7, Duration::ZERO),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn load_fingerprint_matches_matrix_digest() {
        let a = gen::grid2d_laplacian(6, 6);
        let payload = Builder::new()
            .u64(a.nrows() as u64)
            .u64(a.ncols() as u64)
            .u64(a.nnz() as u64)
            .usize_slice(a.colptr())
            .usize_slice(a.rowidx())
            .f64_slice(a.values())
            .build();
        assert_eq!(
            load_fingerprint(&payload).unwrap(),
            Fingerprint::of_matrix(&a)
        );
        assert!(load_fingerprint(&payload[..20]).is_err());
    }

    #[test]
    fn evict_reply_trailer_encodes_addrs_and_statuses() {
        let addrs = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        let payload = evict_reply(true, &[(1, 1), (0, 2)], &addrs);
        let mut c = Cursor::new(&payload);
        assert_eq!(c.u8().unwrap(), 1, "existed");
        assert_eq!(c.u8().unwrap(), 2, "count");
        let l = c.u16().unwrap() as usize;
        assert_eq!(c.bytes(l).unwrap(), b"127.0.0.1:2");
        assert_eq!(c.u8().unwrap(), 1, "evicted");
        let l = c.u16().unwrap() as usize;
        assert_eq!(c.bytes(l).unwrap(), b"127.0.0.1:1");
        assert_eq!(c.u8().unwrap(), 2, "unreachable");
        c.finish().unwrap();
    }

    #[test]
    fn stats_accumulator_sums_across_backends() {
        let pay = |v: u64| Builder::new().u64(1).u16(5).bytes(b"hello").u64(v).build();
        let mut acc = BTreeMap::new();
        accumulate_stats(&mut acc, &pay(3));
        accumulate_stats(&mut acc, &pay(4));
        assert_eq!(acc.get("hello"), Some(&7));
        // truncated payloads contribute what they can without panicking
        accumulate_stats(&mut acc, &pay(1)[..6]);
        assert_eq!(acc.get("hello"), Some(&7));
    }
}
