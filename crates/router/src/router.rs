//! The router proper: a protocol-v3 proxy event loop with consistent-hash
//! placement, replication, and deterministic failover.
//!
//! One loop thread owns every socket — the client-facing listener plus one
//! outbound connection per backend — through the same [`poller`] /
//! [`Conn`] machinery as the server front end (reused, not forked; the
//! backend side uses [`Conn::enqueue`] for requests and the incremental
//! frame parser for replies). There is no worker pool: proxying is cheap,
//! and every reply correlates by FIFO order on its backend connection
//! because backends answer each connection strictly in request order.
//!
//! Per-opcode routing (DESIGN.md §15):
//!
//! * `LOAD` — fingerprint computed at the edge (same digest the backend
//!   will derive), payload retained for rejoin replay, fanned out to every
//!   healthy replica; replies when all answer, with the first `OK_LOADED`.
//! * `SOLVE` — forwarded to the first healthy replica in ring order with
//!   the deadline field rewritten to the *remaining* budget; fails over to
//!   the next replica on `ERR Busy`, `ERR UnknownFingerprint`,
//!   `ERR Timeout`, connection loss, or a hung-backend backstop timeout.
//!   Permanent errors propagate as-is; an exhausted replica set propagates
//!   the last error (or `Busy` with a retry hint if none was reachable).
//! * `EVICT` — broadcast to every replica, answered with the aggregate
//!   `existed` plus the per-backend outcome trailer.
//! * `STATS` — fanned out to every healthy backend, summed per key, and
//!   annotated with `router_*` gauges.
//! * `SHUTDOWN` — answered with `OK_BYE`; stops the router only (backend
//!   lifecycles belong to whoever spawned them, e.g. [`crate::launch`]).
//!
//! Deadlines propagate end-to-end: the client's budget is clamped to the
//! router's cap, each forward carries only the remaining time, and a
//! failover that would start past the deadline answers `ERR Deadline`
//! instead of burning a backend on a doomed request. `retry_after_ms`
//! hints survive the trip back verbatim.
//!
//! [`poller`]: trisolv_server::poller
//! [`Conn`]: trisolv_server::conn::Conn
//! [`Conn::enqueue`]: trisolv_server::conn::Conn::enqueue

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trisolv_server::conn::{Conn, FrameStep, Outcome, ReadStatus};
use trisolv_server::poller::{self, Interest, PollFd, Waker};
use trisolv_server::protocol::{
    encode_frame, err_payload, op, parse_err, write_frame, Builder, Cursor, ErrorCode,
    MAX_FRAME_LEN,
};
use trisolv_server::Fingerprint;

use crate::backend::{Backend, Retained, SubReq};
use crate::ring::Ring;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Client-facing bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend addresses (`host:port` of running `trisolv serve`
    /// processes). The ring is built over this list in order, so the same
    /// list always yields the same placement.
    pub backends: Vec<String>,
    /// Replication factor: each fingerprint lives on this many backends
    /// (clamped to the fleet size).
    pub replication: usize,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Slow-peer guard for client sockets and backend writes, and part of
    /// the hung-backend reply backstop. Zero disables the client guard.
    pub io_timeout: Duration,
    /// Cap on client SOLVE deadlines; also the default budget when a
    /// client sends none.
    pub deadline_cap: Duration,
    /// Maximum concurrent client connections (0 = unlimited).
    pub max_conns: usize,
    /// Per-client-connection pipelining cap.
    pub max_pipeline: usize,
    /// Base interval between reconnect probes to an unhealthy backend
    /// (doubles per consecutive failure, capped).
    pub probe_interval: Duration,
    /// Byte budget for retained LOAD payloads (rejoin replay).
    pub retained_budget: usize,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replication: 2,
            vnodes: Ring::DEFAULT_VNODES,
            io_timeout: Duration::from_secs(10),
            deadline_cap: Duration::from_secs(30),
            max_conns: 0,
            max_pipeline: 64,
            probe_interval: Duration::from_millis(100),
            retained_budget: 256 << 20,
        }
    }
}

/// Gauges shared between the loop thread and [`RunningRouter`].
struct Shared {
    healthy: AtomicUsize,
    requests: AtomicU64,
    failovers: AtomicU64,
    rejoins: AtomicU64,
}

/// Handle to a spawned router; dropping it shuts the router down.
pub struct RunningRouter {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// The router entry point.
pub struct Router;

impl Router {
    /// Bind the client-facing listener, spawn the event loop and the
    /// dialer thread, and return immediately. Backends start `Probing`;
    /// use [`RunningRouter::wait_healthy`] to block until the fleet is up.
    pub fn spawn(opts: RouterOptions) -> io::Result<RunningRouter> {
        if opts.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = poller::wake_pair()?;
        let waker = Arc::new(waker);
        let shared = Arc::new(Shared {
            healthy: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
        });
        let (dial_tx, dial_rx) = mpsc::channel::<Dial>();
        let dials = Arc::new(DialQueue {
            items: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        let mut threads = Vec::with_capacity(2);
        {
            let dials = Arc::clone(&dials);
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("tsv-dialer".to_string())
                    .spawn(move || dialer_loop(dial_rx, &dials, &shutdown))?,
            );
        }
        let now = Instant::now();
        let ring = Ring::new(opts.backends.len(), opts.vnodes);
        let backends = opts
            .backends
            .iter()
            .map(|a| Backend::new(a.clone(), now))
            .collect();
        let retained = Retained::new(opts.retained_budget);
        let lp = RouterLoop {
            listener,
            wake_rx,
            dial_tx,
            dials,
            shutdown: Arc::clone(&shutdown),
            shared: Arc::clone(&shared),
            opts,
            ring,
            clients: HashMap::new(),
            next_client: 0,
            backends,
            requests: HashMap::new(),
            next_req: 0,
            retained,
            touched: Vec::new(),
        };
        threads.push(
            std::thread::Builder::new()
                .name("tsv-router".to_string())
                .spawn(move || router_loop(lp))?,
        );
        Ok(RunningRouter {
            local_addr,
            shutdown,
            waker,
            shared,
            threads,
        })
    }
}

impl RunningRouter {
    /// The bound client-facing address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Backends currently `Healthy` (connected, replays drained).
    pub fn healthy_backends(&self) -> usize {
        self.shared.healthy.load(Ordering::Acquire)
    }

    /// SOLVE re-routes performed so far (replica failovers).
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Acquire)
    }

    /// Block until at least `min` backends are `Healthy`, up to `timeout`.
    /// Returns whether the threshold was reached.
    pub fn wait_healthy(&self, min: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.healthy_backends() >= min {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Signal shutdown and join every thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the router shuts down (via a `SHUTDOWN` frame or a
    /// [`RunningRouter::shutdown`] call from another thread), joining every
    /// thread without itself requesting shutdown.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningRouter {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Dialer thread: blocking connects off the event loop
// ---------------------------------------------------------------------------

struct Dial {
    idx: usize,
    addr: String,
}

struct DialDone {
    idx: usize,
    result: io::Result<TcpStream>,
}

struct DialQueue {
    items: Mutex<Vec<DialDone>>,
    waker: Arc<Waker>,
}

impl DialQueue {
    fn push(&self, d: DialDone) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).push(d);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<DialDone> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

fn dialer_loop(rx: Receiver<Dial>, dials: &DialQueue, shutdown: &AtomicBool) {
    while let Ok(d) = rx.recv() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let result = dial(&d.addr);
        dials.push(DialDone { idx: d.idx, result });
    }
}

fn dial(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, Duration::from_secs(1)) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")))
}

// ---------------------------------------------------------------------------
// Request state
// ---------------------------------------------------------------------------

/// Sentinel client id for router-internal requests (rejoin replays).
const INTERNAL: u64 = u64::MAX;

/// A parsed error triple as it travels through failover bookkeeping.
type ErrInfo = (ErrorCode, String, Option<u64>);

enum Kind {
    Solve {
        /// Original SOLVE payload; bytes 16..24 are rewritten with the
        /// remaining budget on each forward.
        payload: Vec<u8>,
        replicas: Vec<usize>,
        /// Next replica index to try.
        next: usize,
        deadline: Instant,
        last_err: Option<ErrInfo>,
    },
    Load {
        outstanding: usize,
        reply: Option<Vec<u8>>,
        last_err: Option<ErrInfo>,
    },
    Evict {
        existed: bool,
        outstanding: usize,
        /// `(backend index, status)` per replica in ring order; status
        /// defaults to `2` (unreachable) until a reply lands.
        outcomes: Vec<(usize, u8)>,
    },
    Stats {
        outstanding: usize,
        acc: BTreeMap<String, u64>,
    },
    /// Internal retained-LOAD replay toward a rejoining backend.
    Rejoin { backend: usize },
}

struct Request {
    client: u64,
    seq: u64,
    kind: Kind,
}

/// What a backend reply (or sub-request failure) resolved into, computed
/// under the `requests` borrow and acted on after it drops.
enum Step {
    /// Fan-out still has outstanding sub-requests.
    Pending,
    /// The request is complete: answer the client with this frame.
    Reply(Vec<u8>),
    /// Solve failover: try the next replica.
    Retry,
    /// A STATS fan-out completed; build the fleet reply from this
    /// accumulator (carried out of the `requests` borrow because the
    /// reply also reads router-wide state).
    StatsDone(BTreeMap<String, u64>),
    /// A rejoin replay finished for this backend.
    Rejoined(usize),
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

enum Token {
    Client(u64),
    Backend(usize),
}

struct RouterLoop {
    listener: TcpListener,
    wake_rx: TcpStream,
    dial_tx: Sender<Dial>,
    dials: Arc<DialQueue>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    opts: RouterOptions,
    ring: Ring,
    clients: HashMap<u64, Conn>,
    next_client: u64,
    backends: Vec<Backend>,
    requests: HashMap<u64, Request>,
    next_req: u64,
    retained: Retained,
    /// Clients whose reply state changed off the socket-readiness path
    /// (backend replies, failures); they need a write/extract pass.
    touched: Vec<u64>,
}

fn router_loop(mut lp: RouterLoop) {
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    loop {
        let now = Instant::now();
        for d in lp.dials.drain() {
            lp.on_dial_done(d, now);
        }
        if lp.shutdown.load(Ordering::SeqCst) {
            lp.drain_and_exit();
            return;
        }
        lp.check_backend_timeouts(now);
        lp.start_due_dials(now);
        lp.flush_touched();

        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(poller::fd_of(&lp.listener), Interest::read()));
        fds.push(PollFd::new(poller::fd_of(&lp.wake_rx), Interest::read()));
        for (&id, conn) in lp.clients.iter() {
            fds.push(PollFd::new(
                poller::fd_of(&conn.stream),
                Interest {
                    readable: conn.wants_read(lp.opts.max_pipeline),
                    writable: conn.wants_write(),
                },
            ));
            tokens.push(Token::Client(id));
        }
        for (i, b) in lp.backends.iter().enumerate() {
            if let Some(conn) = &b.conn {
                fds.push(PollFd::new(
                    poller::fd_of(&conn.stream),
                    Interest {
                        readable: true,
                        writable: conn.wants_write(),
                    },
                ));
                tokens.push(Token::Backend(i));
            }
        }

        let timeout = lp.nearest_deadline();
        if poller::wait(&mut fds, timeout).is_err() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if fds[1].ready.readable || fds[1].ready.hangup {
            poller::drain(&mut lp.wake_rx);
        }
        if fds[0].ready.readable {
            lp.accept_ready();
        }
        let now = Instant::now();
        for (k, tok) in tokens.iter().enumerate() {
            let ready = fds[k + 2].ready;
            match *tok {
                Token::Backend(b) => lp.service_backend(b, ready, now),
                Token::Client(id) => lp.service_client(id, ready, now),
            }
        }
        lp.flush_touched();
    }
}

impl RouterLoop {
    // -- time-driven maintenance --------------------------------------------

    /// Condemn any backend whose oldest in-flight sub-request blew its
    /// backstop deadline: FIFO correlation cannot skip a reply, so a hung
    /// head poisons the whole connection.
    fn check_backend_timeouts(&mut self, now: Instant) {
        for b in 0..self.backends.len() {
            let expired = self.backends[b]
                .fifo
                .front()
                .is_some_and(|h| now >= h.expires)
                || self.backends[b]
                    .conn
                    .as_ref()
                    .is_some_and(|c| c.write_deadline.is_some_and(|d| now >= d));
            if expired {
                self.backend_failure(b, now);
            }
        }
    }

    fn start_due_dials(&mut self, now: Instant) {
        for (i, b) in self.backends.iter_mut().enumerate() {
            if b.wants_dial(now) {
                b.dialing = true;
                let _ = self.dial_tx.send(Dial {
                    idx: i,
                    addr: b.addr.clone(),
                });
            }
        }
    }

    fn nearest_deadline(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut best: Option<Instant> = None;
        let mut consider = |t: Option<Instant>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b: Instant| b.min(t)));
            }
        };
        for conn in self.clients.values() {
            consider(conn.read_deadline);
            consider(conn.write_deadline);
        }
        for b in &self.backends {
            if let Some(conn) = &b.conn {
                consider(conn.write_deadline);
                consider(b.fifo.front().map(|h| h.expires));
            } else if !b.dialing {
                consider(Some(b.next_probe));
            }
        }
        best.map(|t| t.saturating_duration_since(now))
    }

    fn set_healthy_gauge(&self) {
        let n = self.backends.iter().filter(|b| b.usable()).count();
        self.shared.healthy.store(n, Ordering::Release);
    }

    // -- dialing and rejoin --------------------------------------------------

    fn on_dial_done(&mut self, d: DialDone, now: Instant) {
        self.backends[d.idx].dialing = false;
        match d.result {
            Err(_) => {
                self.backends[d.idx].note_failure(now, self.opts.probe_interval);
            }
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    self.backends[d.idx].note_failure(now, self.opts.probe_interval);
                    return;
                }
                self.backends[d.idx].conn = Some(Conn::new(stream));
                self.backends[d.idx].note_connected();
                self.shared.rejoins.fetch_add(1, Ordering::Relaxed);
                // Warm-standby replay: re-LOAD every retained factor the
                // ring places on this backend before it takes traffic.
                let replays: Vec<Vec<u8>> = self
                    .retained
                    .iter()
                    .filter(|(fp, _)| {
                        self.ring
                            .replicas(**fp, self.opts.replication)
                            .contains(&d.idx)
                    })
                    .map(|(_, payload)| payload.clone())
                    .collect();
                let expires = now + self.sub_request_backstop();
                for payload in replays {
                    let rid = self.new_request(Request {
                        client: INTERNAL,
                        seq: 0,
                        kind: Kind::Rejoin { backend: d.idx },
                    });
                    self.backends[d.idx].rejoining += 1;
                    self.send_sub(d.idx, op::LOAD, &payload, SubReq { req: rid, expires });
                }
                if self.backends[d.idx].rejoining == 0 {
                    self.backends[d.idx].finish_rejoin();
                }
                self.set_healthy_gauge();
            }
        }
    }

    /// Backstop for a backend to answer a fan-out/replay sub-request.
    fn sub_request_backstop(&self) -> Duration {
        self.opts
            .io_timeout
            .max(self.opts.deadline_cap)
            .max(Duration::from_secs(1))
    }

    /// Hint handed to clients when no replica is reachable: roughly one
    /// probe cycle out.
    fn retry_hint_ms(&self) -> u64 {
        (self.opts.probe_interval.as_millis() as u64).max(1) * 2
    }

    // -- backend I/O ---------------------------------------------------------

    fn send_sub(&mut self, b: usize, opcode: u8, payload: &[u8], sub: SubReq) {
        if let Some(conn) = self.backends[b].conn.as_mut() {
            conn.enqueue(&encode_frame(opcode, payload));
            self.backends[b].fifo.push_back(sub);
        }
    }

    fn service_backend(&mut self, b: usize, ready: poller::Readiness, now: Instant) {
        if ready.readable || ready.hangup {
            let status = {
                let Some(conn) = self.backends[b].conn.as_mut() else {
                    return;
                };
                conn.read_some()
            };
            let status = match status {
                Ok(s) => s,
                Err(_) => {
                    self.backend_failure(b, now);
                    return;
                }
            };
            loop {
                let step = {
                    let Some(conn) = self.backends[b].conn.as_mut() else {
                        return;
                    };
                    conn.next_frame()
                };
                match step {
                    FrameStep::Incomplete => break,
                    FrameStep::BadLength(_) => {
                        self.backend_failure(b, now);
                        return;
                    }
                    FrameStep::Frame { opcode, payload } => {
                        self.handle_backend_reply(b, opcode, payload, now);
                    }
                }
            }
            if let Some(conn) = self.backends[b].conn.as_mut() {
                conn.compact();
            }
            if status == ReadStatus::Eof {
                self.backend_failure(b, now);
                return;
            }
        }
        let write_failed = match self.backends[b].conn.as_mut() {
            Some(conn) if ready.writable || conn.wants_write() => {
                conn.try_write(self.opts.io_timeout).is_err()
            }
            _ => false,
        };
        if write_failed {
            self.backend_failure(b, now);
        }
    }

    fn handle_backend_reply(&mut self, b: usize, opcode: u8, payload: Vec<u8>, now: Instant) {
        let Some(sub) = self.backends[b].fifo.pop_front() else {
            // A reply with nothing in flight is a protocol violation; the
            // connection's correlation state is unrecoverable.
            self.backend_failure(b, now);
            return;
        };
        let rid = sub.req;
        let step = {
            let Some(req) = self.requests.get_mut(&rid) else {
                return;
            };
            match &mut req.kind {
                Kind::Solve { last_err, .. } => match opcode {
                    op::OK_SOLVED => Step::Reply(encode_frame(op::OK_SOLVED, &payload)),
                    op::ERR => {
                        let parsed = parse_err(&payload).unwrap_or_else(|e| {
                            (
                                Some(ErrorCode::Internal),
                                format!("undecodable backend error: {e}"),
                                None,
                            )
                        });
                        let code = parsed.0.unwrap_or(ErrorCode::Internal);
                        *last_err = Some((code, parsed.1, parsed.2));
                        match code {
                            // Transient-at-this-replica: shed under load, a
                            // stale rejoin, or a backend-side stall. The
                            // factor lives elsewhere too — go there.
                            ErrorCode::Busy
                            | ErrorCode::UnknownFingerprint
                            | ErrorCode::Timeout => Step::Retry,
                            _ => {
                                let (c, m, h) = last_err.clone().expect("just set");
                                Step::Reply(encode_frame(op::ERR, &err_payload(c, &m, h)))
                            }
                        }
                    }
                    other => Step::Reply(encode_frame(
                        op::ERR,
                        &err_payload(
                            ErrorCode::Internal,
                            &format!("unexpected backend reply opcode 0x{other:02x}"),
                            None,
                        ),
                    )),
                },
                Kind::Load {
                    outstanding,
                    reply,
                    last_err,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    match opcode {
                        op::OK_LOADED if reply.is_none() => *reply = Some(payload),
                        op::OK_LOADED => {}
                        op::ERR => {
                            let parsed = parse_err(&payload).unwrap_or_else(|e| {
                                (
                                    Some(ErrorCode::Internal),
                                    format!("undecodable backend error: {e}"),
                                    None,
                                )
                            });
                            *last_err =
                                Some((parsed.0.unwrap_or(ErrorCode::Internal), parsed.1, parsed.2));
                        }
                        _ => {
                            *last_err = Some((
                                ErrorCode::Internal,
                                "unexpected backend reply".into(),
                                None,
                            ));
                        }
                    }
                    finish_load(*outstanding, reply, last_err)
                }
                Kind::Evict {
                    existed,
                    outstanding,
                    outcomes,
                } => {
                    *outstanding = outstanding.saturating_sub(1);
                    let status = match opcode {
                        op::OK_EVICTED => {
                            let hit = payload.first().copied().unwrap_or(0) != 0;
                            *existed |= hit;
                            u8::from(hit)
                        }
                        op::ERR => match parse_err(&payload) {
                            Ok((Some(ErrorCode::UnknownFingerprint), _, _)) => 0,
                            _ => 2,
                        },
                        _ => 2,
                    };
                    if let Some(slot) = outcomes.iter_mut().find(|(bb, _)| *bb == b) {
                        slot.1 = status;
                    }
                    if *outstanding == 0 {
                        Step::Reply(evict_reply(*existed, outcomes, &self.opts.backends))
                    } else {
                        Step::Pending
                    }
                }
                Kind::Stats { outstanding, acc } => {
                    *outstanding = outstanding.saturating_sub(1);
                    if opcode == op::OK_STATS {
                        accumulate_stats(acc, &payload);
                    }
                    if *outstanding == 0 {
                        Step::StatsDone(std::mem::take(acc))
                    } else {
                        Step::Pending
                    }
                }
                Kind::Rejoin { backend } => Step::Rejoined(*backend),
            }
        };
        self.apply_step(rid, step, now);
    }

    fn apply_step(&mut self, rid: u64, step: Step, now: Instant) {
        match step {
            Step::Pending => {}
            Step::Reply(frame) => {
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(req.client, req.seq, Outcome::Reply(frame));
                }
            }
            Step::Retry => {
                self.shared.failovers.fetch_add(1, Ordering::Relaxed);
                self.try_send_solve(rid, now);
            }
            Step::StatsDone(acc) => {
                let frame = self.stats_reply_frame(&acc);
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(req.client, req.seq, Outcome::Reply(frame));
                }
            }
            Step::Rejoined(b) => {
                self.requests.remove(&rid);
                if self.backends[b].finish_rejoin() {
                    self.set_healthy_gauge();
                }
            }
        }
    }

    /// Tear down a backend connection: every in-flight sub-request on it
    /// fails over (solves) or counts against its fan-out (everything
    /// else), and the breaker schedules a reconnect probe.
    fn backend_failure(&mut self, b: usize, now: Instant) {
        let drained: Vec<SubReq> = self.backends[b].fifo.drain(..).collect();
        self.backends[b].note_failure(now, self.opts.probe_interval);
        self.set_healthy_gauge();
        let hint = self.retry_hint_ms();
        for sub in drained {
            let rid = sub.req;
            let step = {
                let Some(req) = self.requests.get_mut(&rid) else {
                    continue;
                };
                match &mut req.kind {
                    Kind::Solve { last_err, .. } => {
                        *last_err = Some((
                            ErrorCode::Busy,
                            format!("backend {} unreachable", self.backends[b].addr),
                            Some(hint),
                        ));
                        Step::Retry
                    }
                    Kind::Load {
                        outstanding,
                        reply,
                        last_err,
                    } => {
                        *outstanding = outstanding.saturating_sub(1);
                        if last_err.is_none() {
                            *last_err = Some((
                                ErrorCode::Busy,
                                format!("backend {} unreachable", self.backends[b].addr),
                                Some(hint),
                            ));
                        }
                        finish_load(*outstanding, reply, last_err)
                    }
                    Kind::Evict {
                        existed,
                        outstanding,
                        outcomes,
                    } => {
                        *outstanding = outstanding.saturating_sub(1);
                        if *outstanding == 0 {
                            Step::Reply(evict_reply(*existed, outcomes, &self.opts.backends))
                        } else {
                            Step::Pending
                        }
                    }
                    Kind::Stats { outstanding, acc } => {
                        *outstanding = outstanding.saturating_sub(1);
                        if *outstanding == 0 {
                            Step::StatsDone(std::mem::take(acc))
                        } else {
                            Step::Pending
                        }
                    }
                    Kind::Rejoin { .. } => {
                        self.requests.remove(&rid);
                        continue;
                    }
                }
            };
            self.apply_step(rid, step, now);
        }
    }

    // -- solve forwarding / failover ----------------------------------------

    fn try_send_solve(&mut self, rid: u64, now: Instant) {
        enum Action {
            Send {
                b: usize,
                frame_payload: Vec<u8>,
                expires: Instant,
            },
            Fail(ErrInfo),
            Gone,
        }
        let action = {
            let Some(req) = self.requests.get_mut(&rid) else {
                return;
            };
            if req.client != INTERNAL && !self.clients.contains_key(&req.client) {
                Action::Gone
            } else {
                let Kind::Solve {
                    payload,
                    replicas,
                    next,
                    deadline,
                    last_err,
                } = &mut req.kind
                else {
                    return;
                };
                if now >= *deadline {
                    Action::Fail((
                        ErrorCode::Deadline,
                        "deadline expired during routing".into(),
                        None,
                    ))
                } else {
                    let mut chosen = None;
                    let mut skipped = 0u64;
                    while *next < replicas.len() {
                        let b = replicas[*next];
                        *next += 1;
                        if self.backends[b].usable() {
                            chosen = Some(b);
                            break;
                        }
                        // routing around a down replica is a failover even
                        // when no request ever reached it
                        skipped += 1;
                    }
                    self.shared.failovers.fetch_add(skipped, Ordering::Relaxed);
                    match chosen {
                        Some(b) => {
                            let remaining =
                                deadline.saturating_duration_since(now).as_millis() as u64;
                            let mut fwd = payload.clone();
                            fwd[16..24].copy_from_slice(&remaining.max(1).to_le_bytes());
                            Action::Send {
                                b,
                                frame_payload: fwd,
                                expires: *deadline
                                    + self.opts.io_timeout.max(Duration::from_secs(1)),
                            }
                        }
                        None => Action::Fail(last_err.clone().unwrap_or((
                            ErrorCode::Busy,
                            "no healthy replica for fingerprint".into(),
                            Some(self.retry_hint_ms()),
                        ))),
                    }
                }
            }
        };
        match action {
            Action::Gone => {
                self.requests.remove(&rid);
            }
            Action::Fail((code, msg, hint)) => {
                if let Some(req) = self.requests.remove(&rid) {
                    self.finish_client(
                        req.client,
                        req.seq,
                        Outcome::Reply(encode_frame(op::ERR, &err_payload(code, &msg, hint))),
                    );
                }
            }
            Action::Send {
                b,
                frame_payload,
                expires,
            } => {
                self.send_sub(b, op::SOLVE, &frame_payload, SubReq { req: rid, expires });
            }
        }
    }

    // -- client I/O ----------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.opts.max_conns != 0 && self.clients.len() >= self.opts.max_conns {
                let mut stream = stream;
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = write_frame(
                    &mut stream,
                    op::ERR,
                    &err_payload(
                        ErrorCode::Busy,
                        "router connection limit reached",
                        Some(self.retry_hint_ms()),
                    ),
                );
                continue;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let id = self.next_client;
            self.next_client += 1;
            self.clients.insert(id, Conn::new(stream));
        }
    }

    fn service_client(&mut self, id: u64, ready: poller::Readiness, now: Instant) {
        let mut close = false;
        if ready.readable || ready.hangup {
            let status = {
                let Some(conn) = self.clients.get_mut(&id) else {
                    return;
                };
                conn.read_some()
            };
            match status {
                Err(_) => close = true,
                Ok(st) => {
                    self.extract_client_frames(id, now);
                    if st == ReadStatus::Eof {
                        if let Some(conn) = self.clients.get_mut(&id) {
                            conn.close_input();
                        }
                    }
                }
            }
        }
        let Some(conn) = self.clients.get_mut(&id) else {
            return;
        };
        if !close && (ready.writable || conn.wants_write()) {
            close = conn.try_write(self.opts.io_timeout).is_err();
        }
        if !close {
            if conn.read_deadline.is_some_and(|d| now >= d) {
                conn.fail_and_close(encode_frame(
                    op::ERR,
                    &err_payload(ErrorCode::Timeout, "slow peer: frame stalled", None),
                ));
                let _ = conn.try_write(self.opts.io_timeout);
            }
            if conn.write_deadline.is_some_and(|d| now >= d) {
                close = true;
            }
        }
        if close || conn.finished() {
            self.clients.remove(&id);
        }
    }

    fn extract_client_frames(&mut self, id: u64, now: Instant) {
        let mut extracted = false;
        loop {
            let step = {
                let Some(conn) = self.clients.get_mut(&id) else {
                    return;
                };
                if !conn.can_extract(self.opts.max_pipeline) {
                    break;
                }
                conn.next_frame()
            };
            match step {
                FrameStep::Incomplete => break,
                FrameStep::BadLength(len) => {
                    let code = if len > MAX_FRAME_LEN {
                        ErrorCode::TooLarge
                    } else {
                        ErrorCode::Malformed
                    };
                    if let Some(conn) = self.clients.get_mut(&id) {
                        conn.fail_and_close(encode_frame(
                            op::ERR,
                            &err_payload(code, &format!("bad frame length {len}"), None),
                        ));
                    }
                    break;
                }
                FrameStep::Frame { opcode, payload } => {
                    extracted = true;
                    let seq = {
                        let Some(conn) = self.clients.get_mut(&id) else {
                            return;
                        };
                        conn.begin_request()
                    };
                    self.dispatch_client(id, seq, opcode, payload, now);
                }
            }
        }
        if let Some(conn) = self.clients.get_mut(&id) {
            conn.compact();
            conn.update_read_deadline(self.opts.io_timeout, extracted);
        }
    }

    fn finish_client(&mut self, id: u64, seq: u64, outcome: Outcome) {
        if let Some(conn) = self.clients.get_mut(&id) {
            conn.finish(seq, outcome);
            self.touched.push(id);
        }
    }

    /// Write/extract pass over clients whose state changed off the
    /// readiness path (a backend reply finished one of their requests).
    /// The re-extraction mirrors the server loop's completion edge: frames
    /// past the pipeline cap sit in `read_buf` where poll cannot see them,
    /// so a freed slot must resume the parser.
    fn flush_touched(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.touched);
        ids.sort_unstable();
        ids.dedup();
        let now = Instant::now();
        for id in ids {
            self.extract_client_frames(id, now);
            let Some(conn) = self.clients.get_mut(&id) else {
                continue;
            };
            let close = conn.try_write(self.opts.io_timeout).is_err() || conn.finished();
            if close {
                self.clients.remove(&id);
            }
        }
    }

    // -- request dispatch ----------------------------------------------------

    fn new_request(&mut self, req: Request) -> u64 {
        let rid = self.next_req;
        self.next_req += 1;
        self.requests.insert(rid, req);
        rid
    }

    fn reply_err(&mut self, id: u64, seq: u64, code: ErrorCode, msg: &str, hint: Option<u64>) {
        self.finish_client(
            id,
            seq,
            Outcome::Reply(encode_frame(op::ERR, &err_payload(code, msg, hint))),
        );
    }

    fn dispatch_client(&mut self, id: u64, seq: u64, opcode: u8, payload: Vec<u8>, now: Instant) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        match opcode {
            op::SOLVE => self.dispatch_solve(id, seq, payload, now),
            op::LOAD => self.dispatch_load(id, seq, payload, now),
            op::EVICT => self.dispatch_evict(id, seq, &payload, now),
            op::STATS => self.dispatch_stats(id, seq, now),
            op::SHUTDOWN => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.finish_client(
                    id,
                    seq,
                    Outcome::ReplyThenClose(encode_frame(op::OK_BYE, &[])),
                );
            }
            other => self.reply_err(
                id,
                seq,
                ErrorCode::UnknownOpcode,
                &format!("unknown request opcode 0x{other:02x}"),
                None,
            ),
        }
    }

    fn dispatch_solve(&mut self, id: u64, seq: u64, payload: Vec<u8>, now: Instant) {
        if payload.len() < 32 {
            self.reply_err(id, seq, ErrorCode::Malformed, "short SOLVE payload", None);
            return;
        }
        let fp = Fingerprint::from_bytes(payload[..16].try_into().expect("16 bytes"));
        let client_ms = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
        let budget = effective_budget(client_ms, self.opts.deadline_cap);
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let rid = self.new_request(Request {
            client: id,
            seq,
            kind: Kind::Solve {
                payload,
                replicas,
                next: 0,
                deadline: now + budget,
                last_err: None,
            },
        });
        self.try_send_solve(rid, now);
    }

    fn dispatch_load(&mut self, id: u64, seq: u64, payload: Vec<u8>, now: Instant) {
        let fp = match load_fingerprint(&payload) {
            Ok(fp) => fp,
            Err(msg) => {
                self.reply_err(id, seq, ErrorCode::Malformed, &msg, None);
                return;
            }
        };
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let targets: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let hint = self.retry_hint_ms();
            self.reply_err(
                id,
                seq,
                ErrorCode::Busy,
                "no healthy replica to load onto",
                Some(hint),
            );
            return;
        }
        self.retained.insert(fp, payload.clone());
        let rid = self.new_request(Request {
            client: id,
            seq,
            kind: Kind::Load {
                outstanding: targets.len(),
                reply: None,
                last_err: None,
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(b, op::LOAD, &payload, SubReq { req: rid, expires });
        }
    }

    fn dispatch_evict(&mut self, id: u64, seq: u64, payload: &[u8], now: Instant) {
        let fp = {
            let mut c = Cursor::new(payload);
            match c.fingerprint().and_then(|fp| c.finish().map(|_| fp)) {
                Ok(fp) => fp,
                Err(msg) => {
                    self.reply_err(id, seq, ErrorCode::Malformed, &msg, None);
                    return;
                }
            }
        };
        self.retained.remove(fp);
        let replicas = self.ring.replicas(fp, self.opts.replication);
        let outcomes: Vec<(usize, u8)> = replicas.iter().map(|&b| (b, 2u8)).collect();
        let targets: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let frame = evict_reply(false, &outcomes, &self.opts.backends);
            self.finish_client(id, seq, Outcome::Reply(frame));
            return;
        }
        let rid = self.new_request(Request {
            client: id,
            seq,
            kind: Kind::Evict {
                existed: false,
                outstanding: targets.len(),
                outcomes,
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(b, op::EVICT, &fp.to_bytes(), SubReq { req: rid, expires });
        }
    }

    fn dispatch_stats(&mut self, id: u64, seq: u64, now: Instant) {
        let targets: Vec<usize> = (0..self.backends.len())
            .filter(|&b| self.backends[b].usable())
            .collect();
        if targets.is_empty() {
            let frame = self.stats_reply_frame(&BTreeMap::new());
            self.finish_client(id, seq, Outcome::Reply(frame));
            return;
        }
        let rid = self.new_request(Request {
            client: id,
            seq,
            kind: Kind::Stats {
                outstanding: targets.len(),
                acc: BTreeMap::new(),
            },
        });
        let expires = now + self.sub_request_backstop();
        for b in targets {
            self.send_sub(b, op::STATS, &[], SubReq { req: rid, expires });
        }
    }

    /// The fleet STATS view: summed backend counters plus `router_*` keys.
    fn stats_reply_frame(&self, acc: &BTreeMap<String, u64>) -> Vec<u8> {
        let router_pairs: [(&str, u64); 7] = [
            ("router_backends", self.backends.len() as u64),
            (
                "router_backends_healthy",
                self.backends.iter().filter(|b| b.usable()).count() as u64,
            ),
            (
                "router_failovers",
                self.shared.failovers.load(Ordering::Relaxed),
            ),
            (
                "router_rejoins",
                self.shared.rejoins.load(Ordering::Relaxed),
            ),
            (
                "router_requests",
                self.shared.requests.load(Ordering::Relaxed),
            ),
            ("router_retained_loads", self.retained.len() as u64),
            ("router_retained_bytes", self.retained.bytes() as u64),
        ];
        let mut b = Builder::new().u64((acc.len() + router_pairs.len()) as u64);
        for (key, val) in acc {
            b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(*val);
        }
        for (key, val) in router_pairs {
            b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(val);
        }
        encode_frame(op::OK_STATS, &b.build())
    }

    // -- shutdown ------------------------------------------------------------

    /// Bounded post-shutdown grace: flush buffered client replies (the
    /// `OK_BYE` in particular), then close everything. Requests still
    /// waiting on backends are abandoned — their clients see the close and
    /// retry elsewhere.
    fn drain_and_exit(&mut self) {
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            let mut done: Vec<u64> = Vec::new();
            for (&id, conn) in self.clients.iter_mut() {
                if conn.try_write(self.opts.io_timeout).is_err() || !conn.wants_write() {
                    done.push(id);
                }
            }
            for id in done {
                self.clients.remove(&id);
            }
            if self.clients.is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.clients.clear();
    }
}

// ---------------------------------------------------------------------------
// Pure helpers
// ---------------------------------------------------------------------------

/// The solve budget: client ask clamped to the router cap, the cap alone
/// when the client sent none, and a one-minute backstop when both are zero
/// (the failover timer needs *some* horizon).
fn effective_budget(client_ms: u64, cap: Duration) -> Duration {
    let client = (client_ms > 0).then(|| Duration::from_millis(client_ms));
    let cap = (!cap.is_zero()).then_some(cap);
    match (client, cap) {
        (Some(c), Some(k)) => c.min(k),
        (Some(c), None) => c,
        (None, Some(k)) => k,
        (None, None) => Duration::from_secs(60),
    }
}

/// Resolve a `LOAD` fan-out: `Pending` while replies are outstanding, the
/// first `OK_LOADED` when any replica succeeded, else the last error.
fn finish_load(outstanding: usize, reply: &Option<Vec<u8>>, last_err: &Option<ErrInfo>) -> Step {
    if outstanding > 0 {
        return Step::Pending;
    }
    match reply {
        Some(ok) => Step::Reply(encode_frame(op::OK_LOADED, ok)),
        None => {
            let (code, msg, hint) = last_err.clone().unwrap_or((
                ErrorCode::Internal,
                "load fan-out resolved without any reply".into(),
                None,
            ));
            Step::Reply(encode_frame(op::ERR, &err_payload(code, &msg, hint)))
        }
    }
}

/// Build the router `OK_EVICTED` frame: aggregate `existed`, then the
/// per-replica outcome trailer (`u8 count`, then per replica `u16 addrlen`,
/// addr bytes, `u8 status`).
fn evict_reply(existed: bool, outcomes: &[(usize, u8)], addrs: &[String]) -> Vec<u8> {
    let mut b = Builder::new()
        .u8(u8::from(existed))
        .u8(outcomes.len() as u8);
    for &(idx, status) in outcomes {
        let addr = addrs.get(idx).map(String::as_str).unwrap_or("?");
        b = b.u16(addr.len() as u16).bytes(addr.as_bytes()).u8(status);
    }
    encode_frame(op::OK_EVICTED, &b.build())
}

/// Sum one backend's `OK_STATS` payload into the fleet accumulator.
/// Undecodable tails are simply truncated — a partial sum beats no reply.
fn accumulate_stats(acc: &mut BTreeMap<String, u64>, payload: &[u8]) {
    let mut c = Cursor::new(payload);
    let Ok(count) = c.u64() else { return };
    for _ in 0..count {
        let Ok(klen) = c.u16() else { return };
        let Ok(key) = c.bytes(klen as usize) else {
            return;
        };
        let Ok(val) = c.u64() else { return };
        let key = String::from_utf8_lossy(key).into_owned();
        *acc.entry(key).or_insert(0) += val;
    }
}

/// Compute the fingerprint a backend will assign to this LOAD payload —
/// the same digest over the same arrays — so placement is decided at the
/// edge without building the matrix.
fn load_fingerprint(payload: &[u8]) -> Result<Fingerprint, String> {
    let mut c = Cursor::new(payload);
    let nrows = c.usize()?;
    let ncols = c.usize()?;
    let nnz = c.usize()?;
    let cols1 = ncols.checked_add(1).ok_or("ncols overflow")?;
    let need = cols1
        .checked_add(nnz.checked_mul(2).ok_or("nnz overflow")?)
        .and_then(|w| w.checked_mul(8))
        .ok_or("size overflow")?;
    if need > payload.len() {
        return Err(format!(
            "LOAD arrays need {need} bytes but payload has {}",
            payload.len()
        ));
    }
    let colptr = c.usize_vec(cols1)?;
    let rowidx = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    c.finish()?;
    Ok(Fingerprint::of_parts(
        nrows, ncols, &colptr, &rowidx, &values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn effective_budget_clamps() {
        let cap = Duration::from_secs(30);
        assert_eq!(effective_budget(0, cap), cap);
        assert_eq!(effective_budget(500, cap), Duration::from_millis(500));
        assert_eq!(effective_budget(120_000, cap), cap);
        assert_eq!(effective_budget(0, Duration::ZERO), Duration::from_secs(60));
        assert_eq!(
            effective_budget(7, Duration::ZERO),
            Duration::from_millis(7)
        );
    }

    #[test]
    fn load_fingerprint_matches_matrix_digest() {
        let a = gen::grid2d_laplacian(6, 6);
        let payload = Builder::new()
            .u64(a.nrows() as u64)
            .u64(a.ncols() as u64)
            .u64(a.nnz() as u64)
            .usize_slice(a.colptr())
            .usize_slice(a.rowidx())
            .f64_slice(a.values())
            .build();
        assert_eq!(
            load_fingerprint(&payload).unwrap(),
            Fingerprint::of_matrix(&a)
        );
        assert!(load_fingerprint(&payload[..20]).is_err());
    }

    #[test]
    fn evict_reply_trailer_encodes_addrs_and_statuses() {
        let addrs = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        let frame = evict_reply(true, &[(1, 1), (0, 2)], &addrs);
        // strip the 5-byte frame header
        let payload = &frame[5..];
        let mut c = Cursor::new(payload);
        assert_eq!(c.u8().unwrap(), 1, "existed");
        assert_eq!(c.u8().unwrap(), 2, "count");
        let l = c.u16().unwrap() as usize;
        assert_eq!(c.bytes(l).unwrap(), b"127.0.0.1:2");
        assert_eq!(c.u8().unwrap(), 1, "evicted");
        let l = c.u16().unwrap() as usize;
        assert_eq!(c.bytes(l).unwrap(), b"127.0.0.1:1");
        assert_eq!(c.u8().unwrap(), 2, "unreachable");
        c.finish().unwrap();
    }

    #[test]
    fn stats_accumulator_sums_across_backends() {
        let pay = |v: u64| Builder::new().u64(1).u16(5).bytes(b"hello").u64(v).build();
        let mut acc = BTreeMap::new();
        accumulate_stats(&mut acc, &pay(3));
        accumulate_stats(&mut acc, &pay(4));
        assert_eq!(acc.get("hello"), Some(&7));
        // truncated payloads contribute what they can without panicking
        accumulate_stats(&mut acc, &pay(1)[..6]);
        assert_eq!(acc.get("hello"), Some(&7));
    }
}
