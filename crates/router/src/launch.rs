//! Local fleet supervision: spawn N backend processes on ephemeral ports
//! and learn their addresses from their startup banner.
//!
//! This exists for the `trisolv route --spawn N` convenience mode, the
//! chaos tests, and CI smoke jobs — production deployments run backends
//! under a real supervisor and pass `--backends` explicitly. Each child is
//! started with its stdout piped and its bind address parsed from the
//! first line containing `"listening on "`, which both the `trisolv
//! serve` and `trisolv-backend` banners emit (`... listening on ADDR ...`).

use std::io::{self, BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A supervised set of backend child processes. Dropping the fleet kills
/// every still-running child.
pub struct Fleet {
    children: Vec<Option<Child>>,
    addrs: Vec<String>,
}

impl Fleet {
    /// Spawn `n` children of `program` with `args`, waiting up to 10s for
    /// each to print its listen banner. The args should bind an ephemeral
    /// port (`--addr 127.0.0.1:0`) so the children never collide.
    pub fn spawn(program: &str, args: &[String], n: usize) -> io::Result<Fleet> {
        let mut fleet = Fleet {
            children: Vec::with_capacity(n),
            addrs: Vec::with_capacity(n),
        };
        for _ in 0..n {
            let mut child = Command::new(program)
                .args(args)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| io::Error::other("child stdout not captured"))?;
            let addr = read_banner_addr(stdout)?;
            fleet.children.push(Some(child));
            fleet.addrs.push(addr);
        }
        Ok(fleet)
    }

    /// The learned backend addresses, in spawn order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Kill backend `i` immediately (SIGKILL on unix — no graceful
    /// shutdown, which is exactly what chaos testing wants). Idempotent.
    pub fn kill(&mut self, i: usize) {
        if let Some(child) = self.children.get_mut(i).and_then(Option::take) {
            reap(child);
        }
    }

    /// Number of children originally spawned.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the fleet was spawned with `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for slot in self.children.iter_mut() {
            if let Some(child) = slot.take() {
                reap(child);
            }
        }
    }
}

fn reap(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Read lines from a child's stdout until one contains `"listening on "`,
/// returning the whitespace-delimited token after it. A background thread
/// keeps draining the pipe afterwards so the child never blocks on a full
/// pipe buffer.
fn read_banner_addr(stdout: std::process::ChildStdout) -> io::Result<String> {
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut line = String::new();
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "backend never printed its listen banner",
            ));
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "backend exited before printing its listen banner",
            ));
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().unwrap_or("").to_string();
            if addr.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable listen banner: {line:?}"),
                ));
            }
            // Keep draining stdout so the child never stalls on writes.
            std::thread::Builder::new()
                .name("tsv-fleet-drain".to_string())
                .spawn(move || {
                    let mut sink = String::new();
                    while {
                        sink.clear();
                        reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false)
                    } {}
                })?;
            return Ok(addr);
        }
    }
}
