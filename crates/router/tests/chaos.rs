//! Router chaos test (satellite d): real backend *processes* under the
//! seeded fault plan, one of them SIGKILLed mid-load.
//!
//! Acceptance: with replication 2 over three backends and the primary
//! replica of the hot factor killed without warning, every client request
//! must still succeed through the retry ladder (zero unrecovered errors),
//! every `OK` answer must be bit-identical to the sequential
//! `SparseCholeskySolver` on the same inputs, and the router must record
//! at least one failover. The backends additionally inject transport
//! faults (torn writes, connection drops) on the router-facing side, so
//! the backend breaker and the in-flight re-route path are exercised even
//! before the kill.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, rng::Rng, DenseMatrix};
use trisolv_router::{Fleet, Ring, Router, RouterOptions};
use trisolv_server::{Client, ClientOptions, Fingerprint};

/// Aborts the process if the guarded scope outlives its budget — a wedged
/// distributed soak must fail loudly, not eat the CI timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(label: &'static str, budget: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while start.elapsed() < budget {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("watchdog: {label} exceeded {budget:?}; aborting");
            std::process::abort();
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

fn resilient_opts(seed: u64) -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(10),
        retries: 40,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(25),
        seed,
        ..ClientOptions::default()
    }
}

/// Protocol-v4 chaos drill: R=2 with one replica both stalling solves
/// and flipping bits on its wire. Hedging must rescue the stalled tail
/// (at least one hedge win), the checksum trailer must catch every
/// flipped frame (at least one crc reject, zero wrong answers), and the
/// faulted backend's out-of-order late replies must never condemn its
/// connection — both backends are still healthy when the dust settles.
#[test]
fn hedged_fleet_survives_a_stalling_bitflipping_replica() {
    let _dog = Watchdog::arm("protocol v4 chaos drill", Duration::from_secs(120));

    let exe = env!("CARGO_BIN_EXE_trisolv-backend");
    let base = |extra: &[&str]| -> Vec<String> {
        ["--addr", "127.0.0.1:0", "--workers", "4"]
            .iter()
            .copied()
            .chain(extra.iter().copied())
            .map(str::to_string)
            .collect()
    };
    // clean replica: the sequential bit-exact reference executor
    let clean = Fleet::spawn(exe, &base(&["--exec", "seq"]), 1).unwrap();
    // faulted replica: threaded executor (answers bit-identically by
    // construction — the solve fault site lives there), every other solve
    // stalled well past the hedge threshold, every 6th written frame gets
    // one byte silently flipped on the wire
    let faulty = Fleet::spawn(
        exe,
        &base(&[
            "--exec",
            "threaded",
            "--fault-spec",
            "seed=7;solve.stall=every:2,ms:900;write.bitflip=every:6",
        ]),
        1,
    )
    .unwrap();

    let n = 48;
    let a = gen::random_spd(n, 5, 42);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    let fp = Fingerprint::of_matrix(&a);

    // order the backend list so the ring places this fingerprint's
    // *primary* on the faulted replica: every solve must cross the stall
    // and the bit-flips to come home correct
    let ring = Ring::new(2, trisolv_router::Ring::DEFAULT_VNODES);
    let (b0, b1) = (clean.addrs()[0].clone(), faulty.addrs()[0].clone());
    let backends = if ring.primary(fp) == Some(1) {
        vec![b0, b1]
    } else {
        vec![b1, b0]
    };

    let router = Router::spawn(RouterOptions {
        backends,
        replication: 2,
        probe_interval: Duration::from_millis(10),
        io_timeout: Duration::from_secs(2),
        deadline_cap: Duration::from_secs(4),
        hedge_after: Duration::from_millis(25),
        hedge_budget: 1.0,
        ..RouterOptions::default()
    })
    .unwrap();
    assert!(router.wait_healthy(2, Duration::from_secs(10)));
    let raddr = router.local_addr().to_string();

    {
        let mut c = Client::connect_with(&raddr, resilient_opts(500)).unwrap();
        assert_eq!(c.load(&a).unwrap().fingerprint, fp);
    }

    let nclients = 4u64;
    let rounds = 12u64;
    std::thread::scope(|scope| {
        for c in 0..nclients {
            let raddr = raddr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect_with(&raddr, resilient_opts(c)).unwrap();
                let mut rng = Rng::seed_from_u64(8000 + c);
                for r in 0..rounds {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client
                        .solve_with_retry(fp, b.col(0), 0)
                        .unwrap_or_else(|e| panic!("client {c} round {r}: {e}"));
                    assert_eq!(
                        x.as_slice(),
                        reference.solve(&b).col(0),
                        "client {c} round {r}: answer not bit-identical under chaos"
                    );
                }
            });
        }
    });

    // The hedges win long before the stalled replicas finish: their late
    // replies — the out-of-order losers, some bit-flipped — land *after*
    // the workload. Wait for them; the checksum rejects and the survival
    // of the connection under that barrage are the drill's whole point.
    let start = std::time::Instant::now();
    while router.crc_rejects() == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        router.hedge_wins() >= 1,
        "a hedge must have rescued at least one stalled solve \
         (hedges_sent={})",
        router.hedges_sent()
    );
    assert!(
        router.crc_rejects() >= 1,
        "the checksum trailer must have caught at least one flipped frame"
    );
    // the drill's whole point: a replica that stalls, answers late and out
    // of order, and corrupts frames is *degraded*, never condemned — its
    // connection is still up and the fleet is whole
    assert_eq!(
        router.healthy_backends(),
        2,
        "the faulted backend's connection must never be condemned by a \
         late, out-of-order, or corrupt reply"
    );

    drop(clean);
    drop(faulty);
    router.join();
}

#[test]
fn fleet_survives_faults_and_a_sigkilled_backend() {
    let _dog = Watchdog::arm("router chaos", Duration::from_secs(120));

    // Three real backend processes: sequential executor (bit-exact
    // reference), transport faults against every connection including the
    // router's own.
    let args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--exec",
        "seq",
        "--workers",
        "4",
        "--fault-spec",
        "seed=9;write.torn=every:41;conn.drop=every:29",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut fleet = Fleet::spawn(env!("CARGO_BIN_EXE_trisolv-backend"), &args, 3).unwrap();

    let opts = RouterOptions {
        backends: fleet.addrs().to_vec(),
        replication: 2,
        probe_interval: Duration::from_millis(10),
        ..RouterOptions::default()
    };
    let ring = Ring::new(3, opts.vnodes);
    let router = Router::spawn(opts).unwrap();
    assert!(
        router.wait_healthy(3, Duration::from_secs(10)),
        "all 3 backend processes should connect"
    );
    let raddr = router.local_addr().to_string();

    let n = 48;
    let a = gen::random_spd(n, 5, 42);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    // LOAD can be hit by the transport faults too: retry on a fresh stream.
    let fp = {
        let mut c = Client::connect_with(&raddr, resilient_opts(999)).unwrap();
        let mut fp = None;
        for _ in 0..30 {
            match c.load(&a) {
                Ok(r) => {
                    fp = Some(r.fingerprint);
                    break;
                }
                Err(e) if e.is_transient() => {
                    std::thread::sleep(Duration::from_millis(5));
                    let mut again = Client::connect_with(&raddr, resilient_opts(999)).unwrap();
                    std::mem::swap(&mut c, &mut again);
                }
                Err(e) => panic!("load failed permanently: {e}"),
            }
        }
        fp.expect("LOAD never survived the fault plan")
    };
    assert_eq!(fp, Fingerprint::of_matrix(&a));

    // SIGKILL the *primary* replica of this fingerprint partway through
    // the run — the worst single-node loss for this workload.
    let primary = ring.primary(fp).unwrap();
    let nclients = 6u64;
    let rounds = 25u64;
    // Progress counter gates the kill: the primary dies only after real
    // traffic has flowed, and well before the workload can finish — every
    // client is guaranteed to solve across the loss.
    let progress = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..nclients {
            let raddr = raddr.clone();
            let reference = &reference;
            let progress = &progress;
            scope.spawn(move || {
                let mut client = Client::connect_with(&raddr, resilient_opts(c)).unwrap();
                let mut rng = Rng::seed_from_u64(7000 + c);
                for r in 0..rounds {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client
                        .solve_with_retry(fp, b.col(0), 0)
                        .unwrap_or_else(|e| panic!("client {c} round {r}: {e}"));
                    assert_eq!(
                        x.as_slice(),
                        reference.solve(&b).col(0),
                        "client {c} round {r}: answer not bit-identical under chaos"
                    );
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // kill mid-load: after ~20% of the solves, long before the end
        while progress.load(Ordering::Relaxed) < nclients * rounds / 5 {
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.kill(primary);
    });

    // the router observed the loss and re-routed at least once
    assert!(
        router.failovers() >= 1,
        "SIGKILL of the primary must be visible as a failover"
    );
    let mut probe = Client::connect_with(&raddr, resilient_opts(31)).unwrap();
    let stats = probe.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get("router_backends"), 3);
    assert!(
        get("router_backends_healthy") <= 2,
        "the killed backend cannot be healthy"
    );
    assert!(get("router_failovers") >= 1);

    drop(probe);
    router.join();
}
