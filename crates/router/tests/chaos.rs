//! Router chaos test (satellite d): real backend *processes* under the
//! seeded fault plan, one of them SIGKILLed mid-load.
//!
//! Acceptance: with replication 2 over three backends and the primary
//! replica of the hot factor killed without warning, every client request
//! must still succeed through the retry ladder (zero unrecovered errors),
//! every `OK` answer must be bit-identical to the sequential
//! `SparseCholeskySolver` on the same inputs, and the router must record
//! at least one failover. The backends additionally inject transport
//! faults (torn writes, connection drops) on the router-facing side, so
//! the backend breaker and the in-flight re-route path are exercised even
//! before the kill.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, rng::Rng, DenseMatrix};
use trisolv_router::{Fleet, Ring, Router, RouterOptions};
use trisolv_server::{Client, ClientOptions, Fingerprint};

/// Aborts the process if the guarded scope outlives its budget — a wedged
/// distributed soak must fail loudly, not eat the CI timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(label: &'static str, budget: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while start.elapsed() < budget {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("watchdog: {label} exceeded {budget:?}; aborting");
            std::process::abort();
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

fn resilient_opts(seed: u64) -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(10),
        retries: 40,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(25),
        seed,
    }
}

#[test]
fn fleet_survives_faults_and_a_sigkilled_backend() {
    let _dog = Watchdog::arm("router chaos", Duration::from_secs(120));

    // Three real backend processes: sequential executor (bit-exact
    // reference), transport faults against every connection including the
    // router's own.
    let args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--exec",
        "seq",
        "--workers",
        "4",
        "--fault-spec",
        "seed=9;write.torn=every:41;conn.drop=every:29",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut fleet = Fleet::spawn(env!("CARGO_BIN_EXE_trisolv-backend"), &args, 3).unwrap();

    let opts = RouterOptions {
        backends: fleet.addrs().to_vec(),
        replication: 2,
        probe_interval: Duration::from_millis(10),
        ..RouterOptions::default()
    };
    let ring = Ring::new(3, opts.vnodes);
    let router = Router::spawn(opts).unwrap();
    assert!(
        router.wait_healthy(3, Duration::from_secs(10)),
        "all 3 backend processes should connect"
    );
    let raddr = router.local_addr().to_string();

    let n = 48;
    let a = gen::random_spd(n, 5, 42);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    // LOAD can be hit by the transport faults too: retry on a fresh stream.
    let fp = {
        let mut c = Client::connect_with(&raddr, resilient_opts(999)).unwrap();
        let mut fp = None;
        for _ in 0..30 {
            match c.load(&a) {
                Ok(r) => {
                    fp = Some(r.fingerprint);
                    break;
                }
                Err(e) if e.is_transient() => {
                    std::thread::sleep(Duration::from_millis(5));
                    let mut again = Client::connect_with(&raddr, resilient_opts(999)).unwrap();
                    std::mem::swap(&mut c, &mut again);
                }
                Err(e) => panic!("load failed permanently: {e}"),
            }
        }
        fp.expect("LOAD never survived the fault plan")
    };
    assert_eq!(fp, Fingerprint::of_matrix(&a));

    // SIGKILL the *primary* replica of this fingerprint partway through
    // the run — the worst single-node loss for this workload.
    let primary = ring.primary(fp).unwrap();
    let nclients = 6u64;
    let rounds = 25u64;
    // Progress counter gates the kill: the primary dies only after real
    // traffic has flowed, and well before the workload can finish — every
    // client is guaranteed to solve across the loss.
    let progress = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..nclients {
            let raddr = raddr.clone();
            let reference = &reference;
            let progress = &progress;
            scope.spawn(move || {
                let mut client = Client::connect_with(&raddr, resilient_opts(c)).unwrap();
                let mut rng = Rng::seed_from_u64(7000 + c);
                for r in 0..rounds {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client
                        .solve_with_retry(fp, b.col(0), 0)
                        .unwrap_or_else(|e| panic!("client {c} round {r}: {e}"));
                    assert_eq!(
                        x.as_slice(),
                        reference.solve(&b).col(0),
                        "client {c} round {r}: answer not bit-identical under chaos"
                    );
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // kill mid-load: after ~20% of the solves, long before the end
        while progress.load(Ordering::Relaxed) < nclients * rounds / 5 {
            std::thread::sleep(Duration::from_millis(2));
        }
        fleet.kill(primary);
    });

    // the router observed the loss and re-routed at least once
    assert!(
        router.failovers() >= 1,
        "SIGKILL of the primary must be visible as a failover"
    );
    let mut probe = Client::connect_with(&raddr, resilient_opts(31)).unwrap();
    let stats = probe.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get("router_backends"), 3);
    assert!(
        get("router_backends_healthy") <= 2,
        "the killed backend cannot be healthy"
    );
    assert!(get("router_failovers") >= 1);

    drop(probe);
    router.join();
}
