//! Router version-compat matrix (satellite c) and the orphan-reply
//! regression (satellite a).
//!
//! The rolling-upgrade contract has two sides. Client-facing: v3 and v4
//! clients interleave on the same router, each served in its own framing.
//! Backend-facing: a pre-v4 backend refuses the router's `HELLO` with
//! `ERR UnknownOpcode` and the router drops to the legacy strict-FIFO
//! dialect on that connection — sub-requests go out bare, replies
//! correlate by order. In FIFO mode a reply with nothing in flight (a
//! duplicate, or a late frame after a drain) used to condemn the whole
//! connection; now it is counted as an orphan and dropped while the
//! connection keeps serving.

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use trisolv_matrix::gen;
use trisolv_router::{Router, RouterOptions};
use trisolv_server::protocol::{self, op, ErrorCode};
use trisolv_server::{
    BatchOptions, Client, ClientOptions, EngineOptions, ExecMode, Server, ServerOptions,
};

/// A hand-rolled pre-v4 backend: refuses `HELLO` the way a v3 server
/// does (ERR UnknownOpcode, connection kept), records every frame it
/// receives afterwards, and answers each STATS **twice** — the second
/// reply is exactly the stray frame that used to condemn the connection.
type SeenFrames = Arc<Mutex<Vec<(u8, usize)>>>;

fn spawn_legacy_backend() -> (String, SeenFrames, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let seen: SeenFrames = Arc::new(Mutex::new(Vec::new()));
    let extras = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let extras2 = Arc::clone(&extras);
    std::thread::spawn(move || {
        // serve reconnects too: the router may redial after the test ends
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            while let Ok((opcode, _payload)) = protocol::read_frame(&mut stream) {
                match opcode {
                    op::HELLO => {
                        let p = protocol::err_payload(
                            ErrorCode::UnknownOpcode,
                            "unknown request opcode 0x06",
                            None,
                        );
                        let mut out = Vec::new();
                        protocol::write_frame(&mut out, op::ERR, &p).unwrap();
                        let _ = stream.write_all(&out);
                    }
                    op::STATS => {
                        seen2.lock().unwrap().push((opcode, _payload.len()));
                        // a minimal legacy OK_STATS: zero pairs
                        let p = protocol::Builder::new().u64(0).build();
                        let mut out = Vec::new();
                        protocol::write_frame(&mut out, op::OK_STATS, &p).unwrap();
                        // ...written twice: reply + unsolicited duplicate
                        out.extend_from_slice(&out.clone());
                        extras2.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.write_all(&out);
                    }
                    other => {
                        seen2.lock().unwrap().push((other, _payload.len()));
                        let p = protocol::err_payload(
                            ErrorCode::UnknownFingerprint,
                            "legacy stub",
                            None,
                        );
                        let mut out = Vec::new();
                        protocol::write_frame(&mut out, op::ERR, &p).unwrap();
                        let _ = stream.write_all(&out);
                    }
                }
            }
        }
    });
    (addr, seen, extras)
}

/// FIFO fallback against a legacy backend, plus the orphan regression:
/// the duplicate reply is counted, dropped, and the connection keeps
/// serving — it is never condemned.
#[test]
fn legacy_backend_gets_fifo_framing_and_orphans_do_not_condemn() {
    let (addr, seen, _extras) = spawn_legacy_backend();
    let router = Router::spawn(RouterOptions {
        backends: vec![addr],
        replication: 1,
        probe_interval: Duration::from_millis(20),
        ..RouterOptions::default()
    })
    .unwrap();
    assert!(
        router.wait_healthy(1, Duration::from_secs(10)),
        "the HELLO refusal must read as a downgrade, not a failure"
    );

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    // each STATS round trip provokes one duplicate backend reply
    let stats = client.stats().unwrap();
    let get = |stats: &[(String, u64)], k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get(&stats, "router_backends_healthy"), 1);

    // the duplicate lands asynchronously; wait for the counter
    let start = Instant::now();
    while router.orphan_replies() == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "orphan reply was never counted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // regression: the stray frame must not have condemned the connection —
    // the same backend connection still answers
    let stats = client.stats().unwrap();
    assert_eq!(get(&stats, "router_backends_healthy"), 1);
    assert!(get(&stats, "router_orphan_replies") >= 1);
    assert_eq!(get(&stats, "router_crc_rejects"), 0);

    // and every frame the backend saw was bare legacy framing: a FIFO-mode
    // STATS sub-request has an empty payload, not a 24-byte v4 envelope
    for (opcode, plen) in seen.lock().unwrap().iter() {
        assert_eq!(*opcode, op::STATS);
        assert_eq!(
            *plen, 0,
            "sub-requests to a legacy backend must not be enveloped"
        );
    }

    drop(client);
    router.join();
}

fn backend_opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        engine: EngineOptions {
            exec: ExecMode::Seq,
            batch: BatchOptions {
                max_batch: 4,
                window: Duration::from_millis(1),
                wait_timeout: Duration::from_secs(20),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    }
}

/// A mixed-version fleet round trip: v3 and v4 clients interleaved on
/// one router over v4 backends, every answer bit-identical.
#[test]
fn mixed_version_clients_round_trip_through_the_router() {
    let servers: Vec<_> = (0..2)
        .map(|_| Server::spawn(backend_opts()).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let router = Router::spawn(RouterOptions {
        backends: addrs,
        replication: 2,
        probe_interval: Duration::from_millis(20),
        ..RouterOptions::default()
    })
    .unwrap();
    assert!(router.wait_healthy(2, Duration::from_secs(10)));
    let raddr = router.local_addr().to_string();

    // a legacy client and a negotiated one on the same router
    let mut v3 = Client::connect(raddr.clone()).unwrap();
    assert_eq!(v3.negotiated_version(), 3);
    let mut v4 = Client::connect_with(&raddr, ClientOptions::default()).unwrap();
    assert_eq!(v4.negotiated_version(), 4);

    let a = gen::grid2d_laplacian(8, 8);
    let fp = v3.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(64, 1, 13);
    // interleave so both framings are live on the router at once
    for _ in 0..3 {
        let x3 = v3.solve(fp, b.col(0)).unwrap();
        let x4 = v4.solve(fp, b.col(0)).unwrap();
        assert_eq!(x3, x4, "framing must not change the numbers");
    }
    // the v4 client's STATS sees the fleet aggregation keys
    let stats = v4.stats().unwrap();
    assert!(stats.iter().any(|(k, _)| k == "router_hedges_sent"));
    assert!(stats.iter().any(|(k, _)| k == "router_orphan_replies"));

    drop(v3);
    drop(v4);
    router.join();
    for s in servers {
        s.join();
    }
}
