//! End-to-end router tests over real loopback TCP with in-process
//! backends: protocol transparency, replication, STATS aggregation,
//! per-replica EVICT outcomes, failover, and error propagation.

use std::time::Duration;

use trisolv_matrix::{gen, DenseMatrix};
use trisolv_router::{Ring, Router, RouterOptions};
use trisolv_server::protocol::ErrorCode;
use trisolv_server::{
    BatchOptions, Client, ClientError, EngineOptions, ExecMode, Fingerprint, ReplicaEvict, Server,
    ServerOptions,
};

fn backend_opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        engine: EngineOptions {
            exec: ExecMode::Seq,
            batch: BatchOptions {
                max_batch: 4,
                window: Duration::from_millis(1),
                wait_timeout: Duration::from_secs(20),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    }
}

fn spawn_fleet(n: usize) -> (Vec<trisolv_server::RunningServer>, Vec<String>) {
    let servers: Vec<_> = (0..n)
        .map(|_| Server::spawn(backend_opts()).unwrap())
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr().to_string()).collect();
    (servers, addrs)
}

fn router_opts(backends: Vec<String>, replication: usize) -> RouterOptions {
    RouterOptions {
        backends,
        replication,
        probe_interval: Duration::from_millis(20),
        ..RouterOptions::default()
    }
}

fn check_solution(a: &trisolv_matrix::CscMatrix, b: &DenseMatrix, x: &[f64]) {
    let n = a.nrows();
    let mut xm = DenseMatrix::zeros(n, 1);
    xm.col_mut(0).copy_from_slice(x);
    let ax = a.spmv_sym_lower(&xm).unwrap();
    assert!(ax.max_abs_diff(b).unwrap() < 1e-10);
}

#[test]
fn router_is_protocol_transparent_and_replicates() {
    let (servers, addrs) = spawn_fleet(3);
    let router = Router::spawn(router_opts(addrs.clone(), 2)).unwrap();
    assert!(
        router.wait_healthy(3, Duration::from_secs(10)),
        "all 3 backends should connect"
    );

    // an unmodified single-server client works through the router
    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    let a = gen::grid2d_laplacian(10, 10);
    let loaded = client.load(&a).unwrap();
    assert_eq!(loaded.n, 100);
    assert_eq!(loaded.fingerprint, Fingerprint::of_matrix(&a));

    let b = gen::random_rhs(100, 1, 5);
    let x = client.solve(loaded.fingerprint, b.col(0)).unwrap();
    check_solution(&a, &b, &x);

    // fleet STATS: summed backend gauges + router_* keys. R=2 put the
    // factor on exactly two of the three caches.
    let stats = client.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get("router_backends"), 3);
    assert_eq!(get("router_backends_healthy"), 3);
    assert_eq!(get("cache_entries"), 2, "replication factor 2");
    assert!(get("cache_bytes") > 0);
    assert_eq!(get("router_retained_loads"), 1);
    assert!(get("router_requests") >= 2);

    // EVICT broadcasts and reports the outcome on each replica
    let reply = client.evict_detailed(loaded.fingerprint).unwrap();
    assert!(reply.existed);
    assert_eq!(reply.per_backend.len(), 2);
    for (addr, outcome) in &reply.per_backend {
        assert!(addrs.contains(addr), "outcome addr {addr} not a backend");
        assert_eq!(*outcome, ReplicaEvict::Evicted);
    }

    // a second evict finds nothing anywhere
    let reply = client.evict_detailed(loaded.fingerprint).unwrap();
    assert!(!reply.existed);
    assert!(reply
        .per_backend
        .iter()
        .all(|(_, o)| *o == ReplicaEvict::NotResident));

    drop(client);
    router.join();
    for s in servers {
        s.join();
    }
}

#[test]
fn solve_fails_over_when_primary_backend_dies() {
    let (mut servers, addrs) = spawn_fleet(3);
    let opts = router_opts(addrs, 2);
    let ring = Ring::new(3, opts.vnodes);
    let router = Router::spawn(opts).unwrap();
    assert!(router.wait_healthy(3, Duration::from_secs(10)));

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    let a = gen::grid2d_laplacian(8, 8);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(64, 1, 7);
    check_solution(&a, &b, &client.solve(fp, b.col(0)).unwrap());

    // kill the primary replica (the router's ring is a pure function of
    // the backend list, so the test can compute placement independently)
    let primary = ring.primary(fp).unwrap();
    servers.remove(primary).join();

    // the very next solve must come back correct via the surviving
    // replica — connection loss or ERR, then deterministic failover
    let x = client.solve(fp, b.col(0)).unwrap();
    check_solution(&a, &b, &x);
    assert!(router.failovers() >= 1, "failover must be recorded");
    assert!(router.healthy_backends() <= 2);

    drop(client);
    router.join();
    for s in servers {
        s.join();
    }
}

#[test]
fn permanent_errors_propagate_and_unknown_fp_exhausts_replicas() {
    let (servers, addrs) = spawn_fleet(2);
    let router = Router::spawn(router_opts(addrs, 2)).unwrap();
    assert!(router.wait_healthy(2, Duration::from_secs(10)));

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();

    // a fingerprint no backend holds: both replicas answer
    // UnknownFingerprint, the failover set exhausts, and the last error
    // comes back (not a generic Busy)
    let err = client
        .solve(Fingerprint(1, 2), &[1.0, 2.0])
        .expect_err("unknown fingerprint cannot succeed");
    match err {
        ClientError::Server { code, .. } => {
            assert_eq!(code, Some(ErrorCode::UnknownFingerprint));
        }
        other => panic!("expected server error, got {other:?}"),
    }
    assert!(
        router.failovers() >= 1,
        "second replica was tried before giving up"
    );

    // a permanent error (dimension mismatch) propagates without failover
    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;
    let before = router.failovers();
    let err = client
        .solve(fp, &[1.0, 2.0, 3.0])
        .expect_err("wrong-size rhs must fail");
    match err {
        ClientError::Server { code, .. } => {
            assert_eq!(code, Some(ErrorCode::DimensionMismatch));
        }
        other => panic!("expected server error, got {other:?}"),
    }
    assert_eq!(
        router.failovers(),
        before,
        "permanent errors do not re-route"
    );

    drop(client);
    router.join();
    for s in servers {
        s.join();
    }
}

#[test]
fn dead_backend_rejoins_as_warm_standby() {
    // R=1 so the factor lives on exactly one backend; killing and
    // restarting it exercises the retained-LOAD replay path end to end.
    let (servers, addrs) = spawn_fleet(1);
    let router = Router::spawn(router_opts(addrs, 1)).unwrap();
    assert!(router.wait_healthy(1, Duration::from_secs(10)));

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    let a = gen::grid2d_laplacian(6, 6);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(36, 1, 3);
    check_solution(&a, &b, &client.solve(fp, b.col(0)).unwrap());

    // kill the only backend and bring a fresh (empty-cache) one up on the
    // same address so the router's probe reconnects to it
    let addr = servers[0].local_addr();
    for s in servers {
        s.join();
    }
    let replacement = Server::spawn(ServerOptions {
        addr: addr.to_string(),
        ..backend_opts()
    })
    .unwrap();
    assert!(
        router.wait_healthy(1, Duration::from_secs(10)),
        "backend should rejoin after restart"
    );

    // the replacement never saw the LOAD — only the router's warm-standby
    // replay can make this solve succeed
    let mut c2 = Client::connect(router.local_addr().to_string()).unwrap();
    let x = c2.solve_with_deadline(fp, b.col(0), 20_000).unwrap();
    check_solution(&a, &b, &x);

    drop(client);
    drop(c2);
    router.join();
    replacement.join();
}

#[test]
fn hedged_solve_rescues_a_stalled_primary_replica() {
    // Backend 1 stalls every solve far longer than the hedge threshold;
    // backend 0 is clean. With R=2 the factor lives on both, so a solve
    // whose primary is the stalled replica is exactly the tail the hedge
    // exists for: the duplicate lands on the clean replica, its reply
    // wins, and the stalled arm resolves later as a discarded late loser.
    let fast = Server::spawn(backend_opts()).unwrap();
    // the solve fault site lives in the threaded executor (which answers
    // bit-identically to the sequential reference by construction)
    let mut slow_opts = backend_opts();
    slow_opts.engine.exec = ExecMode::Threaded;
    slow_opts.fault = trisolv_server::FaultPlan::parse("solve.stall=every:1,ms:2000").unwrap();
    let slow = Server::spawn(slow_opts).unwrap();
    let addrs = vec![fast.local_addr().to_string(), slow.local_addr().to_string()];
    let opts = RouterOptions {
        backends: addrs,
        replication: 2,
        probe_interval: Duration::from_millis(20),
        hedge_after: Duration::from_millis(25),
        hedge_budget: 1.0,
        ..RouterOptions::default()
    };
    let ring = Ring::new(2, opts.vnodes);
    let router = Router::spawn(opts).unwrap();
    assert!(router.wait_healthy(2, Duration::from_secs(10)));

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    // walk grid sizes until the ring places a factor's primary on the
    // stalled backend (placement is a pure function of the fingerprint,
    // so the test can pick its victim deterministically)
    let (a, n) = (4..32)
        .map(|k| (gen::grid2d_laplacian(k, k), k * k))
        .find(|(a, _)| ring.primary(Fingerprint::of_matrix(a)) == Some(1))
        .expect("some grid must land on backend 1");
    let fp = client.load(&a).unwrap().fingerprint;

    let b = gen::random_rhs(n, 1, 17);
    let t0 = std::time::Instant::now();
    let x = client.solve_with_deadline(fp, b.col(0), 10_000).unwrap();
    let elapsed = t0.elapsed();
    check_solution(&a, &b, &x);
    assert!(
        elapsed < Duration::from_millis(1500),
        "hedge should beat the 2 s stall, took {elapsed:?}"
    );
    assert!(router.hedges_sent() >= 1, "a hedge was dispatched");
    assert!(router.hedge_wins() >= 1, "the hedge's reply won");

    // the stalled arm's eventual reply is a late loser, not an orphan
    // condemnation: both backends stay healthy and keep serving
    std::thread::sleep(Duration::from_millis(2200));
    assert_eq!(router.healthy_backends(), 2);
    let x2 = client.solve_with_deadline(fp, b.col(0), 10_000).unwrap();
    check_solution(&a, &b, &x2);
    assert_eq!(x, x2, "hedged and direct answers are bit-identical");

    drop(client);
    router.join();
    fast.join();
    slow.join();
}

#[test]
fn fleet_wide_evict_drops_the_retained_copy_so_rejoin_cannot_replay_it() {
    // Regression guard: a fleet-wide EVICT must also drop the router's
    // retained LOAD payload. If it lingered, a backend restart would get
    // the evicted factor replayed right back — an eviction that silently
    // un-evicts itself.
    let (servers, addrs) = spawn_fleet(1);
    let router = Router::spawn(router_opts(addrs, 1)).unwrap();
    assert!(router.wait_healthy(1, Duration::from_secs(10)));

    let mut client = Client::connect(router.local_addr().to_string()).unwrap();
    let a = gen::grid2d_laplacian(6, 6);
    let fp = client.load(&a).unwrap().fingerprint;
    let reply = client.evict_detailed(fp).unwrap();
    assert!(reply.existed);

    let stats = client.stats().unwrap();
    let retained = stats
        .iter()
        .find(|(k, _)| k == "router_retained_loads")
        .unwrap()
        .1;
    assert_eq!(retained, 0, "EVICT must drop the retained LOAD copy");

    // restart the backend on the same address; the rejoin replay must have
    // nothing to replay, so the evicted fingerprint stays unknown
    let addr = servers[0].local_addr();
    for s in servers {
        s.join();
    }
    let replacement = Server::spawn(ServerOptions {
        addr: addr.to_string(),
        ..backend_opts()
    })
    .unwrap();
    assert!(router.wait_healthy(1, Duration::from_secs(10)));

    let b = gen::random_rhs(36, 1, 3);
    let mut c2 = Client::connect(router.local_addr().to_string()).unwrap();
    let err = c2.solve_with_deadline(fp, b.col(0), 20_000).unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, Some(ErrorCode::UnknownFingerprint)),
        other => panic!("expected an unknown-fingerprint error, got {other:?}"),
    }

    drop(client);
    drop(c2);
    router.join();
    replacement.join();
}
