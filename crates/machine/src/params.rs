//! The machine cost model.

/// Kernel class used to pick an effective compute rate.
///
/// Mid-90s microprocessors (and modern ones, for different reasons) run
/// memory-bound BLAS-1/2 operations far below their BLAS-3 peak. The paper
/// observes exactly this: single-processor triangular solves run at
/// ~8 MFLOPS while multi-RHS solves and factorization reach 30–45 MFLOPS
/// thanks to BLAS-3 blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Vector-rate work: triangular solves / GEMV with a single RHS.
    Vector,
    /// Matrix-rate work: blocked GEMM-like kernels (factorization,
    /// multi-RHS updates at large `nrhs`).
    Matrix,
}

/// Interconnect topology used for per-hop latency accounting.
///
/// The Cray T3D's network was a 3-D torus with wormhole routing: per-hop
/// latency was tiny (~1–2 ns), which is why the paper's flat
/// `t_s + m·t_w` model is accurate for it. The torus variant makes the
/// hop distance explicit so the locality of the subtree-to-subcube
/// mapping can be measured under store-and-forward-class networks (see
/// the `ablation_topology` harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Fully-connected (distance-independent) network — the paper's model.
    Flat,
    /// 3-D torus of the given dimensions; processor `r` sits at
    /// `(r % dx, (r / dx) % dy, r / (dx·dy))`.
    Torus3d {
        /// Torus dimensions `[dx, dy, dz]`.
        dims: [usize; 3],
    },
}

impl Topology {
    /// Network hops between two ranks (0 under [`Topology::Flat`]).
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        match *self {
            Topology::Flat => 0,
            Topology::Torus3d { dims } => {
                let coord = |r: usize| {
                    [
                        r % dims[0],
                        (r / dims[0]) % dims[1],
                        r / (dims[0] * dims[1]),
                    ]
                };
                let (a, b) = (coord(src), coord(dst));
                (0..3)
                    .map(|ax| {
                        let d = a[ax].abs_diff(b[ax]);
                        d.min(dims[ax] - d) // ring wrap-around
                    })
                    .sum()
            }
        }
    }
}

/// Linear cost model of a distributed-memory machine.
///
/// * a message of `m` 8-byte words from `src` to `dst` costs
///   `t_s + hops(src, dst)·t_hop + m·t_w` seconds from send start to
///   availability at the receiver;
/// * `flops` floating-point operations in class `c` cost
///   `flops / rate(c)` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Message startup (latency) in seconds.
    pub t_s: f64,
    /// Per-word (8-byte) transfer time in seconds.
    pub t_w: f64,
    /// Effective MFLOPS for [`KernelClass::Vector`] work.
    pub vector_mflops: f64,
    /// Effective MFLOPS for [`KernelClass::Matrix`] work.
    pub matrix_mflops: f64,
    /// Interconnect topology (default [`Topology::Flat`]).
    pub topology: Topology,
    /// Per-hop network latency in seconds (ignored under `Flat`).
    pub t_hop: f64,
}

impl MachineParams {
    /// Cray-T3D-flavoured calibration (see DESIGN.md §5): ~2 µs message
    /// startup (shmem-class messaging), ~150 MB/s per-link bandwidth,
    /// ~10 MFLOPS vector rate and ~45 MFLOPS matrix rate per Alpha EV4
    /// processor.
    pub fn t3d() -> Self {
        MachineParams {
            t_s: 2e-6,
            t_w: 0.053e-6,
            vector_mflops: 10.0,
            matrix_mflops: 45.0,
            topology: Topology::Flat,
            t_hop: 0.0,
        }
    }

    /// T3D calibration with its physical 3-D torus made explicit
    /// (wormhole per-hop latency ≈ 2 ns — nearly flat, as the paper
    /// assumes). Raise `t_hop` to model store-and-forward-class networks.
    pub fn t3d_torus(dims: [usize; 3], t_hop: f64) -> Self {
        MachineParams {
            topology: Topology::Torus3d { dims },
            t_hop,
            ..Self::t3d()
        }
    }

    /// A zero-communication-cost model (useful to isolate load imbalance in
    /// tests and ablations).
    pub fn free_comm() -> Self {
        MachineParams {
            t_s: 0.0,
            t_w: 0.0,
            ..Self::t3d()
        }
    }

    /// Seconds taken by a message of `words` 8-byte words between
    /// topology-adjacent endpoints (no hop term).
    #[inline]
    pub fn msg_time(&self, words: usize) -> f64 {
        self.t_s + words as f64 * self.t_w
    }

    /// Seconds taken by a message of `words` words from `src` to `dst`,
    /// including the topology hop term.
    #[inline]
    pub fn msg_time_between(&self, src: usize, dst: usize, words: usize) -> f64 {
        self.msg_time(words) + self.topology.hops(src, dst) as f64 * self.t_hop
    }

    /// Effective rate (flops/second) of a kernel class.
    #[inline]
    pub fn rate(&self, class: KernelClass) -> f64 {
        match class {
            KernelClass::Vector => self.vector_mflops * 1e6,
            KernelClass::Matrix => self.matrix_mflops * 1e6,
        }
    }

    /// Effective rate for a solve-type kernel operating on `nrhs`
    /// right-hand sides at once: interpolates from the vector rate
    /// (`nrhs = 1`) toward the matrix rate as blocking improves,
    /// `r(m) = r₃ − (r₃ − r₁)/m`.
    #[inline]
    pub fn solve_rate(&self, nrhs: usize) -> f64 {
        let r1 = self.vector_mflops * 1e6;
        let r3 = self.matrix_mflops * 1e6;
        r3 - (r3 - r1) / nrhs.max(1) as f64
    }

    /// Seconds for `flops` operations in `class`.
    #[inline]
    pub fn compute_time(&self, flops: f64, class: KernelClass) -> f64 {
        flops / self.rate(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_sanity() {
        let p = MachineParams::t3d();
        assert!(p.t_s > p.t_w);
        assert!(p.matrix_mflops > p.vector_mflops);
    }

    #[test]
    fn msg_time_linear() {
        let p = MachineParams::t3d();
        let t0 = p.msg_time(0);
        let t100 = p.msg_time(100);
        assert!((t0 - p.t_s).abs() < 1e-15);
        assert!((t100 - t0 - 100.0 * p.t_w).abs() < 1e-15);
    }

    #[test]
    fn solve_rate_interpolates() {
        let p = MachineParams::t3d();
        assert!((p.solve_rate(1) - p.rate(KernelClass::Vector)).abs() < 1.0);
        assert!(p.solve_rate(30) > 0.9 * p.rate(KernelClass::Matrix));
        assert!(p.solve_rate(2) > p.solve_rate(1));
        // degenerate nrhs treated as 1
        assert_eq!(p.solve_rate(0), p.solve_rate(1));
    }

    #[test]
    fn torus_hops_wrap_around() {
        let t = Topology::Torus3d { dims: [4, 4, 2] };
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1); // +x
        assert_eq!(t.hops(0, 3), 1); // wrap in x (distance min(3, 1))
        assert_eq!(t.hops(0, 4), 1); // +y
        assert_eq!(t.hops(0, 16), 1); // +z
        assert_eq!(t.hops(0, 21), 3); // (1,1,1) away
        assert_eq!(Topology::Flat.hops(0, 31), 0);
    }

    #[test]
    fn hop_term_enters_message_time() {
        let p = MachineParams::t3d_torus([4, 4, 4], 1e-6);
        let base = p.msg_time(10);
        assert_eq!(p.msg_time_between(0, 0, 10), base);
        assert!((p.msg_time_between(0, 21, 10) - base - 3e-6).abs() < 1e-15);
        // flat default: no hop term anywhere
        let f = MachineParams::t3d();
        assert_eq!(f.msg_time_between(0, 63, 10), f.msg_time(10));
    }

    #[test]
    fn free_comm_zeroes_messages_only() {
        let p = MachineParams::free_comm();
        assert_eq!(p.msg_time(1000), 0.0);
        assert!(p.compute_time(1e6, KernelClass::Vector) > 0.0);
    }
}
